# Convenience targets for the FLARE reproduction.

PYTHON ?= python

.PHONY: install test test-fast coverage lint bench bench-smoke figures examples clean artifacts

install:
	pip install -e '.[dev]' || pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Skip the @pytest.mark.slow chaos/acceptance tests for quick iteration.
test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# Full suite under pytest-cov (requires the dev extras); CI enforces the
# coverage floor and publishes the report as an artifact.
coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing --cov-report=xml

# Static checks (configured in pyproject.toml [tool.ruff]).
lint:
	$(PYTHON) -m ruff check src tests benchmarks

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Serial vs process-pool sampling wall-clock; appends to
# benchmarks/results/bench_smoke.jsonl and checks bit-identical output.
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py

# Regenerate every paper figure + extension experiment artefact.
figures: bench
	@ls benchmarks/results/

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

artifacts:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
