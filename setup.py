"""Legacy setup shim.

Kept so that fully-offline environments (no ``wheel`` package available for
PEP 660 editable builds) can still do ``python setup.py develop``.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
