"""Steps 2–3: high-level metric construction and scenario grouping.

The Analyzer standardises the refined metrics, extracts principal
components (the high-level metrics of Figure 8), keeps enough PCs to
explain the configured variance target (Figure 7), whitens them so every
PC carries equal weight, sweeps K-means cluster counts scoring SSE and
silhouette (Figure 9), and finally groups the scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.kmeans import KMeans, KMeansResult
from ..stats.pca import PCA, PCAResult
from ..stats.preprocessing import StandardScaler, whiten
from ..stats.silhouette import ClusterQualitySweep, knee_point, sweep_cluster_counts
from .refinement import RefinedDataset

__all__ = ["AnalyzerConfig", "AnalysisResult", "Analyzer"]


@dataclass(frozen=True)
class AnalyzerConfig:
    """Tuning knobs of the Analyzer.

    Attributes
    ----------
    variance_target:
        Keep the smallest number of PCs whose cumulative explained
        variance reaches this ratio (paper: 0.95 → 18 PCs).
    n_components:
        Explicit PC count; overrides ``variance_target`` when set.
    cluster_counts:
        Candidate k values for the quality sweep (Figure 9).
    n_clusters:
        Explicit cluster count; skips knee selection when set (the paper
        settles on 18 after inspecting the sweep).
    kmeans_restarts / kmeans_max_iter:
        K-means robustness knobs.
    weight_samples:
        Weight scenarios by observation time during clustering.  Off by
        default — the paper clusters scenario *behaviours* equally and
        uses weights only when summarising impacts.
    seed:
        Seed for k-means initialisation.
    """

    variance_target: float = 0.95
    n_components: int | None = None
    cluster_counts: tuple[int, ...] = tuple(range(2, 41, 2))
    n_clusters: int | None = None
    kmeans_restarts: int = 8
    kmeans_max_iter: int = 300
    weight_samples: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.variance_target <= 1.0:
            raise ValueError("variance_target must be in (0, 1]")
        if self.n_components is not None and self.n_components < 1:
            raise ValueError("n_components must be >= 1")
        if self.n_clusters is not None and self.n_clusters < 2:
            raise ValueError("n_clusters must be >= 2")
        if not self.cluster_counts and self.n_clusters is None:
            raise ValueError(
                "cluster_counts must be non-empty when n_clusters is None"
            )


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the Analyzer derives from a refined dataset.

    Attributes
    ----------
    refined:
        The input dataset (for provenance).  ``None`` for out-of-core
        fits, which never materialise the full refined matrix.
    scaler:
        Fitted standardiser (raw metric space).
    pca:
        Full PCA decomposition of the standardised metrics.
    n_components:
        PCs retained as high-level metrics.
    scores:
        Whitened PC scores, shape ``(n_scenarios, n_components)`` — the
        space clustering happens in.  ``None`` for out-of-core fits;
        representative extraction then works from the per-point
        assignments instead.
    sweep:
        Cluster-quality sweep data (None when k was fixed by config).
    kmeans:
        Final clustering at the chosen k.
    cluster_weights:
        Observation-time weight of each cluster (sums to 1) — the paper's
        per-group weights used for impact averaging.
    """

    refined: RefinedDataset | None
    scaler: StandardScaler
    pca: PCAResult
    n_components: int
    scores: np.ndarray | None
    score_mean: np.ndarray
    score_std: np.ndarray
    sweep: ClusterQualitySweep | None
    kmeans: KMeansResult
    cluster_weights: np.ndarray

    @property
    def n_clusters(self) -> int:
        return self.kmeans.n_clusters

    def project(self, refined_matrix: np.ndarray) -> np.ndarray:
        """Map new refined-metric rows into the fitted whitened PC space.

        Applies the fitted standardiser, PCA basis and whitening statistics
        — the out-of-sample path used to classify scenarios observed later
        (e.g. under a new scheduler, §5.6).
        """
        standardised = self.scaler.transform(refined_matrix)
        raw_scores = standardised @ self.pca.components[: self.n_components].T
        centred = raw_scores - self.score_mean
        out = np.zeros_like(centred)
        live = self.score_std > 1e-12
        out[:, live] = centred[:, live] / self.score_std[live]
        return out

    def classify(self, refined_matrix: np.ndarray) -> np.ndarray:
        """Assign new refined-metric rows to the fitted clusters."""
        projected = self.project(refined_matrix)
        from ..stats.distance import pairwise_sq_euclidean

        dist = pairwise_sq_euclidean(projected, self.kmeans.centroids)
        return np.argmin(dist, axis=1)

    @property
    def labels(self) -> np.ndarray:
        return self.kmeans.labels

    def members_of(self, cluster_id: int) -> np.ndarray:
        """Scenario indices assigned to *cluster_id*."""
        if not 0 <= cluster_id < self.n_clusters:
            raise ValueError(f"cluster_id {cluster_id} out of range")
        return np.flatnonzero(self.kmeans.labels == cluster_id)

    def explained_variance_at(self, n: int) -> float:
        """Cumulative explained-variance ratio of the first *n* PCs."""
        if not 1 <= n <= self.pca.explained_variance_ratio.shape[0]:
            raise ValueError(f"n={n} out of range")
        return float(self.pca.explained_variance_ratio[:n].sum())


class Analyzer:
    """Runs standardise → PCA → whiten → cluster on a refined dataset."""

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config if config is not None else AnalyzerConfig()

    # ------------------------------------------------------------------
    def analyze(self, refined: RefinedDataset) -> AnalysisResult:
        """Derive high-level metrics and scenario groups."""
        cfg = self.config
        scaler = StandardScaler()
        standardised = scaler.fit_transform(refined.matrix)

        pca = PCA().fit(standardised)
        result = pca.result_
        assert result is not None
        n_components = self._select_components(result)
        raw_scores = standardised @ result.components[:n_components].T
        score_mean = raw_scores.mean(axis=0)
        score_std = raw_scores.std(axis=0, ddof=0)
        scores = whiten(raw_scores)

        weights = (
            refined.profiled.dataset.weights() if cfg.weight_samples else None
        )

        sweep: ClusterQualitySweep | None = None
        if cfg.n_clusters is not None:
            chosen_k = cfg.n_clusters
        else:
            sweep = sweep_cluster_counts(
                scores,
                cfg.cluster_counts,
                kmeans_factory=self._kmeans_factory,
                sample_weight=weights,
            )
            knee = knee_point(
                sweep.cluster_counts.astype(float), sweep.sse
            )
            chosen_k = int(sweep.cluster_counts[knee])

        kmeans = self._kmeans_factory(chosen_k).fit(
            scores, sample_weight=weights
        )
        cluster_weights = self._cluster_weights(kmeans, refined)

        return AnalysisResult(
            refined=refined,
            scaler=scaler,
            pca=result,
            n_components=n_components,
            scores=scores,
            score_mean=score_mean,
            score_std=score_std,
            sweep=sweep,
            kmeans=kmeans,
            cluster_weights=cluster_weights,
        )

    # ------------------------------------------------------------------
    def _select_components(self, pca: PCAResult) -> int:
        cfg = self.config
        if cfg.n_components is not None:
            if cfg.n_components > pca.components.shape[0]:
                raise ValueError(
                    f"n_components={cfg.n_components} exceeds available "
                    f"{pca.components.shape[0]}"
                )
            return cfg.n_components
        cumulative = pca.cumulative_variance_ratio()
        reachable = min(cfg.variance_target, float(cumulative[-1]))
        return int(np.searchsorted(cumulative, reachable - 1e-12) + 1)

    def _kmeans_factory(self, k: int) -> KMeans:
        cfg = self.config
        return KMeans(
            n_clusters=k,
            n_init=cfg.kmeans_restarts,
            max_iter=cfg.kmeans_max_iter,
            seed=np.random.default_rng(cfg.seed),
        )

    @staticmethod
    def _cluster_weights(
        kmeans: KMeansResult, refined: RefinedDataset
    ) -> np.ndarray:
        scenario_weights = refined.profiled.dataset.weights()
        return kmeans.cluster_weights(sample_weight=scenario_weights)
