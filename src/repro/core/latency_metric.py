"""Tail-latency performance metric — the pluggable-metric extension.

The paper defines performance as normalised MIPS but notes "FLARE is not
bound to any specific performance metric.  Many alternatives can be
utilized" (§5.1).  This module provides one: normalised inverse p99
latency of HP services, in exactly the :class:`ScenarioPerformance` shape
the estimators consume, so it can be plugged into a
:class:`~repro.core.replayer.Replayer` via its ``metric`` parameter.

Performance of an instance = ``inherent p99 / co-located p99`` (1.0 when
uncontended, < 1 under interference) — higher is better, mirroring the
MIPS convention, so "MIPS reduction %" becomes "p99 degradation %".
"""

from __future__ import annotations

from functools import lru_cache

from ..cluster.scenario import Scenario
from ..perfmodel.contention import RunningInstance, solve_colocation_cached
from ..perfmodel.latency import LatencyEstimate, instance_latency
from ..perfmodel.machine import MachinePerf
from ..perfmodel.signatures import JobSignature
from .performance import ScenarioPerformance

__all__ = ["latency_scenario_performance", "inherent_latency"]


@lru_cache(maxsize=4096)
def _inherent_instance(
    machine: MachinePerf, signature: JobSignature, load: float
):
    solution = solve_colocation_cached(
        machine, (RunningInstance(signature=signature, load=load),)
    )
    return solution.instances[0]


def inherent_latency(
    machine: MachinePerf, signature: JobSignature, load: float
) -> LatencyEstimate:
    """Latency of one instance running alone on *machine* at *load*."""
    alone = _inherent_instance(machine, signature, load)
    return instance_latency(alone, alone, load)


def latency_scenario_performance(
    machine: MachinePerf,
    scenario: Scenario,
    *,
    normalize_machine: MachinePerf | None = None,
) -> ScenarioPerformance:
    """Normalised inverse-p99 performance of a scenario's HP services.

    Drop-in alternative to
    :func:`repro.core.performance.scenario_performance`: same signature,
    same return shape, latency semantics.
    """
    norm_machine = normalize_machine if normalize_machine is not None else machine
    solution = solve_colocation_cached(machine, scenario.instances)

    per_instance: list[float] = []
    per_job_acc: dict[str, list[float]] = {}
    for running, perf in zip(scenario.instances, solution.instances):
        if not perf.is_high_priority:
            continue
        alone = _inherent_instance(
            norm_machine, running.signature, running.load
        )
        contended = instance_latency(perf, alone, running.load)
        baseline = instance_latency(alone, alone, running.load)
        value = baseline.p99_ms / contended.p99_ms
        per_instance.append(value)
        per_job_acc.setdefault(perf.job_name, []).append(value)

    per_job = {
        name: sum(values) / len(values)
        for name, values in per_job_acc.items()
    }
    overall = sum(per_instance) / len(per_instance) if per_instance else 0.0
    return ScenarioPerformance(
        overall=overall,
        per_instance=tuple(per_instance),
        per_job=per_job,
    )
