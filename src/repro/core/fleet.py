"""Fleet-level evaluation across heterogeneous machine shapes (§5.5).

Real datacenters mix machine generations.  The paper's recommendation is
to derive and maintain one representative set per shape — shapes change
rarely (years), features arrive constantly, so the per-shape investment
amortises.  :class:`FleetEvaluator` operationalises that: it owns one
fitted FLARE model per shape segment and aggregates feature impacts
across the fleet, weighting each segment by its share of the fleet's
compute capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.features import Feature
from ..cluster.machine import MachineShape
from ..cluster.simulation import DatacenterConfig, run_simulation
from ..reporting.tables import render_table
from .analyzer import AnalyzerConfig
from .estimation import FeatureImpactEstimate
from .pipeline import Flare, FlareConfig

__all__ = ["FleetSegment", "FleetImpactEstimate", "FleetEvaluator"]


@dataclass(frozen=True)
class FleetSegment:
    """One homogeneous slice of the fleet: a shape, its size, its model."""

    shape: MachineShape
    n_machines: int
    flare: Flare

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("n_machines must be >= 1")
        if self.flare.dataset.shape != self.shape:
            raise ValueError(
                f"segment shape {self.shape.name!r} does not match the "
                f"fitted model's shape {self.flare.dataset.shape.name!r}"
            )

    @property
    def capacity_vcpus(self) -> int:
        """Schedulable vCPUs this segment contributes to the fleet."""
        return self.n_machines * self.shape.vcpus


@dataclass(frozen=True)
class FleetImpactEstimate:
    """A feature's impact per segment and fleet-wide.

    Attributes
    ----------
    feature:
        The feature evaluated (it must preserve every shape).
    per_segment:
        Shape name → (segment estimate, capacity weight).
    reduction_pct:
        Capacity-weighted fleet-wide MIPS reduction.
    evaluation_cost:
        Total scenario replays across all segments.
    """

    feature: Feature
    per_segment: dict[str, tuple[FeatureImpactEstimate, float]]
    reduction_pct: float
    evaluation_cost: int

    def segment_reduction(self, shape_name: str) -> float:
        return self.per_segment[shape_name][0].reduction_pct

    def render(self) -> str:
        rows = [
            [name, weight * 100.0, estimate.reduction_pct]
            for name, (estimate, weight) in self.per_segment.items()
        ]
        rows.append(["fleet", 100.0, self.reduction_pct])
        return render_table(
            ["segment", "capacity %", "MIPS reduction %"],
            rows,
            title=f"Fleet impact — {self.feature.name}",
        )


class FleetEvaluator:
    """Evaluates shape-preserving features across a heterogeneous fleet."""

    def __init__(self, segments: list[FleetSegment]) -> None:
        if not segments:
            raise ValueError("fleet needs at least one segment")
        names = [segment.shape.name for segment in segments]
        if len(names) != len(set(names)):
            raise ValueError("segment shape names must be unique")
        self.segments = list(segments)

    # ------------------------------------------------------------------
    @classmethod
    def from_simulations(
        cls,
        fleet: list[tuple[MachineShape, int]],
        *,
        seed: int = 2023,
        target_unique_scenarios: int = 300,
        n_clusters: int = 12,
    ) -> "FleetEvaluator":
        """Build a fleet evaluator by observing each shape's datacenter.

        Parameters
        ----------
        fleet:
            ``(shape, machine count)`` pairs describing the fleet.
        """
        segments = []
        for index, (shape, n_machines) in enumerate(fleet):
            result = run_simulation(
                DatacenterConfig(
                    shape=shape,
                    seed=seed + index,
                    target_unique_scenarios=target_unique_scenarios,
                )
            )
            flare = Flare(
                FlareConfig(analyzer=AnalyzerConfig(n_clusters=n_clusters))
            ).fit(result.dataset)
            segments.append(
                FleetSegment(shape=shape, n_machines=n_machines, flare=flare)
            )
        return cls(segments)

    # ------------------------------------------------------------------
    @property
    def total_capacity_vcpus(self) -> int:
        return sum(segment.capacity_vcpus for segment in self.segments)

    def segment_weights(self) -> dict[str, float]:
        """Capacity share per segment (sums to 1)."""
        total = self.total_capacity_vcpus
        return {
            segment.shape.name: segment.capacity_vcpus / total
            for segment in self.segments
        }

    def evaluate(self, feature: Feature) -> FleetImpactEstimate:
        """Fleet-wide impact of *feature* (per-segment FLARE, capacity-
        weighted aggregate)."""
        weights = self.segment_weights()
        per_segment: dict[str, tuple[FeatureImpactEstimate, float]] = {}
        total = 0.0
        cost = 0
        for segment in self.segments:
            estimate = segment.flare.evaluate(feature)
            weight = weights[segment.shape.name]
            per_segment[segment.shape.name] = (estimate, weight)
            total += weight * estimate.reduction_pct
            cost += estimate.evaluation_cost
        return FleetImpactEstimate(
            feature=feature,
            per_segment=per_segment,
            reduction_pct=float(total),
            evaluation_cost=cost,
        )

    def evaluate_job(
        self, feature: Feature, job_name: str
    ) -> FleetImpactEstimate:
        """Fleet-wide per-job impact (segments that host the job)."""
        weights = self.segment_weights()
        per_segment: dict[str, tuple[FeatureImpactEstimate, float]] = {}
        contributions: list[tuple[float, float]] = []
        cost = 0
        for segment in self.segments:
            try:
                estimate = segment.flare.evaluate_job(feature, job_name)
            except ValueError:
                continue  # this segment never hosted the job
            weight = weights[segment.shape.name]
            per_segment[segment.shape.name] = (estimate, weight)
            contributions.append((weight, estimate.reduction_pct))
            cost += estimate.evaluation_cost
        if not contributions:
            raise ValueError(
                f"job {job_name!r} is hosted by no fleet segment"
            )
        total_weight = sum(w for w, _ in contributions)
        total = sum(w * r for w, r in contributions) / total_weight
        return FleetImpactEstimate(
            feature=feature,
            per_segment=per_segment,
            reduction_pct=float(total),
            evaluation_cost=cost,
        )
