"""Step 3 output: representative scenario extraction (paper §4.4–4.5).

For each cluster, the representative is the member scenario nearest to the
cluster centroid.  Members are kept ranked by centroid distance so the
per-job estimator can walk to the "next nearest" scenario when the
representative does not contain the job of interest (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..cluster.scenario import Scenario, ScenarioDataset
from ..cluster.source import ScenarioSource
from .analyzer import AnalysisResult

__all__ = [
    "ClusterGroup",
    "RepresentativeSet",
    "extract_representatives",
    "representatives_from_assignments",
]


@dataclass(frozen=True)
class ClusterGroup:
    """One scenario group and its representative.

    Attributes
    ----------
    cluster_id:
        Cluster index.
    weight:
        Observation-time share of the group (sums to 1 across groups).
    centroid:
        Cluster centre in whitened PC space.
    ranked_members:
        Scenario indices ordered by distance to the centroid (nearest
        first); ``ranked_members[0]`` is the representative.
    """

    cluster_id: int
    weight: float
    centroid: np.ndarray
    ranked_members: tuple[int, ...]

    @property
    def representative_index(self) -> int:
        return self.ranked_members[0]

    @property
    def size(self) -> int:
        return len(self.ranked_members)

    def first_member_where(
        self,
        dataset: ScenarioSource,
        predicate: Callable[[Scenario], bool],
    ) -> Scenario | None:
        """Nearest-to-centroid member satisfying *predicate* (or None).

        This is the paper's fallback: "we check the next nearest scenario
        to the cluster center until we find the target job".
        """
        for index in self.ranked_members:
            scenario = dataset[index]
            if predicate(scenario):
                return scenario
        return None


@dataclass(frozen=True)
class RepresentativeSet:
    """All cluster groups of one analysis, plus convenience accessors.

    ``dataset`` is any :class:`~repro.cluster.ScenarioSource` — the
    in-memory dataset for classic fits, the sharded store itself for
    out-of-core fits, so holding a representative set never forces the
    full population into memory.
    """

    dataset: ScenarioSource
    groups: tuple[ClusterGroup, ...]

    def __len__(self) -> int:
        return len(self.groups)

    def representative_scenarios(self) -> tuple[Scenario, ...]:
        """The one-per-group representative scenarios."""
        return tuple(
            self.dataset[g.representative_index] for g in self.groups
        )

    def weights(self) -> np.ndarray:
        return np.array([g.weight for g in self.groups])

    def group_of_scenario(self, scenario_index: int) -> ClusterGroup:
        """The group containing dataset scenario *scenario_index*."""
        index = getattr(self, "_group_index_cache", None)
        if index is None:
            index = {
                member: group
                for group in self.groups
                for member in group.ranked_members
            }
            object.__setattr__(self, "_group_index_cache", index)
        try:
            return index[scenario_index]
        except KeyError:
            raise KeyError(
                f"scenario {scenario_index} not in any group"
            ) from None

    def job_instance_weight(self, group: ClusterGroup, job_name: str) -> float:
        """Observation-weighted instance count of *job_name* in *group*.

        Used to weight per-job impacts by "the likelihood to observe the
        job" in each group (§5.3).
        """
        weights = self.dataset.weights()
        return float(
            sum(
                weights[idx] * self.dataset[idx].count_of(job_name)
                for idx in group.ranked_members
            )
        )

    def with_cluster_weights(
        self,
        cluster_weights: np.ndarray,
        dataset: ScenarioSource | None = None,
    ) -> "RepresentativeSet":
        """Same groups and member rankings under new group weights.

        Reweighting flows (§5.6) change only observation-time shares —
        cluster membership and centroid distances are untouched — so the
        ranked members are carried over instead of being re-derived from
        the score matrix (which an out-of-core fit never materialises).
        """
        groups = tuple(
            replace(group, weight=float(cluster_weights[group.cluster_id]))
            for group in self.groups
        )
        return RepresentativeSet(
            dataset=dataset if dataset is not None else self.dataset,
            groups=groups,
        )


def _rank_quantise(distances: np.ndarray) -> np.ndarray:
    """Round centroid distances for ranking (9 decimals).

    Member ranking must agree between the in-memory and out-of-core
    fits, whose whitened scores differ by the streamed-statistics
    tolerance (~1e-12 relative).  Two members of a 2-point cluster are
    equidistant from their centroid up to rounding, and raw float
    comparison breaks such ties differently on each path; quantising
    far below any behavioural difference but far above the noise makes
    the tie explicit, so the stable sort breaks it by scenario index on
    both paths.
    """
    return np.round(distances, 9)


def extract_representatives(
    analysis: AnalysisResult, dataset: ScenarioDataset
) -> RepresentativeSet:
    """Build the representative set from a completed analysis."""
    if analysis.scores is None:
        raise ValueError(
            "analysis carries no score matrix (out-of-core fit); use "
            "representatives_from_assignments instead"
        )
    if analysis.scores.shape[0] != len(dataset):
        raise ValueError(
            f"analysis covers {analysis.scores.shape[0]} scenarios but "
            f"dataset has {len(dataset)}"
        )
    groups = []
    for cluster_id in range(analysis.n_clusters):
        members = analysis.members_of(cluster_id)
        if members.size == 0:
            # K-means empty-cluster repair should prevent this, but a
            # degenerate dataset (fewer distinct points than clusters) can
            # still produce it; such a group carries no weight.
            continue
        centroid = analysis.kmeans.centroids[cluster_id]
        distances = np.linalg.norm(
            analysis.scores[members] - centroid, axis=1
        )
        order = np.argsort(_rank_quantise(distances), kind="stable")
        groups.append(
            ClusterGroup(
                cluster_id=cluster_id,
                weight=float(analysis.cluster_weights[cluster_id]),
                centroid=centroid.copy(),
                ranked_members=tuple(int(members[i]) for i in order),
            )
        )
    return RepresentativeSet(dataset=dataset, groups=tuple(groups))


def representatives_from_assignments(
    *,
    labels: np.ndarray,
    sq_distances: np.ndarray,
    centroids: np.ndarray,
    cluster_weights: np.ndarray,
    dataset: ScenarioSource,
) -> RepresentativeSet:
    """Representative set from per-point assignments alone.

    The out-of-core companion to :func:`extract_representatives`: the
    streaming fit never holds the full whitened score matrix, but its
    final labelling pass yields each row's cluster and squared distance
    to its centroid — exactly the information member ranking needs.
    Ranking by squared distance is ranking by distance (monotone), with
    the same stable index tie-break as the in-memory path.
    """
    if labels.shape[0] != len(dataset):
        raise ValueError(
            f"assignments cover {labels.shape[0]} scenarios but dataset "
            f"has {len(dataset)}"
        )
    groups = []
    for cluster_id in range(centroids.shape[0]):
        members = np.flatnonzero(labels == cluster_id)
        if members.size == 0:
            continue
        distances = np.sqrt(sq_distances[members])
        order = np.argsort(_rank_quantise(distances), kind="stable")
        groups.append(
            ClusterGroup(
                cluster_id=cluster_id,
                weight=float(cluster_weights[cluster_id]),
                centroid=centroids[cluster_id].copy(),
                ranked_members=tuple(int(members[i]) for i in order),
            )
        )
    return RepresentativeSet(dataset=dataset, groups=tuple(groups))
