"""Step 3 output: representative scenario extraction (paper §4.4–4.5).

For each cluster, the representative is the member scenario nearest to the
cluster centroid.  Members are kept ranked by centroid distance so the
per-job estimator can walk to the "next nearest" scenario when the
representative does not contain the job of interest (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..cluster.scenario import Scenario, ScenarioDataset
from ..cluster.source import ScenarioSource
from .analyzer import AnalysisResult

__all__ = [
    "ClusterGroup",
    "FitBaseline",
    "RepresentativeSet",
    "extract_representatives",
    "fit_baseline_from_assignments",
    "representatives_from_assignments",
]

#: Distance quantile beyond which an observed scenario counts as novel
#: (the drift monitor's calibrated novelty threshold).
NOVELTY_QUANTILE = 0.99


@dataclass(frozen=True)
class FitBaseline:
    """Fit-time health statistics of one clustering.

    Recorded when a model is fitted and persisted with it, so the drift
    monitor (:mod:`repro.obs.monitor`) can score any later scenario
    stream against *what the model looked like when it was trusted*:
    cluster occupancy for population-stability scoring, assignment
    distances and SSE for tightness deltas, and a calibrated distance
    quantile as the novelty threshold.

    Attributes
    ----------
    n_scenarios:
        Population size at fit time.
    occupancy:
        Observation-time share of each cluster (sums to 1) — the same
        quantity as the analysis' ``cluster_weights`` at fit time.
    count_share:
        Unweighted membership share of each cluster (sums to 1).
    mean_distance:
        Per-cluster mean member distance to the assigned centroid, in
        whitened PC space.
    sse:
        Total squared assignment distance (the clustering inertia).
    distance_quantiles:
        ``{"p50": ..., "p90": ..., "p99": ...}`` of the assignment
        distance distribution.
    novelty_threshold:
        Assignment distance beyond which a scenario counts as novel
        (the :data:`NOVELTY_QUANTILE` quantile of fit-time distances).
    """

    n_scenarios: int
    occupancy: np.ndarray
    count_share: np.ndarray
    mean_distance: np.ndarray
    sse: float
    distance_quantiles: dict[str, float]
    novelty_threshold: float

    @property
    def n_clusters(self) -> int:
        return int(self.occupancy.shape[0])

    @property
    def sse_per_scenario(self) -> float:
        return self.sse / self.n_scenarios if self.n_scenarios else 0.0

    def to_dict(self) -> dict:
        return {
            "n_scenarios": self.n_scenarios,
            "occupancy": [float(v) for v in self.occupancy],
            "count_share": [float(v) for v in self.count_share],
            "mean_distance": [float(v) for v in self.mean_distance],
            "sse": self.sse,
            "distance_quantiles": dict(self.distance_quantiles),
            "novelty_threshold": self.novelty_threshold,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FitBaseline":
        return cls(
            n_scenarios=int(payload["n_scenarios"]),
            occupancy=np.asarray(payload["occupancy"], dtype=np.float64),
            count_share=np.asarray(payload["count_share"], dtype=np.float64),
            mean_distance=np.asarray(
                payload["mean_distance"], dtype=np.float64
            ),
            sse=float(payload["sse"]),
            distance_quantiles={
                k: float(v)
                for k, v in payload["distance_quantiles"].items()
            },
            novelty_threshold=float(payload["novelty_threshold"]),
        )


def fit_baseline_from_assignments(
    *,
    labels: np.ndarray,
    sq_distances: np.ndarray,
    weights: np.ndarray,
    n_clusters: int,
) -> FitBaseline:
    """Derive the fit-time baseline from per-point assignments.

    Works from exactly the information both fit paths share — the
    labelling and the squared assignment distances — so the in-memory
    and out-of-core fits record matching baselines wherever their
    assignments match.
    """
    labels = np.asarray(labels)
    sq = np.asarray(sq_distances, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    n = int(labels.shape[0])
    distances = np.sqrt(sq)
    counts = np.bincount(labels, minlength=n_clusters).astype(np.float64)
    mass = np.bincount(labels, weights=weights, minlength=n_clusters)
    distance_sums = np.bincount(
        labels, weights=distances, minlength=n_clusters
    )
    quantiles = np.quantile(distances, [0.5, 0.9, 0.99])
    return FitBaseline(
        n_scenarios=n,
        occupancy=mass / mass.sum(),
        count_share=counts / max(n, 1),
        mean_distance=distance_sums / np.maximum(counts, 1.0),
        sse=float(sq.sum()),
        distance_quantiles={
            "p50": float(quantiles[0]),
            "p90": float(quantiles[1]),
            "p99": float(quantiles[2]),
        },
        novelty_threshold=float(
            np.quantile(distances, NOVELTY_QUANTILE)
        ),
    )


@dataclass(frozen=True)
class ClusterGroup:
    """One scenario group and its representative.

    Attributes
    ----------
    cluster_id:
        Cluster index.
    weight:
        Observation-time share of the group (sums to 1 across groups).
    centroid:
        Cluster centre in whitened PC space.
    ranked_members:
        Scenario indices ordered by distance to the centroid (nearest
        first); ``ranked_members[0]`` is the representative.
    """

    cluster_id: int
    weight: float
    centroid: np.ndarray
    ranked_members: tuple[int, ...]

    @property
    def representative_index(self) -> int:
        return self.ranked_members[0]

    @property
    def size(self) -> int:
        return len(self.ranked_members)

    def first_member_where(
        self,
        dataset: ScenarioSource,
        predicate: Callable[[Scenario], bool],
    ) -> Scenario | None:
        """Nearest-to-centroid member satisfying *predicate* (or None).

        This is the paper's fallback: "we check the next nearest scenario
        to the cluster center until we find the target job".
        """
        for index in self.ranked_members:
            scenario = dataset[index]
            if predicate(scenario):
                return scenario
        return None


@dataclass(frozen=True)
class RepresentativeSet:
    """All cluster groups of one analysis, plus convenience accessors.

    ``dataset`` is any :class:`~repro.cluster.ScenarioSource` — the
    in-memory dataset for classic fits, the sharded store itself for
    out-of-core fits, so holding a representative set never forces the
    full population into memory.
    """

    dataset: ScenarioSource
    groups: tuple[ClusterGroup, ...]
    #: Fit-time health statistics (occupancy, distances, novelty
    #: threshold) the drift monitor scores against; ``None`` only for
    #: representative sets built by legacy callers.
    baseline: "FitBaseline | None" = None

    def __len__(self) -> int:
        return len(self.groups)

    def representative_scenarios(self) -> tuple[Scenario, ...]:
        """The one-per-group representative scenarios."""
        return tuple(
            self.dataset[g.representative_index] for g in self.groups
        )

    def weights(self) -> np.ndarray:
        return np.array([g.weight for g in self.groups])

    def group_of_scenario(self, scenario_index: int) -> ClusterGroup:
        """The group containing dataset scenario *scenario_index*."""
        index = getattr(self, "_group_index_cache", None)
        if index is None:
            index = {
                member: group
                for group in self.groups
                for member in group.ranked_members
            }
            object.__setattr__(self, "_group_index_cache", index)
        try:
            return index[scenario_index]
        except KeyError:
            raise KeyError(
                f"scenario {scenario_index} not in any group"
            ) from None

    # ------------------------------------------------------------------
    # Columnar member search.  ``first_member_where`` walks members one
    # at a time, fetching each scenario individually — on a store-backed
    # dataset that is a shard load per probe.  The methods below answer
    # the same questions from per-scenario columns built in ONE
    # sequential batch pass over the dataset and cached, so repeated
    # queries (one per group, one per job) cost a numpy gather.  Keyed by
    # dataset length so a still-growing source never serves stale
    # columns.

    def _columns(self) -> dict:
        cache = getattr(self, "_column_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_column_cache", cache)
        return cache

    def job_counts(self, job_name: str) -> np.ndarray:
        """Per-scenario instance count of *job_name* (cached column)."""
        cache = self._columns()
        key = ("job", job_name, len(self.dataset))
        if key not in cache:
            counts = np.zeros(len(self.dataset), dtype=np.int64)
            row = 0
            for batch in self.dataset.iter_batches():
                for scenario in batch.scenarios:
                    counts[row] = scenario.count_of(job_name)
                    row += 1
            cache[key] = counts
        return cache[key]

    def hp_presence(self) -> np.ndarray:
        """Per-scenario "hosts any HP instance" flag (cached column)."""
        cache = self._columns()
        key = ("hp", len(self.dataset))
        if key not in cache:
            mask = np.zeros(len(self.dataset), dtype=bool)
            row = 0
            for batch in self.dataset.iter_batches():
                for scenario in batch.scenarios:
                    mask[row] = any(
                        inst.signature.is_high_priority
                        for inst in scenario.instances
                    )
                    row += 1
            cache[key] = mask
        return cache[key]

    def _first_member(
        self, group: ClusterGroup, present: np.ndarray
    ) -> Scenario | None:
        members = np.fromiter(
            group.ranked_members, dtype=np.int64, count=group.size
        )
        hits = np.flatnonzero(present[members])
        if hits.size == 0:
            return None
        return self.dataset[int(members[hits[0]])]

    def first_member_with_job(
        self, group: ClusterGroup, job_name: str
    ) -> Scenario | None:
        """Columnar :meth:`ClusterGroup.first_member_where` for "hosts
        *job_name*"; same answer, one dataset pass for all groups."""
        return self._first_member(group, self.job_counts(job_name) > 0)

    def first_member_with_hp(self, group: ClusterGroup) -> Scenario | None:
        """Columnar fallback search for "hosts any HP instance"."""
        return self._first_member(group, self.hp_presence())

    def job_instance_weight(self, group: ClusterGroup, job_name: str) -> float:
        """Observation-weighted instance count of *job_name* in *group*.

        Used to weight per-job impacts by "the likelihood to observe the
        job" in each group (§5.3).  Computed from the cached count
        column; the final sum keeps the sequential left-to-right float
        association of the historical per-member walk, so the result is
        bit-identical to ``sum(weights[i] * dataset[i].count_of(job))``
        over ``ranked_members``.
        """
        cache = self._columns()
        key = ("weights", len(self.dataset))
        if key not in cache:
            cache[key] = self.dataset.weights()
        weights = cache[key]
        members = np.fromiter(
            group.ranked_members, dtype=np.int64, count=group.size
        )
        products = weights[members] * self.job_counts(job_name)[members]
        return float(sum(products.tolist()))

    def with_cluster_weights(
        self,
        cluster_weights: np.ndarray,
        dataset: ScenarioSource | None = None,
    ) -> "RepresentativeSet":
        """Same groups and member rankings under new group weights.

        Reweighting flows (§5.6) change only observation-time shares —
        cluster membership and centroid distances are untouched — so the
        ranked members are carried over instead of being re-derived from
        the score matrix (which an out-of-core fit never materialises).
        """
        groups = tuple(
            replace(group, weight=float(cluster_weights[group.cluster_id]))
            for group in self.groups
        )
        # The baseline intentionally keeps its fit-time values: drift is
        # always scored against the state the model was trusted in.
        return RepresentativeSet(
            dataset=dataset if dataset is not None else self.dataset,
            groups=groups,
            baseline=self.baseline,
        )


def _rank_quantise(distances: np.ndarray) -> np.ndarray:
    """Round centroid distances for ranking (9 decimals).

    Member ranking must agree between the in-memory and out-of-core
    fits, whose whitened scores differ by the streamed-statistics
    tolerance (~1e-12 relative).  Two members of a 2-point cluster are
    equidistant from their centroid up to rounding, and raw float
    comparison breaks such ties differently on each path; quantising
    far below any behavioural difference but far above the noise makes
    the tie explicit, so the stable sort breaks it by scenario index on
    both paths.
    """
    return np.round(distances, 9)


def extract_representatives(
    analysis: AnalysisResult, dataset: ScenarioDataset
) -> RepresentativeSet:
    """Build the representative set from a completed analysis."""
    if analysis.scores is None:
        raise ValueError(
            "analysis carries no score matrix (out-of-core fit); use "
            "representatives_from_assignments instead"
        )
    if analysis.scores.shape[0] != len(dataset):
        raise ValueError(
            f"analysis covers {analysis.scores.shape[0]} scenarios but "
            f"dataset has {len(dataset)}"
        )
    groups = []
    for cluster_id in range(analysis.n_clusters):
        members = analysis.members_of(cluster_id)
        if members.size == 0:
            # K-means empty-cluster repair should prevent this, but a
            # degenerate dataset (fewer distinct points than clusters) can
            # still produce it; such a group carries no weight.
            continue
        centroid = analysis.kmeans.centroids[cluster_id]
        distances = np.linalg.norm(
            analysis.scores[members] - centroid, axis=1
        )
        order = np.argsort(_rank_quantise(distances), kind="stable")
        groups.append(
            ClusterGroup(
                cluster_id=cluster_id,
                weight=float(analysis.cluster_weights[cluster_id]),
                centroid=centroid.copy(),
                ranked_members=tuple(int(members[i]) for i in order),
            )
        )
    from ..stats.kmeans import assigned_sq_distances

    baseline = fit_baseline_from_assignments(
        labels=analysis.kmeans.labels,
        sq_distances=assigned_sq_distances(
            analysis.scores, analysis.kmeans.centroids, analysis.kmeans.labels
        ),
        weights=dataset.weights(),
        n_clusters=analysis.n_clusters,
    )
    return RepresentativeSet(
        dataset=dataset, groups=tuple(groups), baseline=baseline
    )


def representatives_from_assignments(
    *,
    labels: np.ndarray,
    sq_distances: np.ndarray,
    centroids: np.ndarray,
    cluster_weights: np.ndarray,
    dataset: ScenarioSource,
) -> RepresentativeSet:
    """Representative set from per-point assignments alone.

    The out-of-core companion to :func:`extract_representatives`: the
    streaming fit never holds the full whitened score matrix, but its
    final labelling pass yields each row's cluster and squared distance
    to its centroid — exactly the information member ranking needs.
    Ranking by squared distance is ranking by distance (monotone), with
    the same stable index tie-break as the in-memory path.
    """
    if labels.shape[0] != len(dataset):
        raise ValueError(
            f"assignments cover {labels.shape[0]} scenarios but dataset "
            f"has {len(dataset)}"
        )
    groups = []
    for cluster_id in range(centroids.shape[0]):
        members = np.flatnonzero(labels == cluster_id)
        if members.size == 0:
            continue
        distances = np.sqrt(sq_distances[members])
        order = np.argsort(_rank_quantise(distances), kind="stable")
        groups.append(
            ClusterGroup(
                cluster_id=cluster_id,
                weight=float(cluster_weights[cluster_id]),
                centroid=centroids[cluster_id].copy(),
                ranked_members=tuple(int(members[i]) for i in order),
            )
        )
    baseline = fit_baseline_from_assignments(
        labels=labels,
        sq_distances=sq_distances,
        weights=dataset.weights(),
        n_clusters=int(centroids.shape[0]),
    )
    return RepresentativeSet(
        dataset=dataset, groups=tuple(groups), baseline=baseline
    )
