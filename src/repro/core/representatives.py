"""Step 3 output: representative scenario extraction (paper §4.4–4.5).

For each cluster, the representative is the member scenario nearest to the
cluster centroid.  Members are kept ranked by centroid distance so the
per-job estimator can walk to the "next nearest" scenario when the
representative does not contain the job of interest (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cluster.scenario import Scenario, ScenarioDataset
from .analyzer import AnalysisResult

__all__ = ["ClusterGroup", "RepresentativeSet", "extract_representatives"]


@dataclass(frozen=True)
class ClusterGroup:
    """One scenario group and its representative.

    Attributes
    ----------
    cluster_id:
        Cluster index.
    weight:
        Observation-time share of the group (sums to 1 across groups).
    centroid:
        Cluster centre in whitened PC space.
    ranked_members:
        Scenario indices ordered by distance to the centroid (nearest
        first); ``ranked_members[0]`` is the representative.
    """

    cluster_id: int
    weight: float
    centroid: np.ndarray
    ranked_members: tuple[int, ...]

    @property
    def representative_index(self) -> int:
        return self.ranked_members[0]

    @property
    def size(self) -> int:
        return len(self.ranked_members)

    def first_member_where(
        self,
        dataset: ScenarioDataset,
        predicate: Callable[[Scenario], bool],
    ) -> Scenario | None:
        """Nearest-to-centroid member satisfying *predicate* (or None).

        This is the paper's fallback: "we check the next nearest scenario
        to the cluster center until we find the target job".
        """
        for index in self.ranked_members:
            scenario = dataset[index]
            if predicate(scenario):
                return scenario
        return None


@dataclass(frozen=True)
class RepresentativeSet:
    """All cluster groups of one analysis, plus convenience accessors."""

    dataset: ScenarioDataset
    groups: tuple[ClusterGroup, ...]

    def __len__(self) -> int:
        return len(self.groups)

    def representative_scenarios(self) -> tuple[Scenario, ...]:
        """The one-per-group representative scenarios."""
        return tuple(
            self.dataset[g.representative_index] for g in self.groups
        )

    def weights(self) -> np.ndarray:
        return np.array([g.weight for g in self.groups])

    def group_of_scenario(self, scenario_index: int) -> ClusterGroup:
        """The group containing dataset scenario *scenario_index*."""
        for group in self.groups:
            if scenario_index in group.ranked_members:
                return group
        raise KeyError(f"scenario {scenario_index} not in any group")

    def job_instance_weight(self, group: ClusterGroup, job_name: str) -> float:
        """Observation-weighted instance count of *job_name* in *group*.

        Used to weight per-job impacts by "the likelihood to observe the
        job" in each group (§5.3).
        """
        weights = self.dataset.weights()
        return float(
            sum(
                weights[idx] * self.dataset[idx].count_of(job_name)
                for idx in group.ranked_members
            )
        )


def extract_representatives(
    analysis: AnalysisResult, dataset: ScenarioDataset
) -> RepresentativeSet:
    """Build the representative set from a completed analysis."""
    if analysis.scores.shape[0] != len(dataset):
        raise ValueError(
            f"analysis covers {analysis.scores.shape[0]} scenarios but "
            f"dataset has {len(dataset)}"
        )
    groups = []
    for cluster_id in range(analysis.n_clusters):
        members = analysis.members_of(cluster_id)
        if members.size == 0:
            # K-means empty-cluster repair should prevent this, but a
            # degenerate dataset (fewer distinct points than clusters) can
            # still produce it; such a group carries no weight.
            continue
        centroid = analysis.kmeans.centroids[cluster_id]
        distances = np.linalg.norm(
            analysis.scores[members] - centroid, axis=1
        )
        order = np.argsort(distances, kind="stable")
        groups.append(
            ClusterGroup(
                cluster_id=cluster_id,
                weight=float(analysis.cluster_weights[cluster_id]),
                centroid=centroid.copy(),
                ranked_members=tuple(int(members[i]) for i in order),
            )
        )
    return RepresentativeSet(dataset=dataset, groups=tuple(groups))
