"""Performance definitions shared by FLARE and the baselines (paper §5.1).

The summarising metric is instruction-throughput based::

    Performance = Job MIPS / Job's Inherent MIPS

where *inherent MIPS* is measured with the job running alone on an empty
machine.  Normalising prevents jobs with naturally high MIPS from
dominating.  Only High-Priority jobs count; LP batch jobs run on free
quota.  A feature's impact on a scenario is the relative MIPS reduction of
its normalised HP performance versus the baseline configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from collections.abc import Sequence

from ..cluster.scenario import Scenario
from ..perfmodel.batch import solve_colocation_many
from ..perfmodel.contention import (
    ColocationPerformance,
    RunningInstance,
    solve_colocation_cached,
)
from ..perfmodel.machine import MachinePerf
from ..perfmodel.signatures import JobSignature

__all__ = [
    "inherent_mips",
    "ScenarioPerformance",
    "scenario_performance",
    "scenario_performance_many",
    "mips_reduction_pct",
]


@lru_cache(maxsize=4096)
def inherent_mips(
    machine: MachinePerf, signature: JobSignature, load: float
) -> float:
    """MIPS of one instance running alone on an empty *machine* at *load*.

    Normalising at the instance's own submitted load isolates interference
    effects from demand effects: a half-loaded server is not "degraded".
    """
    solution = solve_colocation_cached(
        machine, (RunningInstance(signature=signature, load=load),)
    )
    return solution.instances[0].mips


@dataclass(frozen=True)
class ScenarioPerformance:
    """Normalised HP performance of one scenario under one machine config.

    Attributes
    ----------
    overall:
        Mean normalised performance over HP instances (0 when the scenario
        hosts no HP job).
    per_instance:
        Normalised performance of each HP instance, in scenario order.
    per_job:
        Mean normalised performance per HP job name.
    """

    overall: float
    per_instance: tuple[float, ...]
    per_job: dict[str, float]

    @property
    def has_hp(self) -> bool:
        return bool(self.per_instance)


def scenario_performance(
    machine: MachinePerf,
    scenario: Scenario,
    *,
    normalize_machine: MachinePerf | None = None,
) -> ScenarioPerformance:
    """Normalised HP performance of *scenario* on *machine*.

    Parameters
    ----------
    normalize_machine:
        Machine used to measure inherent MIPS.  Defaults to *machine*
        itself; pass the baseline machine to keep the normaliser fixed
        while sweeping features (both conventions give identical MIPS
        *reduction* numbers — the normaliser cancels — but fixing it makes
        per-configuration performance values comparable).
    """
    norm_machine = normalize_machine if normalize_machine is not None else machine
    solution = solve_colocation_cached(machine, scenario.instances)
    return _performance_from_solution(solution, scenario, norm_machine)


def scenario_performance_many(
    machine: MachinePerf,
    scenarios: Sequence[Scenario],
    *,
    normalize_machine: MachinePerf | None = None,
    solver: str = "auto",
    memo=None,
) -> tuple[ScenarioPerformance, ...]:
    """Normalised HP performance of many scenarios on one machine.

    The batched equivalent of calling :func:`scenario_performance` per
    scenario, and bit-identical to doing so: the contention fixed point
    runs through :func:`repro.perfmodel.batch.solve_colocation_many`
    (respecting the shared solve memo — hits are reused, misses solved
    as one batch), and the inherent-MIPS normalisers go through the
    same per-signature cache as the scalar path.  *solver* selects the
    fixed-point implementation (``"scalar"``, ``"batched"``, or
    ``"auto"``); *memo* optionally routes solves through a persistent
    content-addressed :class:`~repro.perfmodel.memo.SolveMemo` so hits
    survive across batches, processes, and runs.
    """
    norm_machine = normalize_machine if normalize_machine is not None else machine
    solutions = solve_colocation_many(
        machine,
        [scenario.instances for scenario in scenarios],
        solver=solver,
        cached=True,
        memo=memo,
    )
    return tuple(
        _performance_from_solution(solution, scenario, norm_machine)
        for solution, scenario in zip(solutions, scenarios)
    )


def _performance_from_solution(
    solution: ColocationPerformance,
    scenario: Scenario,
    norm_machine: MachinePerf,
) -> ScenarioPerformance:
    """Normalise a solved co-location into a :class:`ScenarioPerformance`."""
    per_instance: list[float] = []
    per_job_acc: dict[str, list[float]] = {}
    for running, perf in zip(scenario.instances, solution.instances):
        if not perf.is_high_priority:
            continue
        inherent = inherent_mips(norm_machine, running.signature, running.load)
        normalised = perf.mips / inherent if inherent > 0 else 0.0
        per_instance.append(normalised)
        per_job_acc.setdefault(perf.job_name, []).append(normalised)

    per_job = {
        name: sum(values) / len(values) for name, values in per_job_acc.items()
    }
    overall = sum(per_instance) / len(per_instance) if per_instance else 0.0
    return ScenarioPerformance(
        overall=overall, per_instance=tuple(per_instance), per_job=per_job
    )


def mips_reduction_pct(baseline_perf: float, feature_perf: float) -> float:
    """Relative MIPS reduction (%) going from baseline to feature."""
    if baseline_perf <= 0.0:
        return 0.0
    return (baseline_perf - feature_perf) / baseline_perf * 100.0
