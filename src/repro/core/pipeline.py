"""The end-to-end FLARE pipeline (paper Figure 4).

``Flare`` wires the four steps together:

1. **Profiler** — collect 100+ raw metrics per scenario and refine away
   correlated duplicates;
2. **Analyzer (metrics)** — standardise + PCA into ~20 interpretable
   high-level metrics;
3. **Analyzer (grouping)** — whiten, cluster, and extract one
   representative scenario per group;
4. **Replayer** — measure a feature on the representatives only and
   weight by group size.

Typical use::

    flare = Flare().fit(simulation_result.dataset)
    estimate = flare.evaluate(FEATURE_1_CACHE)
    print(estimate.reduction_pct)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._deprecations import resolve_renamed_kwarg
from ..cluster.features import Feature
from ..cluster.scenario import ScenarioDataset, ScenarioKey
from ..cluster.source import ScenarioSource, resolve_source_argument
from ..obs import span as obs_span
from ..runtime.config import RuntimeConfig, resolve_runtime
from ..runtime.executor import Executor
from ..stats.correlation import PruneReport
from ..telemetry.database import Database
from ..telemetry.profiler import ProfiledDataset, Profiler
from .analyzer import AnalysisResult, Analyzer, AnalyzerConfig
from .estimation import (
    FeatureImpactEstimate,
    estimate_all_job_impact,
    estimate_per_job_impact,
)
from .interpretation import ComponentInterpretation, interpret_components
from .refinement import RefinedDataset, refine
from .replayer import Replayer
from .representatives import RepresentativeSet, extract_representatives

__all__ = ["FlareConfig", "Flare"]


@dataclass(frozen=True)
class FlareConfig:
    """Configuration of the whole pipeline.

    Attributes
    ----------
    refinement_threshold:
        Correlation-pruning threshold (step 1).
    analyzer:
        PCA / clustering knobs (steps 2–3).
    noise_sigma / profiler_seed:
        Measurement-noise model of the Profiler.
    interpretation_top_n:
        Raw metrics listed per PC in the Figure 8 style report.
    temporal_samples / temporal_jitter:
        Enable the Profiler's temporal extension (§4.1): collect std-dev
        companions of key counters over jittered demand samples.
    per_job_metrics:
        Jobs to add per-job presence metrics for (§5.3's accuracy-vs-
        dimensionality trade-off; off by default as the paper recommends).
    solver:
        Contention-solver path for the Profiler and Replayer:
        ``"scalar"`` (per-scenario reference), ``"batched"``
        (vectorised over scenario batches), or ``"auto"`` (batched
        whenever more than one scenario is solved together).  The
        paths are bit-identical — see ``docs/perfmodel.md``.
    memo:
        Content-addressed solve memo spec for the Profiler and
        Replayer: ``"off"`` (default), ``"memory"`` (in-process LRU
        keyed by canonical content digest), or ``"store:<path>"``
        (persistent digest-verified segment directory shared across
        processes and runs).  Like ``solver=``, memoisation cannot
        change results — hits are bit-identical to fresh solves — so
        it is persisted with saved models as pure speed configuration.
        See the memo section of ``docs/perfmodel.md``.
    runtime:
        Default :class:`~repro.runtime.RuntimeConfig` for this model's
        fan-out stages (fitting, evaluation).  ``None`` keeps every
        call serial-inline unless a ``runtime=`` argument is passed
        explicitly; a per-call ``runtime=`` always wins over this
        default.  Persisted with saved models (like ``solver=``), and
        — like every runtime knob — unable to change results, only
        speed and failure behaviour.
    """

    refinement_threshold: float = 0.98
    analyzer: AnalyzerConfig = field(default_factory=AnalyzerConfig)
    noise_sigma: float = 0.02
    profiler_seed: int = 7
    interpretation_top_n: int = 6
    temporal_samples: int = 0
    temporal_jitter: float = 0.15
    per_job_metrics: tuple[str, ...] = ()
    solver: str = "auto"
    memo: str = "off"
    runtime: RuntimeConfig | None = None

    def __post_init__(self) -> None:
        from ..perfmodel.batch import resolve_solver_mode
        from ..perfmodel.memo import validate_memo_spec

        resolve_solver_mode(self.solver, 0)  # validate eagerly
        validate_memo_spec(self.memo)
        if self.runtime is not None and not isinstance(
            self.runtime, RuntimeConfig
        ):
            raise TypeError(
                "FlareConfig.runtime must be a RuntimeConfig or None, "
                f"got {self.runtime!r}"
            )

    def make_profiler(self, *, database: Database | None = None) -> Profiler:
        """Build the Profiler this configuration describes.

        The single construction point for Profilers: every collection
        path (fitting, out-of-sample classification, cache warm-up) uses
        the same knobs, so none can silently drop one.  ``database`` is
        per-call because only fitting persists samples.
        """
        return Profiler(
            noise_sigma=self.noise_sigma,
            seed=self.profiler_seed,
            database=database,
            temporal_samples=self.temporal_samples,
            temporal_jitter=self.temporal_jitter,
            per_job_metrics=self.per_job_metrics,
            solver=self.solver,
            memo=self.memo if self.memo != "off" else None,
        )


class Flare:
    """Facade over Profiler → Analyzer → representative extraction →
    Replayer."""

    def __init__(
        self,
        config: FlareConfig | None = None,
        *,
        database: Database | None = None,
    ) -> None:
        self.config = config if config is not None else FlareConfig()
        self.database = database
        self._profiled: ProfiledDataset | None = None
        self._refined: RefinedDataset | None = None
        self._analysis: AnalysisResult | None = None
        self._representatives: RepresentativeSet | None = None
        self._interpretations: tuple[ComponentInterpretation, ...] | None = None
        self._replayer: Replayer | None = None
        #: Pruning provenance for out-of-core fits, where no
        #: RefinedDataset exists to carry it.
        self._prune_report: PruneReport | None = None
        self._streaming = False
        #: Provenance chain of refit-path models (see repro.core.refit);
        #: empty for models fitted directly.
        self.lineage: tuple = ()
        #: Deterministic-replay plan of a refit-path model (chosen k,
        #: warm-start centroids) — what save_model/load_model need to
        #: reproduce a warm-started fit exactly.
        self._refit_plan: dict | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        source: "ScenarioSource | None" = None,
        *,
        runtime: "RuntimeConfig | Executor | str | None" = None,
        executor: "Executor | str | None" = None,
        dataset: ScenarioDataset | None = None,
    ) -> "Flare":
        """Run steps 1–3 on a scenario source; returns self.

        Accepts any :class:`~repro.cluster.ScenarioSource`.  An
        in-memory :class:`ScenarioDataset` takes the classic path
        (full matrices resident); any other source — a sharded
        :class:`~repro.store.ShardedScenarioStore` in particular — is
        fitted out-of-core via :func:`~repro.core.streaming_fit`,
        with peak memory bounded by the shard size.

        ``runtime`` parallelises the profiling fan-out (the dominant
        cost of fitting): a :class:`~repro.runtime.RuntimeConfig`, an
        executor instance, or a spec string like ``"process:4"``.
        When omitted, ``config.runtime`` applies (serial-inline when
        that is ``None`` too).  Results are bit-identical to serial
        fitting under any runtime, dispatch mode or worker count,
        including with fault injection enabled — see
        :mod:`repro.runtime.resilience`.  The legacy ``executor=`` and
        ``dataset=`` keywords still work with a
        ``DeprecationWarning``.
        """
        runtime = resolve_renamed_kwarg(
            runtime,
            executor,
            owner="Flare.fit",
            old_name="executor",
            new_name="runtime",
            required=False,
        )
        if runtime is None:
            runtime = self.config.runtime
        source = resolve_source_argument(source, dataset, owner="Flare.fit")
        if len(source) < 2:
            raise ValueError("FLARE needs at least 2 scenarios to fit")
        if not isinstance(source, ScenarioDataset):
            return self._fit_streaming(source, runtime=runtime)
        dataset = source
        with obs_span("flare.fit", n_scenarios=len(dataset)) as fit_span:
            profiler = self.config.make_profiler(database=self.database)
            with obs_span("flare.profile"):
                self._profiled = profiler.profile(dataset, runtime=runtime)
            with obs_span("flare.refine"):
                self._refined = refine(
                    self._profiled, threshold=self.config.refinement_threshold
                )
            with obs_span("flare.analyze"):
                self._analysis = Analyzer(self.config.analyzer).analyze(
                    self._refined
                )
            with obs_span("flare.representatives"):
                self._representatives = extract_representatives(
                    self._analysis, dataset
                )
            with obs_span("flare.interpret"):
                self._interpretations = interpret_components(
                    self._analysis.pca,
                    self._refined.specs,
                    n_components=self._analysis.n_components,
                    top_n=self.config.interpretation_top_n,
                )
            self._replayer = Replayer(
                dataset.shape,
                catalogue=_catalogue_from(dataset),
                solver=self.config.solver,
                memo=self.config.memo if self.config.memo != "off" else None,
            )
            if fit_span is not None:
                fit_span.attrs["n_clusters"] = self._analysis.n_clusters
                fit_span.attrs["n_components"] = self._analysis.n_components
        self._ledger_record(
            "fit",
            runtime=runtime,
            metrics={
                "n_scenarios": float(len(dataset)),
                "n_clusters": float(self._analysis.n_clusters),
                "n_components": float(self._analysis.n_components),
                "sse_per_scenario": (
                    self.representatives.baseline.sse_per_scenario
                ),
            },
        )
        return self

    def _fit_streaming(
        self,
        source: "ScenarioSource",
        *,
        runtime: "RuntimeConfig | Executor | str | None" = None,
    ) -> "Flare":
        """Out-of-core fit over a non-resident source (sharded store)."""
        from .streaming_fit import streaming_fit

        with obs_span(
            "flare.fit", n_scenarios=len(source), streaming=True
        ) as fit_span:
            result = streaming_fit(
                source,
                self.config,
                database=self.database,
                runtime=runtime,
            )
            self._streaming = True
            self._analysis = result.analysis
            self._prune_report = result.report
            self._representatives = result.representatives
            with obs_span("flare.interpret"):
                self._interpretations = interpret_components(
                    result.analysis.pca,
                    result.specs,
                    n_components=result.analysis.n_components,
                    top_n=self.config.interpretation_top_n,
                )
            self._replayer = Replayer(
                source.shape,
                catalogue=_catalogue_from(source),
                solver=self.config.solver,
                memo=self.config.memo if self.config.memo != "off" else None,
            )
            if fit_span is not None:
                fit_span.attrs["n_clusters"] = self._analysis.n_clusters
                fit_span.attrs["n_components"] = self._analysis.n_components
        self._ledger_record(
            "fit",
            runtime=runtime,
            metrics={
                "n_scenarios": float(len(source)),
                "n_clusters": float(self._analysis.n_clusters),
                "n_components": float(self._analysis.n_components),
                "sse_per_scenario": (
                    self.representatives.baseline.sse_per_scenario
                ),
            },
            labels={"streaming": True},
        )
        return self

    # ------------------------------------------------------------------
    def refit(
        self,
        source: "ScenarioSource | None" = None,
        *,
        spill_dir,
        mode: str = "auto",
        watermark: int | None = None,
        trigger: str = "manual",
        runtime: "RuntimeConfig | Executor | str | None" = None,
        max_scaler_drift: float | None = None,
    ) -> "Flare":
        """Refit this model over a grown *source*, reusing its spill.

        Returns a **new** fitted :class:`Flare` whose ``lineage``
        extends this model's by one entry; ``self`` is untouched.  The
        metric spill at *spill_dir* must be the one this model was
        fitted from (see :func:`repro.core.refit.refit`): only the
        rows past ``watermark`` are re-profiled, and the previous
        centroids warm-start a single clustering run unless a
        soundness gate (cluster-count change, scaler drift) forces a
        full re-fit of the spill.
        """
        from .refit import DEFAULT_MAX_SCALER_DRIFT, refit as _refit

        if source is None:
            source = self.dataset
        if runtime is None:
            runtime = self.config.runtime
        return _refit(
            source,
            self.config,
            spill_dir=spill_dir,
            prev=self,
            mode=mode,
            watermark=watermark,
            trigger=trigger,
            database=self.database,
            runtime=runtime,
            max_scaler_drift=(
                DEFAULT_MAX_SCALER_DRIFT
                if max_scaler_drift is None
                else max_scaler_drift
            ),
        )

    def watch(
        self,
        source: "ScenarioSource",
        *,
        spill_dir,
        thresholds=None,
        runtime: "RuntimeConfig | Executor | str | None" = None,
        max_scaler_drift: float | None = None,
        max_cycles: int | None = None,
        idle=None,
    ):
        """Drive the fleet control loop: ingest → monitor → refit.

        A generator of :class:`repro.core.refit.WatchDecision`, one per
        cycle; see :func:`repro.core.refit.watch` for the loop contract
        and the ``repro fleet`` CLI for the end-to-end harness.
        """
        from .refit import watch as _watch

        if runtime is None:
            runtime = self.config.runtime
        return _watch(
            self,
            source,
            spill_dir=spill_dir,
            thresholds=thresholds,
            runtime=runtime,
            max_scaler_drift=max_scaler_drift,
            max_cycles=max_cycles,
            idle=idle,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        feature: Feature,
        *,
        runtime: "RuntimeConfig | Executor | str | None" = None,
        executor: "Executor | str | None" = None,
    ) -> FeatureImpactEstimate:
        """All-job impact estimate of *feature* (step 4).

        Per-representative replays dispatch on *runtime*
        (``config.runtime`` when omitted, serial when that is ``None``
        too); the estimate is identical for every runtime.  The legacy
        ``executor=`` keyword still works with a
        ``DeprecationWarning``.
        """
        runtime = self._evaluation_runtime(runtime, executor, "Flare.evaluate")
        with obs_span("flare.evaluate", feature=feature.name):
            estimate = self._with_runtime_executor(
                runtime,
                lambda pool: estimate_all_job_impact(
                    self.representatives, self.replayer, feature, executor=pool
                ),
            )
        self._ledger_record(
            "evaluate",
            runtime=runtime,
            metrics={"reduction_pct": float(estimate.reduction_pct)},
            labels={"feature": feature.name},
        )
        return estimate

    def evaluate_job(
        self,
        feature: Feature,
        job_name: str,
        *,
        runtime: "RuntimeConfig | Executor | str | None" = None,
        executor: "Executor | str | None" = None,
    ) -> FeatureImpactEstimate:
        """Per-job impact estimate of *feature* on *job_name*."""
        runtime = self._evaluation_runtime(
            runtime, executor, "Flare.evaluate_job"
        )
        with obs_span(
            "flare.evaluate_job", feature=feature.name, job=job_name
        ):
            estimate = self._with_runtime_executor(
                runtime,
                lambda pool: estimate_per_job_impact(
                    self.representatives,
                    self.replayer,
                    feature,
                    job_name,
                    executor=pool,
                ),
            )
        self._ledger_record(
            "evaluate",
            runtime=runtime,
            metrics={"reduction_pct": float(estimate.reduction_pct)},
            labels={"feature": feature.name, "job": job_name},
        )
        return estimate

    def _ledger_record(
        self,
        kind: str,
        *,
        runtime=None,
        metrics: dict | None = None,
        labels: dict | None = None,
    ) -> None:
        """Append a run record when a ledger is active (no-op otherwise).

        The guard keeps the un-observed hot path free of record
        assembly: without an active ledger this is one global read.
        """
        from ..obs.ledger import get_ledger, record_run

        if get_ledger() is None:
            return
        config: dict = {"solver": self.config.solver}
        if self.config.memo != "off":
            config["memo"] = self.config.memo
        runtime_config = getattr(runtime, "config", runtime)
        if isinstance(runtime_config, RuntimeConfig):
            config["runtime"] = runtime_config.to_dict()
        elif runtime_config is not None:
            config["runtime"] = str(runtime_config)
        elif self.config.runtime is not None:
            config["runtime"] = self.config.runtime.to_dict()
        record_run(kind, config=config, metrics=metrics, labels=labels)

    def health(
        self,
        source: "ScenarioSource | None" = None,
        *,
        runtime: "RuntimeConfig | Executor | str | None" = None,
        thresholds=None,
    ) -> "object":
        """Drift report of *source* against this model's fit baseline.

        The fleet-health entry point (ROADMAP item 3's monitoring
        half): streams *source* — or, by default, the model's own
        dataset as a self-check — through the fitted pipeline and
        scores cluster-occupancy shift (PSI), SSE deltas and novelty
        rate against the :class:`~repro.core.representatives.FitBaseline`
        recorded at fit time.  See :class:`repro.obs.DriftMonitor`.
        """
        from ..obs.monitor import DriftMonitor

        monitor = DriftMonitor(self, thresholds)
        if source is None:
            source = self.dataset
        report = monitor.observe(source, runtime=runtime)
        self._ledger_record(
            "monitor",
            runtime=runtime,
            metrics={
                "psi_total": report.psi_total,
                "novelty_rate": report.novelty_rate,
                "sse_ratio": report.sse_ratio,
                "n_scenarios": float(report.n_scenarios),
            },
            labels={"status": report.status},
        )
        return report

    def _evaluation_runtime(self, runtime, executor, owner: str):
        """Merge the new/legacy/config spellings of the runtime argument."""
        runtime = resolve_renamed_kwarg(
            runtime,
            executor,
            owner=owner,
            old_name="executor",
            new_name="runtime",
            required=False,
        )
        return runtime if runtime is not None else self.config.runtime

    @staticmethod
    def _with_runtime_executor(runtime, call):
        """Run *call* with the runtime's executor, closing it if owned.

        ``runtime=None`` preserves the historical contract: the callee
        resolves its own executor (environment fallback included).
        """
        if runtime is None:
            return call(None)
        resolved = resolve_runtime(runtime)
        try:
            return call(resolved.executor)
        finally:
            if resolved is not runtime:
                resolved.close()

    def reweight(
        self, durations: dict[ScenarioKey, float]
    ) -> "Flare":
        """Re-derive representatives under new scenario observation times.

        Implements the §5.6 scheduler-change flow: a new scheduler changes
        how often each co-location occurs, not which behaviours exist, so
        FLARE restarts from step 3 — the collected metrics, PCA space and
        cluster structure are all reused; only group weights (and thus the
        impact weighting) change.  Returns a new fitted ``Flare``.
        """
        with obs_span("flare.reweight", n_durations=len(durations)):
            reweighted_dataset = self.dataset.with_weights_from(durations)
            cluster_weights = self.analysis.kmeans.cluster_weights(
                sample_weight=reweighted_dataset.weights()
            )
            return self._clone_with(
                cluster_weights=cluster_weights, dataset=reweighted_dataset
            )

    def classify_dataset(self, new_dataset: ScenarioDataset) -> "np.ndarray":
        """Assign each scenario of *new_dataset* to a fitted cluster.

        Profiles the new scenarios with the same Profiler settings,
        restricts them to the surviving (refined) metric columns, and
        projects them through the fitted standardise → PCA → whiten →
        nearest-centroid path.

        The new dataset must come from the same machine shape: metric
        values are not comparable across shapes (§5.5), so cross-shape
        classification is rejected rather than silently mis-assigned.
        """
        if new_dataset.shape != self.dataset.shape:
            raise ValueError(
                f"cannot classify scenarios from shape "
                f"{new_dataset.shape.name!r} with a model fitted on "
                f"{self.dataset.shape.name!r}; derive a new representative "
                "set per machine shape (paper §5.5)"
            )
        profiled = self.config.make_profiler().profile(new_dataset)
        refined_matrix = profiled.matrix[:, list(self.prune_report.kept)]
        return self.analysis.classify(refined_matrix)

    def reweight_by_classification(
        self, new_dataset: ScenarioDataset
    ) -> "Flare":
        """Re-derive group weights from a *new* scenario population.

        The robust §5.6 path: instead of requiring the new scheduler's
        co-locations to match profiled ones exactly, each new scenario is
        classified into the behaviour group it belongs to, and group
        weights become the new population's observation-time shares.
        Representatives (and everything else) are reused unchanged.
        """
        labels = self.classify_dataset(new_dataset)
        new_weights = np.zeros(self.analysis.n_clusters)
        scenario_weights = new_dataset.weights()
        for label, weight in zip(labels, scenario_weights):
            new_weights[int(label)] += float(weight)
        total = new_weights.sum()
        if total <= 0.0:
            raise ValueError("new dataset carries no observation weight")
        new_weights /= total
        return self._clone_with(cluster_weights=new_weights)

    def _clone_with(
        self,
        *,
        cluster_weights: "np.ndarray",
        dataset: ScenarioDataset | None = None,
    ) -> "Flare":
        """New fitted ``Flare`` sharing steps 1–2, with new group weights.

        The single cloning path behind every reweighting flow: collected
        metrics, refinement, PCA space, interpretations and the replayer
        are shared with ``self``; only the cluster weights (and therefore
        the representatives' weighting over *dataset*) are re-derived.
        """
        new = Flare(self.config, database=self.database)
        new._profiled = self._profiled
        new._refined = self._refined
        new._prune_report = self._prune_report
        new._streaming = self._streaming
        new._interpretations = self._interpretations
        new._replayer = self._replayer
        new._analysis = replace(self.analysis, cluster_weights=cluster_weights)
        # Membership and centroid distances are invariant under a weight
        # change, so the ranked groups are carried over rather than
        # re-derived from the score matrix (which out-of-core fits never
        # materialise, and which costs O(n·k) to re-rank for nothing).
        new._representatives = self.representatives.with_cluster_weights(
            cluster_weights,
            dataset if dataset is not None else self.dataset,
        )
        return new

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> "ScenarioSource":
        """The scenario source the model currently represents.

        After :meth:`reweight` this reflects the new observation times,
        while :attr:`profiled` keeps the original collection provenance.
        For out-of-core fits this is the sharded store itself.
        """
        return self.representatives.dataset

    @property
    def profiled(self) -> ProfiledDataset:
        return self._require("_profiled")

    @property
    def refined(self) -> RefinedDataset:
        return self._require("_refined")

    @property
    def prune_report(self) -> PruneReport:
        """Which raw metrics survived refinement, on either fit path."""
        if self._refined is not None:
            return self._refined.report
        if self._prune_report is not None:
            return self._prune_report
        raise RuntimeError("Flare.fit() must be called first")

    @property
    def analysis(self) -> AnalysisResult:
        return self._require("_analysis")

    @property
    def representatives(self) -> RepresentativeSet:
        return self._require("_representatives")

    @property
    def interpretations(self) -> tuple[ComponentInterpretation, ...]:
        return self._require("_interpretations")

    @property
    def replayer(self) -> Replayer:
        return self._require("_replayer")

    def _require(self, attr: str):
        value = getattr(self, attr)
        if value is None:
            if self._streaming and attr in ("_profiled", "_refined"):
                raise RuntimeError(
                    f"this Flare was fitted out-of-core and the full "
                    f"{attr.lstrip('_')} matrix was never materialised; "
                    "refit in memory (e.g. Flare().fit(store.to_dataset())) "
                    "to access it"
                )
            raise RuntimeError("Flare.fit() must be called first")
        return value


def _catalogue_from(source: "ScenarioSource") -> dict:
    """Job name -> signature map built from the source's own instances.

    Lets the Replayer reconstruct scenarios that include jobs outside the
    built-in Table 3 catalogue (custom workloads).  Both the in-memory
    dataset and the sharded store expose their signature map directly;
    anything else is walked batch-by-batch.
    """
    signatures = getattr(source, "signatures", None)
    if signatures is not None:
        return dict(signatures)
    catalogue = {}
    for batch in source.iter_batches():
        for scenario in batch.scenarios:
            for instance in scenario.instances:
                catalogue.setdefault(
                    instance.signature.name, instance.signature
                )
    return catalogue
