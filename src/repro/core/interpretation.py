"""PC interpretation: attaching meaning to high-level metrics (Figure 8).

FLARE's datacenter behaviours are too complex to analyse in raw-metric
space, so each retained principal component is *labelled* from its largest
signed loadings — e.g. "high machine memory traffic combined with low HP
frontend efficiency".  The two-level metric collection makes co-location
traits visible: a PC can simultaneously reference HP-scope and
machine-scope versions of a counter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.pca import PCAResult
from ..telemetry.metrics import MetricLevel, MetricSpec

__all__ = ["LoadingEntry", "ComponentInterpretation", "interpret_components"]


@dataclass(frozen=True)
class LoadingEntry:
    """One raw metric's contribution to a PC."""

    spec: MetricSpec
    loading: float

    @property
    def sign(self) -> str:
        return "+" if self.loading >= 0 else "-"

    def describe(self) -> str:
        return f"{self.sign}{self.spec.name} ({self.loading:+.2f})"


@dataclass(frozen=True)
class ComponentInterpretation:
    """Labelled high-level metric: a PC plus its dominant raw metrics.

    Attributes
    ----------
    index:
        PC number (0-based).
    explained_variance_ratio:
        Share of dataset variance this PC explains.
    top_loadings:
        The largest-|loading| raw metrics, descending.
    label:
        Auto-generated human-readable interpretation.
    """

    index: int
    explained_variance_ratio: float
    top_loadings: tuple[LoadingEntry, ...]
    label: str

    def describe(self) -> str:
        """One-line summary suitable for the Figure 8 style report."""
        loads = ", ".join(entry.describe() for entry in self.top_loadings)
        return (
            f"PC{self.index} ({self.explained_variance_ratio:.1%} var): "
            f"{self.label} [{loads}]"
        )


def interpret_components(
    pca: PCAResult,
    specs: tuple[MetricSpec, ...],
    *,
    n_components: int | None = None,
    top_n: int = 6,
    min_loading: float = 0.10,
) -> tuple[ComponentInterpretation, ...]:
    """Label each retained PC from its dominant loadings.

    Parameters
    ----------
    n_components:
        How many PCs to interpret (default: all in *pca*).
    top_n:
        Maximum raw metrics listed per PC.
    min_loading:
        Loadings below this magnitude are omitted (the paper's Figure 8
        likewise drops small-weight metrics).
    """
    if len(specs) != pca.components.shape[1]:
        raise ValueError(
            f"{len(specs)} metric specs do not match "
            f"{pca.components.shape[1]} PCA features"
        )
    count = (
        pca.components.shape[0] if n_components is None else n_components
    )
    if not 1 <= count <= pca.components.shape[0]:
        raise ValueError(f"n_components={count} out of range")

    interpretations = []
    for pc in range(count):
        loadings = pca.components[pc]
        order = np.argsort(-np.abs(loadings))
        entries = []
        for idx in order[:top_n]:
            if abs(loadings[idx]) < min_loading and entries:
                break
            entries.append(
                LoadingEntry(spec=specs[idx], loading=float(loadings[idx]))
            )
        interpretations.append(
            ComponentInterpretation(
                index=pc,
                explained_variance_ratio=float(
                    pca.explained_variance_ratio[pc]
                ),
                top_loadings=tuple(entries),
                label=_label_from_entries(entries),
            )
        )
    return tuple(interpretations)


def _label_from_entries(entries: list[LoadingEntry]) -> str:
    """Compose a phrase like "high Machine memory (MemTotalGBps); low HP
    topdown (Topdown-FrontendBound)" from the dominant loadings."""
    phrases: list[str] = []
    seen: set[tuple[str, str, str]] = set()
    for entry in entries[:3]:
        direction = "high" if entry.loading >= 0 else "low"
        scope = _scope_name(entry.spec)
        key = (direction, scope, entry.spec.category)
        if key in seen:
            continue
        seen.add(key)
        phrases.append(
            f"{direction} {scope} {entry.spec.category} ({entry.spec.base})"
        )
    return "; ".join(phrases) if phrases else "no dominant raw metric"


def _scope_name(spec: MetricSpec) -> str:
    if spec.level is MetricLevel.HP:
        return "HP-job"
    if spec.level is MetricLevel.MACHINE:
        return "machine"
    return "machine-env"
