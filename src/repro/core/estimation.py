"""Feature-impact estimation from representative scenarios (paper §4.5, §5.3).

*All-job* impact: replay each group's representative with the feature on
and off, and average the per-representative MIPS reductions weighted by
group size — the likelihood of observing a scenario from that group.

*Per-job* impact: a representative may not contain the job of interest
even when its group does; walk to the next-nearest member that does, and
weight groups by their observation-weighted instance count of the job.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.features import Feature
from ..cluster.scenario import Scenario
from ..runtime.executor import Executor
from ..runtime.resilience import TaskFailure
from .replayer import ReplayMeasurement, Replayer
from .representatives import RepresentativeSet

__all__ = [
    "ClusterImpact",
    "FeatureImpactEstimate",
    "estimate_all_job_impact",
    "estimate_per_job_impact",
]


@dataclass(frozen=True)
class ClusterImpact:
    """One group's contribution to an estimate."""

    cluster_id: int
    weight: float
    scenario_id: int
    reduction_pct: float
    measurement: ReplayMeasurement | None = None


@dataclass(frozen=True)
class FeatureImpactEstimate:
    """A FLARE estimate with its per-group breakdown.

    Attributes
    ----------
    feature:
        Feature evaluated.
    job_name:
        None for the all-job estimate; the job code for per-job ones.
    reduction_pct:
        The weighted-average MIPS reduction estimate.
    per_cluster:
        Group-level contributions (weights renormalised over the groups
        that could be measured).
    evaluation_cost:
        Number of scenario replays performed — the unit the paper's cost
        comparison (Figure 13) counts.
    """

    feature: Feature
    job_name: str | None
    reduction_pct: float
    per_cluster: tuple[ClusterImpact, ...]
    evaluation_cost: int

    def cluster_reductions(self) -> dict[int, float]:
        """Mapping cluster_id → estimated reduction (Figure 11 data)."""
        return {c.cluster_id: c.reduction_pct for c in self.per_cluster}


def estimate_all_job_impact(
    representatives: RepresentativeSet,
    replayer: Replayer,
    feature: Feature,
    *,
    executor: "Executor | str | None" = None,
) -> FeatureImpactEstimate:
    """FLARE's comprehensive (all HP jobs) impact estimate.

    Scenario selection stays serial (it is cheap); the per-representative
    replays — the measured cost of the method — fan out on *executor*.
    Replays degraded to :class:`~repro.runtime.resilience.TaskFailure`
    under a ``retry_then_skip`` policy are dropped and the estimate
    renormalises over the groups that were actually measured.
    """
    selected: list[tuple[tuple[int, float], Scenario]] = []
    for group in representatives.groups:
        scenario = representatives.first_member_with_hp(group)
        if scenario is None:
            # LP-only group: hosts nothing whose performance is managed.
            continue
        selected.append(((group.cluster_id, group.weight), scenario))

    measurements = replayer.replay_many(
        tuple(scenario for _, scenario in selected), feature, executor=executor
    )
    contributions = [
        ClusterImpact(
            cluster_id=cluster_id,
            weight=weight,
            scenario_id=scenario.scenario_id,
            reduction_pct=measurement.reduction_pct,
            measurement=measurement,
        )
        for ((cluster_id, weight), scenario), measurement in zip(
            selected, measurements
        )
        if not isinstance(measurement, TaskFailure)
    ]
    return _weighted_estimate(feature, None, contributions, len(contributions))


def estimate_per_job_impact(
    representatives: RepresentativeSet,
    replayer: Replayer,
    feature: Feature,
    job_name: str,
    *,
    executor: "Executor | str | None" = None,
) -> FeatureImpactEstimate:
    """FLARE's impact estimate for one HP job (§5.3 per-job method)."""
    selected: list[tuple[tuple[int, float], Scenario]] = []
    for group in representatives.groups:
        weight = representatives.job_instance_weight(group, job_name)
        if weight <= 0.0:
            continue
        scenario = representatives.first_member_with_job(group, job_name)
        if scenario is None:
            continue
        selected.append(((group.cluster_id, weight), scenario))

    measurements = replayer.replay_many(
        tuple(scenario for _, scenario in selected), feature, executor=executor
    )
    contributions = [
        ClusterImpact(
            cluster_id=cluster_id,
            weight=weight,
            scenario_id=scenario.scenario_id,
            reduction_pct=measurement.job_reduction_pct(job_name),
            measurement=measurement,
        )
        for ((cluster_id, weight), scenario), measurement in zip(
            selected, measurements
        )
        if not isinstance(measurement, TaskFailure)
    ]
    if not contributions:
        raise ValueError(
            f"job {job_name!r} does not appear in any scenario group"
        )
    return _weighted_estimate(
        feature, job_name, contributions, len(contributions)
    )


def _weighted_estimate(
    feature: Feature,
    job_name: str | None,
    contributions: list[ClusterImpact],
    cost: int,
) -> FeatureImpactEstimate:
    total_weight = sum(c.weight for c in contributions)
    if total_weight <= 0.0:
        raise ValueError("no measurable scenario groups for this estimate")
    normalised = tuple(
        ClusterImpact(
            cluster_id=c.cluster_id,
            weight=c.weight / total_weight,
            scenario_id=c.scenario_id,
            reduction_pct=c.reduction_pct,
            measurement=c.measurement,
        )
        for c in contributions
    )
    estimate = sum(c.weight * c.reduction_pct for c in normalised)
    return FeatureImpactEstimate(
        feature=feature,
        job_name=job_name,
        reduction_pct=float(estimate),
        per_cluster=normalised,
        evaluation_cost=cost,
    )
