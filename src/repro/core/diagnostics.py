"""Diagnostics: how trustworthy is a fitted representative set?

The paper selects 18 representatives and argues they cover the
datacenter's behaviours; a production deployment of FLARE needs that
argument as *numbers*.  This module reports, per group and overall:

* how central the representative is (its distance to the centroid versus
  the group's distance distribution),
* how tight the group is (mean member distance, silhouette),
* how much observation weight rides on each representative,

plus an uncertainty-aware variant of the all-job estimator that replays
the *m* nearest members of each group (instead of only the medoid) and
propagates the within-group spread into an error bar.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import Feature
from ..stats.silhouette import silhouette_samples
from .estimation import ClusterImpact, FeatureImpactEstimate
from .pipeline import Flare
from .replayer import Replayer
from .representatives import RepresentativeSet

__all__ = [
    "GroupDiagnostics",
    "RepresentativenessReport",
    "diagnose",
    "UncertainEstimate",
    "estimate_with_uncertainty",
]


@dataclass(frozen=True)
class GroupDiagnostics:
    """Cohesion numbers for one scenario group."""

    cluster_id: int
    size: int
    weight: float
    representative_distance: float
    mean_member_distance: float
    max_member_distance: float
    mean_silhouette: float

    @property
    def centrality(self) -> float:
        """Representative distance relative to the group mean (≤ 1 means
        the representative is more central than the average member)."""
        if self.mean_member_distance == 0.0:
            return 0.0
        return self.representative_distance / self.mean_member_distance


@dataclass(frozen=True)
class RepresentativenessReport:
    """Per-group diagnostics plus dataset-level summaries."""

    groups: tuple[GroupDiagnostics, ...]
    overall_silhouette: float

    def worst_group(self) -> GroupDiagnostics:
        """The loosest group (largest mean member distance)."""
        return max(self.groups, key=lambda g: g.mean_member_distance)

    def mean_centrality(self) -> float:
        return float(np.mean([g.centrality for g in self.groups]))

    def render(self) -> str:
        from ..reporting.tables import render_table

        rows = [
            [
                g.cluster_id,
                g.size,
                g.weight * 100.0,
                g.representative_distance,
                g.mean_member_distance,
                g.mean_silhouette,
            ]
            for g in self.groups
        ]
        return render_table(
            ["cluster", "size", "weight %", "rep dist", "mean dist", "silh"],
            rows,
            title=(
                "Representativeness diagnostics "
                f"(overall silhouette {self.overall_silhouette:.2f})"
            ),
        )


def diagnose(flare: Flare) -> RepresentativenessReport:
    """Build the representativeness report for a fitted model."""
    analysis = flare.analysis
    scores = analysis.scores
    if scores is None:
        raise ValueError(
            "representativeness diagnostics need the full score matrix, "
            "which an out-of-core fit does not retain; refit in memory "
            "(e.g. Flare().fit(store.to_dataset())) to diagnose"
        )
    silhouettes = (
        silhouette_samples(scores, analysis.labels)
        if np.unique(analysis.labels).size >= 2
        else np.zeros(scores.shape[0])
    )

    groups = []
    for group in flare.representatives.groups:
        members = np.array(group.ranked_members)
        distances = np.linalg.norm(scores[members] - group.centroid, axis=1)
        groups.append(
            GroupDiagnostics(
                cluster_id=group.cluster_id,
                size=group.size,
                weight=group.weight,
                representative_distance=float(distances[0]),
                mean_member_distance=float(distances.mean()),
                max_member_distance=float(distances.max()),
                mean_silhouette=float(silhouettes[members].mean()),
            )
        )
    return RepresentativenessReport(
        groups=tuple(groups),
        overall_silhouette=float(silhouettes.mean()),
    )


@dataclass(frozen=True)
class UncertainEstimate:
    """A FLARE estimate with a propagated within-group error bar.

    Attributes
    ----------
    estimate:
        The point estimate (weighted mean of per-group means).
    stderr_pct:
        Standard error propagated from the within-group sample spread:
        ``sqrt(sum_g w_g^2 * s_g^2 / m_g)``.
    members_per_group:
        Scenarios replayed per group.
    evaluation_cost:
        Total scenario replays performed.
    """

    estimate: FeatureImpactEstimate
    stderr_pct: float
    members_per_group: int
    evaluation_cost: int

    @property
    def reduction_pct(self) -> float:
        return self.estimate.reduction_pct

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval."""
        return (
            self.reduction_pct - z * self.stderr_pct,
            self.reduction_pct + z * self.stderr_pct,
        )


def estimate_with_uncertainty(
    representatives: RepresentativeSet,
    replayer: Replayer,
    feature: Feature,
    *,
    members_per_group: int = 3,
) -> UncertainEstimate:
    """All-job estimate from the *m* nearest members of each group.

    Trades evaluation cost (m× the paper's) for an explicit error bar:
    each group contributes the mean impact of its m nearest HP-hosting
    members, and the within-group spread propagates into a standard error
    on the weighted estimate.

    The bar is a *lower bound* on the true uncertainty: the m nearest
    members are more alike than the group at large, so the within-group
    spread is mildly underestimated.
    """
    if members_per_group < 1:
        raise ValueError("members_per_group must be >= 1")
    dataset = representatives.dataset
    variance = 0.0
    cost = 0
    weights_total = 0.0

    pending: list[tuple[float, list[float], int, int]] = []
    for group in representatives.groups:
        measured: list[float] = []
        first_scenario_id = -1
        for index in group.ranked_members:
            scenario = dataset[index]
            if not scenario.hp_instances:
                continue
            measurement = replayer.replay(scenario, feature)
            cost += 1
            measured.append(measurement.reduction_pct)
            if first_scenario_id < 0:
                first_scenario_id = scenario.scenario_id
            if len(measured) >= members_per_group:
                break
        if not measured:
            continue
        weights_total += group.weight
        pending.append(
            (group.weight, measured, group.cluster_id, first_scenario_id)
        )

    if not pending:
        raise ValueError("no measurable scenario groups for this estimate")

    impacts = []
    for weight, measured, cluster_id, scenario_id in pending:
        w = weight / weights_total
        mean = float(np.mean(measured))
        spread = float(np.var(measured, ddof=0))
        m = len(measured)
        variance += w * w * spread / m
        impacts.append(
            ClusterImpact(
                cluster_id=cluster_id,
                weight=w,
                scenario_id=scenario_id,
                reduction_pct=mean,
            )
        )

    point = float(sum(c.weight * c.reduction_pct for c in impacts))
    estimate = FeatureImpactEstimate(
        feature=feature,
        job_name=None,
        reduction_pct=point,
        per_cluster=tuple(impacts),
        evaluation_cost=cost,
    )
    return UncertainEstimate(
        estimate=estimate,
        stderr_pct=float(np.sqrt(variance)),
        members_per_group=members_per_group,
        evaluation_cost=cost,
    )
