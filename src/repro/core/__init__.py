"""FLARE core: the paper's primary contribution.

Refinement, high-level metric construction (PCA + interpretation),
representative-scenario extraction, testbed replay, and feature-impact
estimation — orchestrated end-to-end by :class:`Flare`.
"""

from .analyzer import AnalysisResult, Analyzer, AnalyzerConfig
from .diagnostics import (
    GroupDiagnostics,
    RepresentativenessReport,
    UncertainEstimate,
    diagnose,
    estimate_with_uncertainty,
)
from .fleet import FleetEvaluator, FleetImpactEstimate, FleetSegment
from .estimation import (
    ClusterImpact,
    FeatureImpactEstimate,
    estimate_all_job_impact,
    estimate_per_job_impact,
)
from .latency_metric import inherent_latency, latency_scenario_performance
from .interpretation import (
    ComponentInterpretation,
    LoadingEntry,
    interpret_components,
)
from .performance import (
    ScenarioPerformance,
    inherent_mips,
    mips_reduction_pct,
    scenario_performance,
)
from .pipeline import Flare, FlareConfig
from .refinement import RefinedDataset, refine
from .refit import (
    ModelLineage,
    RefitUnsoundError,
    WatchDecision,
    refit,
    replay_refit,
    watch,
)
from .replayer import ReplayMeasurement, Replayer
from .representatives import (
    ClusterGroup,
    RepresentativeSet,
    extract_representatives,
)

__all__ = [
    "Flare",
    "FlareConfig",
    "Analyzer",
    "AnalyzerConfig",
    "AnalysisResult",
    "RefinedDataset",
    "refine",
    "ModelLineage",
    "RefitUnsoundError",
    "WatchDecision",
    "refit",
    "replay_refit",
    "watch",
    "ComponentInterpretation",
    "LoadingEntry",
    "interpret_components",
    "ClusterGroup",
    "RepresentativeSet",
    "extract_representatives",
    "Replayer",
    "ReplayMeasurement",
    "ClusterImpact",
    "FeatureImpactEstimate",
    "estimate_all_job_impact",
    "estimate_per_job_impact",
    "diagnose",
    "GroupDiagnostics",
    "RepresentativenessReport",
    "UncertainEstimate",
    "estimate_with_uncertainty",
    "FleetEvaluator",
    "FleetImpactEstimate",
    "FleetSegment",
    "ScenarioPerformance",
    "scenario_performance",
    "inherent_mips",
    "mips_reduction_pct",
    "latency_scenario_performance",
    "inherent_latency",
]
