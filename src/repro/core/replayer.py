"""Step 4 Replayer: reconstruct scenarios on a testbed (paper §4.5).

The Replayer takes a representative scenario, looks up the job commands
the Profiler recorded, re-launches the co-location on a testbed machine
under baseline and feature-enabled configurations, and measures the
normalised HP performance of each.  Going through the recorded *command
strings* (rather than the in-memory objects) exercises the same
record-and-reconstruct path the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.features import BASELINE, Feature
from ..cluster.machine import MachineShape
from ..cluster.scenario import Scenario
from ..perfmodel.batch import resolve_solver_mode
from ..perfmodel.contention import RunningInstance
from ..perfmodel.memo import validate_memo_spec
from ..perfmodel.signatures import JobSignature
from ..runtime.executor import Executor, resolve_executor
from ..runtime.resilience import TaskFailure
from ..telemetry.profiler import format_command, parse_command
from ..workloads import get_job
from .performance import (
    ScenarioPerformance,
    mips_reduction_pct,
    scenario_performance,
    scenario_performance_many,
)

__all__ = ["ReplayMeasurement", "Replayer"]


@dataclass(frozen=True)
class ReplayMeasurement:
    """Outcome of replaying one scenario under one feature.

    Attributes
    ----------
    scenario:
        The replayed scenario.
    feature:
        The feature under evaluation.
    baseline / enabled:
        Normalised HP performance without / with the feature.
    """

    scenario: Scenario
    feature: Feature
    baseline: ScenarioPerformance
    enabled: ScenarioPerformance

    @property
    def reduction_pct(self) -> float:
        """Overall HP MIPS reduction caused by the feature."""
        return mips_reduction_pct(self.baseline.overall, self.enabled.overall)

    def job_reduction_pct(self, job_name: str) -> float:
        """MIPS reduction of one HP job in this scenario.

        Raises ``KeyError`` when the scenario does not host the job.
        """
        if job_name not in self.baseline.per_job:
            raise KeyError(
                f"job {job_name!r} is not in scenario "
                f"{self.scenario.scenario_id}"
            )
        return mips_reduction_pct(
            self.baseline.per_job[job_name], self.enabled.per_job[job_name]
        )


class Replayer:
    """Replays recorded co-locations on a testbed machine shape.

    Parameters
    ----------
    shape:
        Testbed machine shape (normally the datacenter's own shape; the
        testbed must match for the replay to be faithful — see §5.5 for
        why representatives do not transfer across shapes).
    catalogue:
        Job name → signature mapping used to resolve recorded commands.
        Defaults to the built-in Table 3 catalogue; pass an extended
        mapping when the datacenter ran custom jobs.
    metric:
        Performance-metric function with the signature of
        :func:`repro.core.performance.scenario_performance` (the
        default).  Pass e.g.
        :func:`repro.core.latency_metric.latency_scenario_performance`
        to evaluate features on normalised tail latency instead of
        normalised MIPS — the paper's "many alternatives can be
        utilized" hook.
    solver:
        Contention-solver path for batched replays: ``"scalar"``,
        ``"batched"``, or ``"auto"`` (batched whenever more than one
        scenario is replayed together).  Only the default MIPS metric
        batches; a custom *metric* always evaluates per scenario.
    memo:
        Optional content-addressed solve memo: ``"off"``/``None``
        (default), ``"memory"``, ``"store:<path>"``, or a live
        :class:`~repro.perfmodel.memo.SolveMemo`.  Batched replays
        consult it before solving and record misses back, so repeated
        evaluate runs and feature sweeps skip already-solved work.
        Spec strings travel to executor workers as-is; each worker
        resolves its own per-process instance, and store-backed specs
        make those workers concurrent writers of one shared memo
        directory.  Only the batched replay path memoises — a custom
        *metric* (and the scalar fallback) evaluates unmemoised.
    """

    def __init__(
        self,
        shape: MachineShape,
        *,
        catalogue: dict[str, "JobSignature"] | None = None,
        metric=None,
        solver: str = "auto",
        memo=None,
    ) -> None:
        self.shape = shape
        self._catalogue = catalogue
        self._metric = metric if metric is not None else scenario_performance
        resolve_solver_mode(solver, 0)  # validate eagerly
        if isinstance(memo, str):
            validate_memo_spec(memo)  # validate eagerly, resolve lazily
        self.solver = solver
        self.memo = memo

    def _resolve_job(self, name: str):
        if self._catalogue is not None and name in self._catalogue:
            return self._catalogue[name]
        return get_job(name)

    # ------------------------------------------------------------------
    def reconstruct(self, scenario: Scenario) -> tuple[RunningInstance, ...]:
        """Rebuild a scenario's containers from its recorded commands.

        Round-trips through the command-string format the Profiler logs,
        resolving each job name against the workload catalogue — exactly
        what replaying the recorded Docker commands does on the paper's
        testbed.
        """
        commands = [format_command(inst) for inst in scenario.instances]
        rebuilt = []
        for command in commands:
            job_name, load = parse_command(command)
            rebuilt.append(
                RunningInstance(signature=self._resolve_job(job_name), load=load)
            )
        return tuple(rebuilt)

    def _reconstructed_scenario(self, scenario: Scenario) -> Scenario:
        return Scenario(
            scenario_id=scenario.scenario_id,
            key=scenario.key,
            instances=self.reconstruct(scenario),
            n_occurrences=scenario.n_occurrences,
            total_duration_s=scenario.total_duration_s,
        )

    def replay(
        self, scenario: Scenario, feature: Feature
    ) -> ReplayMeasurement:
        """Measure *feature*'s impact on *scenario* on the testbed."""
        from ..obs import inc

        inc("replays_total")
        replay_scenario = self._reconstructed_scenario(scenario)
        baseline_machine = BASELINE(self.shape.perf)
        feature_machine = feature(self.shape.perf)
        baseline = self._metric(baseline_machine, replay_scenario)
        enabled = self._metric(
            feature_machine, replay_scenario, normalize_machine=baseline_machine
        )
        return ReplayMeasurement(
            scenario=replay_scenario,
            feature=feature,
            baseline=baseline,
            enabled=enabled,
        )

    def replay_batch(
        self, scenarios: tuple[Scenario, ...], feature: Feature
    ) -> tuple[ReplayMeasurement, ...]:
        """Replay several scenarios as one contention-solver batch.

        Bit-identical to :meth:`replay` per scenario (the batched solver
        mirrors the scalar fixed point exactly), but the baseline and
        feature machines each solve the whole list in one vectorised
        pass.  Custom metrics fall back to per-scenario evaluation —
        only the default MIPS metric understands batches.
        """
        if self._metric is not scenario_performance:
            return tuple(
                self.replay(scenario, feature) for scenario in scenarios
            )
        from ..obs import inc

        inc("replays_total", len(scenarios))
        replay_scenarios = [
            self._reconstructed_scenario(scenario) for scenario in scenarios
        ]
        baseline_machine = BASELINE(self.shape.perf)
        feature_machine = feature(self.shape.perf)
        baselines = scenario_performance_many(
            baseline_machine, replay_scenarios, solver=self.solver, memo=self.memo
        )
        enabled = scenario_performance_many(
            feature_machine,
            replay_scenarios,
            normalize_machine=baseline_machine,
            solver=self.solver,
            memo=self.memo,
        )
        return tuple(
            ReplayMeasurement(
                scenario=replay_scenario,
                feature=feature,
                baseline=base,
                enabled=enab,
            )
            for replay_scenario, base, enab in zip(
                replay_scenarios, baselines, enabled
            )
        )

    def replay_many(
        self,
        scenarios: tuple[Scenario, ...],
        feature: Feature,
        *,
        executor: "Executor | str | None" = None,
    ) -> tuple[ReplayMeasurement, ...]:
        """Replay several scenarios under *feature*, one task each.

        Replays are independent (one testbed machine per scenario in the
        paper), so they dispatch on *executor* in scenario order.  With a
        process pool the replayer itself ships to the workers, which
        requires the catalogue and metric function to be picklable — true
        for everything in the library; pass ``executor=None`` (serial)
        for exotic closures.

        Under an executor with a ``retry_then_skip`` failure policy,
        entries may be :class:`~repro.runtime.resilience.TaskFailure`
        stand-ins (in their scenario's position) instead of
        measurements; the estimation layer drops them and renormalises
        the surviving group weights.

        With the batched solver the executor dispatches whole scenario
        *groups* per task (same group size as the scalar path's chunk
        size), each group solved as one vectorised batch in the worker;
        a skipped group expands back into one ``TaskFailure`` per
        scenario so result positions are unchanged.
        """
        from ..obs import span

        mode = resolve_solver_mode(self.solver, len(scenarios))
        if mode == "batched" and self._metric is scenario_performance:
            groups = [
                scenarios[start : start + _REPLAY_GROUP_SIZE]
                for start in range(0, len(scenarios), _REPLAY_GROUP_SIZE)
            ]
            task = _ReplayBatchTask(replayer=self, feature=feature)
            with span(
                "replayer.replay_many",
                feature=feature.name,
                n_scenarios=len(scenarios),
                solver="batched",
            ):
                grouped = resolve_executor(executor).map(
                    task, groups, chunk_size=1, stage="replays"
                )
            flat: list[ReplayMeasurement | TaskFailure] = []
            for group, result in zip(groups, grouped):
                if isinstance(result, TaskFailure):
                    flat.extend([result] * len(group))
                else:
                    flat.extend(result)
            return tuple(flat)

        task = _ReplayTask(replayer=self, feature=feature)
        with span(
            "replayer.replay_many",
            feature=feature.name,
            n_scenarios=len(scenarios),
        ):
            return tuple(
                resolve_executor(executor).map(
                    task, scenarios, chunk_size=4, stage="replays"
                )
            )


# Scenarios per batched replay task — matches the scalar dispatch path's
# chunk size so worker granularity (and telemetry cadence) is unchanged.
_REPLAY_GROUP_SIZE = 4


@dataclass(frozen=True)
class _ReplayTask:
    """Picklable single-scenario replay closure for executor dispatch."""

    replayer: Replayer
    feature: Feature

    def __call__(self, scenario: Scenario) -> ReplayMeasurement:
        return self.replayer.replay(scenario, self.feature)


@dataclass(frozen=True)
class _ReplayBatchTask:
    """Picklable scenario-group replay closure for batched dispatch."""

    replayer: Replayer
    feature: Feature

    def __call__(
        self, scenarios: tuple[Scenario, ...]
    ) -> tuple[ReplayMeasurement, ...]:
        return self.replayer.replay_batch(scenarios, self.feature)
