"""Out-of-core FLARE fitting over a sharded scenario source.

The in-memory pipeline holds three dense matrices at once: the full
profiled metric matrix, its standardised copy, and the whitened PC
scores.  For a store-backed source (:mod:`repro.store`) none of those
may be materialised — peak memory must stay bounded by the shard size.
This module runs the same standardise → prune → PCA → whiten → cluster
sequence as :class:`~repro.core.analyzer.Analyzer` in multiple passes:

1. **Profile & accumulate** — scenarios are profiled shard-by-shard
   (:meth:`Profiler.iter_profile`, optionally fanned out over an
   executor and resumable via the checkpoint journal); each metric
   batch is spilled to an on-disk :class:`~repro.store.MetricStore`
   and folded into :class:`~repro.stats.RunningMoments`.
2. **Prune & standardise** — the streamed correlation matrix drives
   the same pruning as :func:`~repro.stats.prune_from_correlation`;
   the scaler comes from the streamed moments
   (:meth:`StandardScaler.from_moments`).
3. **PCA** — :class:`~repro.stats.IncrementalPCA` over standardised
   shard batches re-read (memory-mapped) from the spill store.
4. **Score statistics** — a third pass projects each shard into PC
   space, accumulating the whitening statistics and a seeded uniform
   :class:`~repro.stats.ReservoirSampler` of raw scores.
5. **Cluster** — :class:`~repro.stats.StreamingKMeans` seeded on the
   whitened sample, refined with full-data Lloyd passes; its final
   labelling pass yields per-row assignments and distances, from which
   representatives are ranked without a resident score matrix.

Equivalence contract: every accumulated statistic matches the
in-memory computation to ~1e-12 relative (the streaming-moments merge
tolerance), and while the dataset fits inside the reservoir sample the
clustering itself collapses to the exact in-memory k-means — so smoke
datasets produce identical cluster assignments through either path,
and results are bit-identical across executors and batch sizes for a
fixed path.
"""

from __future__ import annotations

import pathlib
import tempfile
from dataclasses import dataclass

import numpy as np

from ..cluster.source import ScenarioSource
from ..obs import span as obs_span
from ..stats.correlation import PruneReport, prune_from_correlation
from ..stats.kmeans import KMeansResult, StreamingKMeans
from ..stats.pca import IncrementalPCA
from ..stats.preprocessing import StandardScaler
from ..stats.silhouette import knee_point, sweep_cluster_counts
from ..stats.streaming import ReservoirSampler, RunningMoments
from ..telemetry.database import Database
from ..telemetry.metrics import MetricSpec
from .analyzer import AnalysisResult, Analyzer
from .representatives import (
    RepresentativeSet,
    representatives_from_assignments,
)

__all__ = ["DEFAULT_SAMPLE_CAPACITY", "StreamingFit", "streaming_fit"]

#: Rows retained by the clustering reservoir.  Sources at or below this
#: size keep every row and the clustering is exactly the in-memory one;
#: larger sources cluster via the sample-seeded streaming approximation.
DEFAULT_SAMPLE_CAPACITY = 4096


@dataclass(frozen=True)
class StreamingFit:
    """Everything an out-of-core fit produces.

    ``analysis`` mirrors the in-memory :class:`AnalysisResult` with
    ``refined=None`` and ``scores=None`` — the matrices that were never
    materialised; ``report`` and ``specs`` carry the pruning provenance
    those fields would otherwise hold.
    """

    analysis: AnalysisResult
    report: PruneReport
    specs: tuple[MetricSpec, ...]
    representatives: RepresentativeSet
    n_scenarios: int


def streaming_fit(
    source: ScenarioSource,
    config,
    *,
    database: Database | None = None,
    runtime=None,
    executor=None,
    spill_dir=None,
    sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
) -> StreamingFit:
    """Fit FLARE steps 1–3 over *source* at shard-bounded memory.

    Parameters
    ----------
    config:
        The :class:`~repro.core.pipeline.FlareConfig` to fit under —
        the same knobs drive both fitting paths.
    runtime:
        Optional :class:`~repro.runtime.RuntimeConfig` (or executor /
        spec string) fanning the profiling pass out; the legacy
        ``executor=`` keyword still works with a
        ``DeprecationWarning``.
    spill_dir:
        Directory for the intermediate metric store.  ``None`` (the
        default) uses a temporary directory removed when fitting ends;
        passing a path keeps the spilled metrics for inspection.
    sample_capacity:
        Reservoir size for clustering initialisation; see
        :data:`DEFAULT_SAMPLE_CAPACITY`.
    """
    from .._deprecations import resolve_renamed_kwarg
    from ..store.metrics_store import MetricStoreWriter

    runtime = resolve_renamed_kwarg(
        runtime,
        executor,
        owner="streaming_fit",
        old_name="executor",
        new_name="runtime",
        required=False,
    )
    cfg = config.analyzer
    if cfg.weight_samples and len(source) > sample_capacity:
        raise ValueError(
            "weight_samples=True needs every scenario inside the "
            f"clustering sample, but the source has {len(source)} rows "
            f"and sample_capacity={sample_capacity}; raise the capacity "
            "or fit in memory"
        )

    if spill_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-metrics-") as tmp:
            return _streaming_fit(
                source, config, pathlib.Path(tmp), MetricStoreWriter,
                database=database, runtime=runtime,
                sample_capacity=sample_capacity,
            )
    return _streaming_fit(
        source, config, pathlib.Path(spill_dir), MetricStoreWriter,
        database=database, runtime=runtime,
        sample_capacity=sample_capacity,
    )


def _streaming_fit(
    source: ScenarioSource,
    config,
    spill_path: pathlib.Path,
    writer_cls,
    *,
    database,
    runtime,
    sample_capacity: int,
) -> StreamingFit:
    cfg = config.analyzer
    profiler = config.make_profiler(database=database)
    n_total = len(source)

    # Pass 1: profile shard-by-shard; spill metric rows, fold moments.
    with obs_span("flare.profile", streaming=True, n_scenarios=n_total):
        writer = writer_cls(
            spill_path,
            tuple(spec.name for spec in profiler.specs),
            overwrite=True,
        )
        moments = RunningMoments()
        for batch in profiler.iter_profile(source, runtime=runtime):
            writer.append(batch.matrix)
            moments.update(batch.matrix)
        metric_store = writer.finalize()

    # Prune + scaler from the streamed statistics alone.
    with obs_span("flare.refine", streaming=True):
        report = prune_from_correlation(
            moments.correlation(), threshold=config.refinement_threshold
        )
        kept = list(report.kept)
        specs = tuple(profiler.specs[i] for i in kept)
        scaler = StandardScaler.from_moments(
            moments.mean[kept], moments.std(ddof=0)[kept], moments.n
        )

    with obs_span("flare.analyze", streaming=True):
        # Pass 2: incremental PCA over standardised shard batches.
        ipca = IncrementalPCA()
        for matrix in metric_store.iter_matrices():
            ipca.partial_fit(scaler.transform(matrix[:, kept]))
        pca_result = ipca.finalize()
        n_components = Analyzer(cfg)._select_components(pca_result)
        components = pca_result.components[:n_components]

        # Pass 3: score whitening statistics + clustering reservoir.
        score_moments = RunningMoments()
        sampler = ReservoirSampler(
            sample_capacity, seed=np.random.default_rng(cfg.seed)
        )
        for matrix in metric_store.iter_matrices():
            raw = scaler.transform(matrix[:, kept]) @ components.T
            score_moments.update(raw)
            sampler.update(raw)
        score_mean = score_moments.mean
        score_std = score_moments.std(ddof=0)
        live = score_std > 1e-12 * np.maximum(1.0, np.abs(score_mean))

        def whiten_rows(raw: np.ndarray) -> np.ndarray:
            centred = raw - score_mean
            out = np.zeros_like(centred)
            out[:, live] = centred[:, live] / score_std[live]
            return out

        def score_batches():
            for matrix in metric_store.iter_matrices():
                yield whiten_rows(
                    scaler.transform(matrix[:, kept]) @ components.T
                )

        sample_scores = whiten_rows(sampler.sample())
        weights = source.weights() if cfg.weight_samples else None

        # Cluster-count sweep runs on the sample: exact while the
        # sample holds every row, the documented approximation beyond.
        sweep = None
        if cfg.n_clusters is not None:
            chosen_k = cfg.n_clusters
        else:
            counts = tuple(
                k
                for k in cfg.cluster_counts
                if k <= sample_scores.shape[0]
            )
            if not counts:
                raise ValueError(
                    "no candidate cluster count fits the clustering "
                    f"sample ({sample_scores.shape[0]} rows); raise "
                    "sample_capacity or set n_clusters explicitly"
                )
            sweep = sweep_cluster_counts(
                sample_scores,
                counts,
                kmeans_factory=Analyzer(cfg)._kmeans_factory,
                sample_weight=weights,
            )
            knee = knee_point(sweep.cluster_counts.astype(float), sweep.sse)
            chosen_k = int(sweep.cluster_counts[knee])

        streaming_kmeans = StreamingKMeans(
            chosen_k,
            n_init=cfg.kmeans_restarts,
            max_iter=cfg.kmeans_max_iter,
            seed=np.random.default_rng(cfg.seed),
        )
        kmeans_result: KMeansResult = streaming_kmeans.fit(
            score_batches,
            n_total=n_total,
            sample=sample_scores,
            sample_weight=weights,
        )
        cluster_weights = kmeans_result.cluster_weights(
            sample_weight=source.weights()
        )

        analysis = AnalysisResult(
            refined=None,
            scaler=scaler,
            pca=pca_result,
            n_components=n_components,
            scores=None,
            score_mean=score_mean,
            score_std=score_std,
            sweep=sweep,
            kmeans=kmeans_result,
            cluster_weights=cluster_weights,
        )

    with obs_span("flare.representatives", streaming=True):
        assert streaming_kmeans.point_sq_distances_ is not None
        representatives = representatives_from_assignments(
            labels=kmeans_result.labels,
            sq_distances=streaming_kmeans.point_sq_distances_,
            centroids=kmeans_result.centroids,
            cluster_weights=cluster_weights,
            dataset=source,
        )

    return StreamingFit(
        analysis=analysis,
        report=report,
        specs=specs,
        representatives=representatives,
        n_scenarios=n_total,
    )
