"""Step 1 refinement: prune duplicated raw metrics (paper §4.2).

Many collected counters are near-copies of others — e.g. memory bandwidth
reported by a monitoring tool is just LLC miss count × payload size.  This
step drops metrics whose absolute correlation with an already-kept metric
exceeds a threshold, reducing the 100+ raw counters to a weakly-correlated
subset (~85 in the paper) before PCA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.correlation import PruneReport, prune_correlated
from ..telemetry.metrics import MetricSpec
from ..telemetry.profiler import ProfiledDataset

__all__ = ["RefinedDataset", "refine"]


@dataclass(frozen=True)
class RefinedDataset:
    """Profiled dataset restricted to the surviving metric columns."""

    profiled: ProfiledDataset
    report: PruneReport
    matrix: np.ndarray
    specs: tuple[MetricSpec, ...]

    @property
    def metric_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)

    @property
    def n_metrics(self) -> int:
        return self.matrix.shape[1]

    @property
    def n_scenarios(self) -> int:
        return self.matrix.shape[0]

    def dropped_descriptions(self) -> list[str]:
        """Human-readable account of every pruned metric."""
        names = list(self.profiled.metric_names)
        return self.report.describe_drops(names)


def refine(
    profiled: ProfiledDataset, *, threshold: float = 0.98
) -> RefinedDataset:
    """Apply correlation pruning to a profiled dataset.

    Parameters
    ----------
    threshold:
        Absolute-Pearson-correlation limit above which a metric is
        considered a duplicate of one already kept.
    """
    report = prune_correlated(profiled.matrix, threshold=threshold)
    kept = list(report.kept)
    return RefinedDataset(
        profiled=profiled,
        report=report,
        matrix=profiled.matrix[:, kept],
        specs=tuple(profiled.specs[i] for i in kept),
    )
