"""Incremental model refit over a growing scenario store.

A fleet in continuous operation keeps appending scenarios (see
:mod:`repro.store.live`); re-fitting FLARE from scratch on every drift
alert would re-profile the whole population — the expensive step the
paper's whole design avoids.  This module refits *incrementally*:

* **Profile only the new rows.**  The metric spill
  (:class:`~repro.store.MetricStore`) written by the previous fit is
  reopened in append mode and extended with the fresh rows' metrics
  only.  The profiler's noise stream is advanced past the already
  profiled rows (``noise_offset``), so the spill is bit-identical to
  what a from-scratch profile of the full population would produce.
* **Recompute statistics over fixed-size blocks.**  Moments, PCA and
  score statistics fold per batch, so their results depend on batch
  boundaries (at ~1e-12 relative).  Re-slicing the spill into blocks
  of :data:`REFIT_BLOCK_ROWS` rows makes every refit of the same total
  data bit-identical regardless of how the rows arrived — one batch or
  twenty generations.
* **Warm-start the clustering.**  The previous model's centroids seed
  a single Lloyd run (no sweep, no restarts).  When the feature space
  is unchanged the centroids pass through untouched; when it moved,
  they are mapped back to raw metric space through the previous
  transform and forward through the new one.

Soundness gates: incremental refit keeps the previous cluster count and
assumes the standardisation basis is still roughly valid.  A requested
cluster-count change, or per-metric scaler drift beyond
``max_scaler_drift``, makes the warm start meaningless — the refit then
falls back to a full re-fit of the spill (sweep + seeded restarts),
which needs no re-profiling because the spill already covers every row.

Every refit records a :class:`ModelLineage` entry (generation, kind,
trigger, parent digest) on the returned model and a ``"refit"`` run in
the ledger, so the provenance chain of a long-lived fleet model stays
auditable.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..cluster.scenario import ScenarioDataset
from ..cluster.source import ScenarioSource
from ..obs import span as obs_span
from ..stats.correlation import prune_from_correlation
from ..stats.kmeans import KMeansResult, StreamingKMeans
from ..stats.pca import IncrementalPCA
from ..stats.preprocessing import StandardScaler
from ..stats.silhouette import knee_point, sweep_cluster_counts
from ..stats.streaming import ReservoirSampler, RunningMoments
from .analyzer import AnalysisResult, Analyzer
from .interpretation import interpret_components
from .representatives import representatives_from_assignments
from .streaming_fit import DEFAULT_SAMPLE_CAPACITY

__all__ = [
    "DEFAULT_MAX_SCALER_DRIFT",
    "REFIT_BLOCK_ROWS",
    "ModelLineage",
    "RefitUnsoundError",
    "WatchDecision",
    "refit",
    "replay_refit",
    "watch",
]

#: Fixed row-block size for the statistics passes.  Every refit of the
#: same total data folds its moments/PCA in exactly these blocks, so
#: results are bit-identical no matter how ingestion batched the rows.
REFIT_BLOCK_ROWS = 1024

#: Standardisation drift (per-metric standardised mean shift, or
#: |log scale ratio|) beyond which a warm start is declared unsound and
#: an ``auto`` refit falls back to a full re-fit.
DEFAULT_MAX_SCALER_DRIFT = 0.5


class RefitUnsoundError(ValueError):
    """An explicitly requested incremental refit cannot be done soundly.

    Raised only under ``mode="incremental"``; ``mode="auto"`` (the
    default) falls back to a full refit instead.
    """


@dataclass(frozen=True)
class ModelLineage:
    """One link of a model's provenance chain.

    Attributes
    ----------
    generation:
        0 for the initial fit, +1 per refit.
    kind:
        ``"full"`` (sweep + seeded restarts over all rows) or
        ``"incremental"`` (warm-started single run).
    trigger:
        Why the refit ran — ``"initial"``, ``"manual"``,
        ``"drift:warn"``, ``"drift:alert"``; a forced fallback appends
        ``"+scaler-drift"`` or ``"+cluster-count"``.
    parent_digest:
        ``fitted_digest`` of the model this one was refitted from
        (``None`` at generation 0).
    source_digest:
        Content digest of the scenario source the model covers.
    n_scenarios:
        Rows covered by this model.
    n_new_rows:
        Rows profiled by this refit (== ``n_scenarios`` for full fits
        of a fresh spill).
    """

    generation: int
    kind: str
    trigger: str
    parent_digest: str | None
    source_digest: str
    n_scenarios: int
    n_new_rows: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "kind": self.kind,
            "trigger": self.trigger,
            "parent_digest": self.parent_digest,
            "source_digest": self.source_digest,
            "n_scenarios": self.n_scenarios,
            "n_new_rows": self.n_new_rows,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModelLineage":
        return cls(
            generation=int(payload["generation"]),
            kind=str(payload["kind"]),
            trigger=str(payload["trigger"]),
            parent_digest=payload.get("parent_digest"),
            source_digest=str(payload["source_digest"]),
            n_scenarios=int(payload["n_scenarios"]),
            n_new_rows=int(payload["n_new_rows"]),
        )


def _iter_fixed_blocks(
    metric_store, block_rows: int
) -> Iterator[np.ndarray]:
    """Yield the spill re-sliced into *block_rows*-row blocks.

    Blocks are independent of the spill's shard boundaries (the last
    one may be short), which is what makes the folded statistics
    invariant to how ingestion batched the rows.
    """
    pieces: list[np.ndarray] = []
    held = 0
    for matrix in metric_store.iter_matrices():
        pos = 0
        rows = matrix.shape[0]
        while pos < rows:
            take = min(block_rows - held, rows - pos)
            pieces.append(np.asarray(matrix[pos : pos + take]))
            held += take
            pos += take
            if held == block_rows:
                yield (
                    pieces[0]
                    if len(pieces) == 1
                    else np.concatenate(pieces, axis=0)
                )
                pieces, held = [], 0
    if held:
        yield (
            pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=0)
        )


def _rows_after(source: ScenarioSource, watermark: int) -> ScenarioSource:
    """A ScenarioSource view of rows ``[watermark, len(source))``."""
    if watermark == 0:
        return source
    new_since = getattr(source, "new_since", None)
    if new_since is not None:
        return new_since(watermark)
    if isinstance(source, ScenarioDataset):
        return ScenarioDataset(
            shape=source.shape, scenarios=source.scenarios[watermark:]
        )
    from ..store.live import StoreSlice
    from ..store.store import ShardedScenarioStore

    if isinstance(source, ShardedScenarioStore):
        return StoreSlice(source, watermark, len(source))
    from ..cluster.source import ensure_dataset

    dataset = ensure_dataset(source)
    return ScenarioDataset(
        shape=dataset.shape, scenarios=dataset.scenarios[watermark:]
    )


def _scaler_drift(prev, kept: list[int], scaler: StandardScaler) -> float:
    """Max per-metric drift of the new scaler vs the previous model's.

    Measured over metrics kept by both prunings, as the larger of the
    standardised mean shift and the absolute log scale ratio — both
    dimensionless, so one bound covers metrics of any unit.
    """
    prev_kept = list(prev.prune_report.kept)
    prev_scaler = prev.analysis.scaler
    prev_pos = {col: i for i, col in enumerate(prev_kept)}
    drift = 0.0
    for i, col in enumerate(kept):
        j = prev_pos.get(col)
        if j is None:
            continue
        mean_shift = abs(scaler.mean_[i] - prev_scaler.mean_[j]) / float(
            prev_scaler.scale_[j]
        )
        scale_shift = abs(
            float(np.log(scaler.scale_[i] / prev_scaler.scale_[j]))
        )
        drift = max(drift, mean_shift, scale_shift)
    return float(drift)


def _warm_start_init(
    prev,
    kept: list[int],
    scaler: StandardScaler,
    components: np.ndarray,
    score_mean: np.ndarray,
    score_std: np.ndarray,
    full_mean: np.ndarray,
) -> np.ndarray:
    """Previous centroids expressed in the new whitened score space.

    When the new transform chain is bitwise identical to the previous
    one (the unchanged-data case) the centroids pass through untouched,
    which makes a warm-started refit on unchanged data an exact fixed
    point: one stable Lloyd iteration reproduces the model bit for bit.

    Otherwise each centroid is mapped back to raw metric space through
    the previous chain (unwhiten → un-project → un-standardise; dead
    components sit at their fit-time mean, metrics the previous pruning
    dropped at the new population mean) and forward through the new
    chain.
    """
    prev_analysis = prev.analysis
    prev_kept = list(prev.prune_report.kept)
    prev_components = prev_analysis.pca.components[
        : prev_analysis.n_components
    ]
    centroids = prev_analysis.kmeans.centroids
    if (
        prev_kept == kept
        and prev_components.shape == components.shape
        and np.array_equal(prev_analysis.scaler.mean_, scaler.mean_)
        and np.array_equal(prev_analysis.scaler.scale_, scaler.scale_)
        and np.array_equal(prev_components, components)
        and np.array_equal(prev_analysis.score_mean, score_mean)
        and np.array_equal(prev_analysis.score_std, score_std)
    ):
        return centroids.copy()

    prev_live = prev_analysis.score_std > 1e-12 * np.maximum(
        1.0, np.abs(prev_analysis.score_mean)
    )
    raw_prev = (
        np.where(prev_live, centroids * prev_analysis.score_std, 0.0)
        + prev_analysis.score_mean
    )
    standardised_prev = raw_prev @ prev_components
    metric_prev = prev_analysis.scaler.inverse_transform(standardised_prev)
    metric_full = np.tile(full_mean, (centroids.shape[0], 1))
    metric_full[:, prev_kept] = metric_prev
    raw_new = scaler.transform(metric_full[:, kept]) @ components.T
    centred = raw_new - score_mean
    live = score_std > 1e-12 * np.maximum(1.0, np.abs(score_mean))
    out = np.zeros_like(centred)
    out[:, live] = centred[:, live] / score_std[live]
    return out


def refit(
    source: ScenarioSource,
    config=None,
    *,
    spill_dir,
    prev=None,
    mode: str = "auto",
    watermark: int | None = None,
    trigger: str | None = None,
    database=None,
    runtime=None,
    sample_capacity: int = DEFAULT_SAMPLE_CAPACITY,
    max_scaler_drift: float = DEFAULT_MAX_SCALER_DRIFT,
    block_rows: int = REFIT_BLOCK_ROWS,
):
    """(Re)fit a FLARE model over *source*, reusing the metric spill.

    Parameters
    ----------
    source:
        The scenario source the new model should cover — typically a
        grown :class:`~repro.store.ShardedScenarioStore` or
        :class:`~repro.store.TailingSource`.
    config:
        Pipeline configuration; defaults to ``prev.config`` when
        refitting, and must equal it for an incremental refit.
    spill_dir:
        Directory of the persistent metric spill.  A full fit
        (``prev=None``) writes it from scratch; a refit reopens it in
        append mode and profiles only the rows past *watermark*.
    prev:
        The previous fitted model (a :class:`~repro.core.Flare`); its
        centroids warm-start the clustering.
    mode:
        ``"auto"`` (incremental when sound, else full), ``"full"``, or
        ``"incremental"`` (raise :class:`RefitUnsoundError` instead of
        falling back).
    watermark:
        Rows of *source* already covered by *prev* and by the spill
        (defaults to ``prev``'s fitted row count).  The spill must hold
        exactly this many rows.
    trigger:
        Recorded in the lineage entry (defaults to ``"initial"`` /
        ``"manual"``).

    Returns the new fitted :class:`~repro.core.Flare`, whose
    ``lineage`` extends ``prev.lineage`` by one entry.
    """
    from ..store.metrics_store import MetricStore, MetricStoreWriter

    if mode not in ("auto", "full", "incremental"):
        raise ValueError(f"unknown refit mode {mode!r}")
    if prev is None and mode == "incremental":
        raise ValueError("incremental refit needs a previous model (prev=)")
    if config is None:
        if prev is None:
            raise ValueError("an initial fit needs an explicit config")
        config = prev.config
    cfg = config.analyzer
    spill_path = pathlib.Path(spill_dir)
    n_total = len(source)
    if n_total < 2:
        raise ValueError("FLARE needs at least 2 scenarios to fit")
    if cfg.weight_samples and n_total > sample_capacity:
        raise ValueError(
            "weight_samples=True needs every scenario inside the "
            f"clustering sample, but the source has {n_total} rows and "
            f"sample_capacity={sample_capacity}"
        )

    incremental = prev is not None and mode != "full"
    if trigger is None:
        trigger = "initial" if prev is None else "manual"
    if incremental and cfg.n_clusters is not None:
        prev_k = prev.analysis.n_clusters
        if cfg.n_clusters != prev_k:
            if mode == "incremental":
                raise RefitUnsoundError(
                    f"cluster count changed ({prev_k} -> "
                    f"{cfg.n_clusters}); a warm start cannot change k — "
                    "use mode='full'"
                )
            incremental = False
            trigger = f"{trigger}+cluster-count"

    if incremental:
        if watermark is None:
            watermark = int(prev.analysis.labels.shape[0])
        if not 0 <= watermark <= n_total:
            raise ValueError(
                f"watermark {watermark} outside [0, {n_total}]"
            )
    else:
        watermark = 0

    profiler = config.make_profiler(database=database)
    names = tuple(spec.name for spec in profiler.specs)
    started = time.perf_counter()

    # Pass 1: profile the rows the spill does not cover yet.
    with obs_span(
        "flare.refit.profile",
        n_scenarios=n_total,
        n_new=n_total - watermark,
    ):
        resume_from = watermark
        if watermark:
            existing = MetricStore.open(spill_path)
            # Every spill row is a pure function of its position (the
            # noise stream is position-addressed), so a spill that a
            # killed refit already extended past the watermark holds
            # exactly the rows this run would re-write — accept it and
            # profile only the remainder.  Anything outside
            # [watermark, n_total] is from a different history.
            if not watermark <= existing.n_rows <= n_total:
                raise ValueError(
                    f"metric spill at {spill_path} holds "
                    f"{existing.n_rows} rows but the source covers "
                    f"[{watermark}, {n_total}]; the spill must come "
                    "from the previous fit of this source"
                )
            if tuple(existing.metric_names) != names:
                raise ValueError(
                    "metric spill was written under a different metric "
                    "registry; refit with mode='full'"
                )
            resume_from = existing.n_rows
        n_new = n_total - watermark
        if watermark and resume_from == n_total:
            metric_store = MetricStore.open(spill_path)
        else:
            if watermark:
                writer = MetricStoreWriter.for_append(spill_path)
            else:
                writer = MetricStoreWriter(
                    spill_path, names, overwrite=True
                )
            fresh = _rows_after(source, resume_from)
            for batch in profiler.iter_profile(
                fresh, runtime=runtime, noise_offset=resume_from
            ):
                writer.append(batch.matrix)
            metric_store = writer.finalize()
        if metric_store.n_rows != n_total:
            raise ValueError(
                f"spill holds {metric_store.n_rows} rows after "
                f"profiling but the source has {n_total}"
            )

    # Pass 2: moments over fixed blocks → pruning + scaler.
    with obs_span("flare.refit.refine"):
        moments = RunningMoments()
        for block in _iter_fixed_blocks(metric_store, block_rows):
            moments.update(block)
        report = prune_from_correlation(
            moments.correlation(), threshold=config.refinement_threshold
        )
        kept = list(report.kept)
        specs = tuple(profiler.specs[i] for i in kept)
        scaler = StandardScaler.from_moments(
            moments.mean[kept], moments.std(ddof=0)[kept], moments.n
        )

    drift = None
    if incremental:
        drift = _scaler_drift(prev, kept, scaler)
        if drift > max_scaler_drift:
            if mode == "incremental":
                raise RefitUnsoundError(
                    f"standardisation drifted {drift:.3f} > "
                    f"{max_scaler_drift} since the previous fit; the "
                    "warm start is unsound — use mode='full'"
                )
            incremental = False
            trigger = f"{trigger}+scaler-drift"

    with obs_span("flare.refit.analyze", incremental=incremental):
        # Pass 3: incremental PCA over standardised fixed blocks.
        ipca = IncrementalPCA()
        for block in _iter_fixed_blocks(metric_store, block_rows):
            ipca.partial_fit(scaler.transform(block[:, kept]))
        pca_result = ipca.finalize()
        n_components = Analyzer(cfg)._select_components(pca_result)
        components = pca_result.components[:n_components]

        # Pass 4: score whitening statistics + clustering reservoir.
        score_moments = RunningMoments()
        sampler = ReservoirSampler(
            sample_capacity, seed=np.random.default_rng(cfg.seed)
        )
        for block in _iter_fixed_blocks(metric_store, block_rows):
            raw = scaler.transform(block[:, kept]) @ components.T
            score_moments.update(raw)
            sampler.update(raw)
        score_mean = score_moments.mean
        score_std = score_moments.std(ddof=0)
        live = score_std > 1e-12 * np.maximum(1.0, np.abs(score_mean))

        def whiten_rows(raw: np.ndarray) -> np.ndarray:
            centred = raw - score_mean
            out = np.zeros_like(centred)
            out[:, live] = centred[:, live] / score_std[live]
            return out

        def score_batches():
            for block in _iter_fixed_blocks(metric_store, block_rows):
                yield whiten_rows(
                    scaler.transform(block[:, kept]) @ components.T
                )

        sample_scores = whiten_rows(sampler.sample())
        weights = source.weights() if cfg.weight_samples else None

        # Pass 5: cluster — warm-started single run, or the full
        # sweep + seeded restarts when no sound warm start exists.
        sweep = None
        init = None
        if incremental:
            chosen_k = prev.analysis.n_clusters
            init = _warm_start_init(
                prev, kept, scaler, components,
                score_mean, score_std, moments.mean,
            )
        elif cfg.n_clusters is not None:
            chosen_k = cfg.n_clusters
        else:
            counts = tuple(
                k for k in cfg.cluster_counts
                if k <= sample_scores.shape[0]
            )
            if not counts:
                raise ValueError(
                    "no candidate cluster count fits the clustering "
                    f"sample ({sample_scores.shape[0]} rows); raise "
                    "sample_capacity or set n_clusters explicitly"
                )
            sweep = sweep_cluster_counts(
                sample_scores,
                counts,
                kmeans_factory=Analyzer(cfg)._kmeans_factory,
                sample_weight=weights,
            )
            knee = knee_point(
                sweep.cluster_counts.astype(float), sweep.sse
            )
            chosen_k = int(sweep.cluster_counts[knee])

        streaming_kmeans = StreamingKMeans(
            chosen_k,
            n_init=cfg.kmeans_restarts,
            max_iter=cfg.kmeans_max_iter,
            seed=np.random.default_rng(cfg.seed),
        )
        kmeans_result: KMeansResult = streaming_kmeans.fit(
            score_batches,
            n_total=n_total,
            sample=sample_scores,
            sample_weight=weights,
            init=init,
        )
        cluster_weights = kmeans_result.cluster_weights(
            sample_weight=source.weights()
        )

        analysis = AnalysisResult(
            refined=None,
            scaler=scaler,
            pca=pca_result,
            n_components=n_components,
            scores=None,
            score_mean=score_mean,
            score_std=score_std,
            sweep=sweep,
            kmeans=kmeans_result,
            cluster_weights=cluster_weights,
        )

    with obs_span("flare.refit.representatives"):
        assert streaming_kmeans.point_sq_distances_ is not None
        representatives = representatives_from_assignments(
            labels=kmeans_result.labels,
            sq_distances=streaming_kmeans.point_sq_distances_,
            centroids=kmeans_result.centroids,
            cluster_weights=cluster_weights,
            dataset=source,
        )

    wall_s = time.perf_counter() - started
    flare = _assemble_flare(
        config, database, source, analysis, report, specs, representatives
    )
    from ..io.serialization import fitted_digest

    parent_digest = None if prev is None else fitted_digest(prev)
    if prev is None:
        generation = 0
    elif prev.lineage:
        generation = prev.lineage[-1].generation + 1
    else:
        generation = 1
    entry = ModelLineage(
        generation=generation,
        kind="incremental" if incremental else "full",
        trigger=trigger,
        parent_digest=parent_digest,
        source_digest=source.digest(),
        n_scenarios=n_total,
        n_new_rows=n_new,
    )
    flare.lineage = (
        (() if prev is None else prev.lineage) + (entry,)
    )
    # Everything a deterministic replay of this exact fit needs (see
    # load_model): the chosen k and the already-mapped warm-start
    # centroids — JSON round-trips doubles exactly, so a replay passes
    # bit-identical init into the same fixed-block pipeline.
    flare._refit_plan = {
        "k": int(chosen_k),
        "init": None if init is None else np.asarray(init, dtype=np.float64),
        "block_rows": int(block_rows),
        "sample_capacity": int(sample_capacity),
    }
    metrics = {
        "n_scenarios": float(n_total),
        "n_new_rows": float(n_new),
        "n_clusters": float(analysis.n_clusters),
        "n_components": float(analysis.n_components),
        "sse_per_scenario": float(
            representatives.baseline.sse_per_scenario
        ),
        "wall_s": float(wall_s),
    }
    if drift is not None:
        metrics["scaler_drift"] = float(drift)
    flare._ledger_record(
        "refit",
        runtime=runtime,
        metrics=metrics,
        labels={
            "kind": entry.kind,
            "trigger": entry.trigger,
            "generation": str(entry.generation),
        },
    )
    return flare


def replay_refit(
    source: ScenarioSource,
    config,
    plan: dict[str, Any],
    *,
    spill_dir,
    database=None,
    runtime=None,
):
    """Reproduce a refit-path model from its serialised plan.

    Used by :func:`~repro.io.serialization.load_model` for models whose
    lineage says they came through the refit pipeline: a plain
    ``Flare.fit`` folds statistics per shard, not per fixed block, so
    it differs from the refit at ~1e-12 and cannot verify the digest.
    Replaying profiles everything into a fresh spill (bit-identical to
    the original by noise-stream construction) and re-runs the
    fixed-block passes with the recorded cluster count and warm-start
    centroids.  The sweep is skipped — it never touches the final
    clustering's RNG stream, so fitting the recorded k directly
    reproduces the model bit for bit.
    """
    init = plan.get("init")
    flare = _replay(
        source,
        config,
        spill_dir=spill_dir,
        k=int(plan["k"]),
        init=None if init is None else np.asarray(init, dtype=np.float64),
        block_rows=int(plan.get("block_rows", REFIT_BLOCK_ROWS)),
        sample_capacity=int(
            plan.get("sample_capacity", DEFAULT_SAMPLE_CAPACITY)
        ),
        database=database,
        runtime=runtime,
    )
    # The replayed model keeps its own plan so it round-trips through
    # save_model / the fleet journal exactly like the original.
    flare._refit_plan = {
        "k": int(plan["k"]),
        "init": (
            None if init is None else np.asarray(init, dtype=np.float64)
        ),
        "block_rows": int(plan.get("block_rows", REFIT_BLOCK_ROWS)),
        "sample_capacity": int(
            plan.get("sample_capacity", DEFAULT_SAMPLE_CAPACITY)
        ),
    }
    return flare


def _replay(
    source,
    config,
    *,
    spill_dir,
    k,
    init,
    block_rows,
    sample_capacity,
    database,
    runtime,
):
    from ..store.metrics_store import MetricStoreWriter

    cfg = config.analyzer
    profiler = config.make_profiler(database=database)
    n_total = len(source)
    writer = MetricStoreWriter(
        pathlib.Path(spill_dir),
        tuple(spec.name for spec in profiler.specs),
        overwrite=True,
    )
    for batch in profiler.iter_profile(source, runtime=runtime):
        writer.append(batch.matrix)
    metric_store = writer.finalize()

    moments = RunningMoments()
    for block in _iter_fixed_blocks(metric_store, block_rows):
        moments.update(block)
    report = prune_from_correlation(
        moments.correlation(), threshold=config.refinement_threshold
    )
    kept = list(report.kept)
    specs = tuple(profiler.specs[i] for i in kept)
    scaler = StandardScaler.from_moments(
        moments.mean[kept], moments.std(ddof=0)[kept], moments.n
    )
    ipca = IncrementalPCA()
    for block in _iter_fixed_blocks(metric_store, block_rows):
        ipca.partial_fit(scaler.transform(block[:, kept]))
    pca_result = ipca.finalize()
    n_components = Analyzer(cfg)._select_components(pca_result)
    components = pca_result.components[:n_components]

    score_moments = RunningMoments()
    sampler = ReservoirSampler(
        sample_capacity, seed=np.random.default_rng(cfg.seed)
    )
    for block in _iter_fixed_blocks(metric_store, block_rows):
        raw = scaler.transform(block[:, kept]) @ components.T
        score_moments.update(raw)
        sampler.update(raw)
    score_mean = score_moments.mean
    score_std = score_moments.std(ddof=0)
    live = score_std > 1e-12 * np.maximum(1.0, np.abs(score_mean))

    def whiten_rows(raw):
        centred = raw - score_mean
        out = np.zeros_like(centred)
        out[:, live] = centred[:, live] / score_std[live]
        return out

    def score_batches():
        for block in _iter_fixed_blocks(metric_store, block_rows):
            yield whiten_rows(
                scaler.transform(block[:, kept]) @ components.T
            )

    sample_scores = whiten_rows(sampler.sample())
    weights = source.weights() if cfg.weight_samples else None

    streaming_kmeans = StreamingKMeans(
        k,
        n_init=cfg.kmeans_restarts,
        max_iter=cfg.kmeans_max_iter,
        seed=np.random.default_rng(cfg.seed),
    )
    kmeans_result = streaming_kmeans.fit(
        score_batches,
        n_total=n_total,
        sample=sample_scores,
        sample_weight=weights,
        init=init,
    )
    cluster_weights = kmeans_result.cluster_weights(
        sample_weight=source.weights()
    )
    analysis = AnalysisResult(
        refined=None,
        scaler=scaler,
        pca=pca_result,
        n_components=n_components,
        scores=None,
        score_mean=score_mean,
        score_std=score_std,
        sweep=None,
        kmeans=kmeans_result,
        cluster_weights=cluster_weights,
    )
    assert streaming_kmeans.point_sq_distances_ is not None
    representatives = representatives_from_assignments(
        labels=kmeans_result.labels,
        sq_distances=streaming_kmeans.point_sq_distances_,
        centroids=kmeans_result.centroids,
        cluster_weights=cluster_weights,
        dataset=source,
    )
    return _assemble_flare(
        config, database, source, analysis, report, specs, representatives
    )


@dataclass(frozen=True)
class WatchDecision:
    """One cycle of the fleet control loop (see :func:`watch`).

    Attributes
    ----------
    cycle:
        1-based loop cycle index (0 for the bootstrap refit that
        rebuilds a missing spill).
    watermark:
        Rows the acting model covered when the cycle started.
    n_new:
        Fresh rows the cycle scored.
    status:
        Drift verdict on the fresh rows — ``"healthy"``, ``"warn"``,
        ``"alert"``, or ``"bootstrap"``.
    action:
        ``"none"``, ``"refit:incremental"``, or ``"refit:full"``.
    model:
        The model in force after the cycle (a new Flare when a refit
        ran, the incoming one otherwise).
    report:
        The :class:`~repro.obs.monitor.DriftReport` (``None`` for the
        bootstrap cycle).
    """

    cycle: int
    watermark: int
    n_new: int
    status: str
    action: str
    model: Any
    report: Any


def watch(
    model,
    source: ScenarioSource,
    *,
    spill_dir,
    thresholds=None,
    runtime=None,
    max_scaler_drift: float | None = None,
    max_cycles: int | None = None,
    idle=None,
):
    """The fleet control loop: ingest → monitor → on drift, refit.

    A generator over a *growing* source (typically a
    :class:`~repro.store.TailingSource`).  Each cycle refreshes the
    source, scores the rows past the acting model's watermark with the
    drift monitor, and — on ``warn`` or ``alert`` — refits the model
    over the full source (incrementally when sound).  Healthy rows are
    left unabsorbed: they are re-scored next cycle together with
    whatever else arrived, so the model only moves when the stream
    actually drifts.  Every decision is ledger-recorded (kind
    ``"fleet"``; refits additionally record their own ``"refit"``
    entry) and yielded as a :class:`WatchDecision`.

    The loop ends when the source stops growing (unless *idle* — an
    ``idle(cycle) -> bool`` callback, the natural place to sleep or
    ingest more — returns True to keep polling) or after *max_cycles*.

    If the spill at *spill_dir* does not hold exactly the rows the
    incoming model covers (e.g. the model came from ``Flare.fit``,
    whose temporary spill is discarded), a cycle-0 full refit rebuilds
    it first — after that every refit is incremental-capable.
    """
    from ..store.metrics_store import MetricStore
    from ..store.store import StoreError

    if max_scaler_drift is None:
        max_scaler_drift = DEFAULT_MAX_SCALER_DRIFT
    spill_path = pathlib.Path(spill_dir)
    covered = int(model.analysis.labels.shape[0])
    try:
        spill_rows = MetricStore.open(spill_path).n_rows
    except (FileNotFoundError, StoreError):
        spill_rows = None
    if spill_rows != covered:
        model = refit(
            source,
            model.config,
            spill_dir=spill_path,
            prev=model,
            mode="full",
            trigger="bootstrap",
            database=model.database,
            runtime=runtime,
            max_scaler_drift=max_scaler_drift,
        )
        yield WatchDecision(
            cycle=0,
            watermark=covered,
            n_new=len(source) - covered,
            status="bootstrap",
            action="refit:full",
            model=model,
            report=None,
        )

    cycle = 0
    last_scored: tuple[int, int] | None = None
    while max_cycles is None or cycle < max_cycles:
        cycle += 1
        refresh = getattr(source, "refresh", None)
        gained = refresh() if refresh is not None else 0
        covered = int(model.analysis.labels.shape[0])
        n_new = len(source) - covered
        # Stop when the source stopped growing and there is nothing new
        # to say: either no unscored rows, or the same healthy tail we
        # already scored last cycle (healthy rows are not absorbed, so
        # they would otherwise be re-scored forever).
        if n_new <= 0 or (
            not gained and (covered, len(source)) == last_scored
        ):
            if idle is not None and idle(cycle):
                continue
            return
        from ..obs.monitor import DriftMonitor

        fresh = _rows_after(source, covered)
        report = DriftMonitor(model, thresholds).observe(
            fresh, runtime=runtime
        )
        action = "none"
        if report.status in ("warn", "alert"):
            model = refit(
                source,
                model.config,
                spill_dir=spill_path,
                prev=model,
                mode="auto",
                watermark=covered,
                trigger=f"drift:{report.status}",
                database=model.database,
                runtime=runtime,
                max_scaler_drift=max_scaler_drift,
            )
            action = f"refit:{model.lineage[-1].kind}"
        model._ledger_record(
            "fleet",
            runtime=runtime,
            metrics={
                "cycle": float(cycle),
                "watermark": float(covered),
                "n_new": float(n_new),
                "psi_total": float(report.psi_total),
                "novelty_rate": float(report.novelty_rate),
                "sse_ratio": float(report.sse_ratio),
            },
            labels={"status": report.status, "action": action},
        )
        last_scored = (
            int(model.analysis.labels.shape[0]),
            len(source),
        )
        yield WatchDecision(
            cycle=cycle,
            watermark=covered,
            n_new=n_new,
            status=report.status,
            action=action,
            model=model,
            report=report,
        )


def _assemble_flare(
    config, database, source, analysis, report, specs, representatives
):
    """Populate a Flare exactly the way ``Flare._fit_streaming`` does."""
    from .pipeline import Flare, _catalogue_from
    from .replayer import Replayer

    flare = Flare(config, database=database)
    flare._streaming = True
    flare._analysis = analysis
    flare._prune_report = report
    flare._representatives = representatives
    flare._interpretations = interpret_components(
        analysis.pca,
        specs,
        n_components=analysis.n_components,
        top_n=config.interpretation_top_n,
    )
    flare._replayer = Replayer(
        source.shape,
        catalogue=_catalogue_from(source),
        solver=config.solver,
        memo=config.memo if config.memo != "off" else None,
    )
    return flare
