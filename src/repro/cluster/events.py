"""Minimal discrete-event engine for the datacenter simulation.

A binary-heap event queue with stable FIFO ordering for simultaneous
events.  The submission system schedules job arrivals and completions on
it; the simulation drains it until the horizon (or an early-stop condition)
is reached.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventQueue", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """One pending event: fires *action* at simulated *time* seconds.

    Ordering is (time, seq) so ties resolve in scheduling order, keeping
    the simulation deterministic.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic discrete-event queue.

    Examples
    --------
    >>> q = EventQueue()
    >>> hits = []
    >>> _ = q.schedule(5.0, lambda: hits.append("a"))
    >>> _ = q.schedule(3.0, lambda: hits.append("b"))
    >>> q.run()
    >>> hits
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        """Enqueue *action* to fire at absolute simulated *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = ScheduledEvent(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, action: Callable[[], None]
    ) -> ScheduledEvent:
        """Enqueue *action* to fire *delay* seconds from now."""
        if delay < 0.0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, action)

    def step(self) -> bool:
        """Fire the next non-cancelled event; returns False when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        """Drain the queue.

        Parameters
        ----------
        until:
            Do not fire events beyond this time (the clock still advances
            to ``until`` if events remain past it).
        stop:
            Optional predicate checked after every event; the run ends
            early as soon as it returns True.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            if not self.step():
                return
            if stop is not None and stop():
                return
        if until is not None and until > self._now:
            self._now = until
