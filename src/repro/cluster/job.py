"""Job requests and running job instances.

A *request* is what a simulated user submits: which job, at what demand
level, for how long.  Once the scheduler places it, it becomes an
*instance* — one container bound to a machine (paper §5.1: every instance
is a fixed-size container; users needing more capacity launch more
instances).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..perfmodel.signatures import JobSignature

__all__ = ["JobRequest", "JobInstance"]

_instance_ids = itertools.count()


@dataclass(frozen=True)
class JobRequest:
    """A user's submission: one container of *signature* at *load*.

    Attributes
    ----------
    signature:
        Which job (and hence the container's vCPU/DRAM request).
    load:
        User demand level in ``(0, 1]``; servers below peak traffic run at
        load < 1.  Fixed at submission time.
    duration_s:
        Requested runtime in seconds (paper: ≥ 30 minutes so behaviour is
        stable enough to profile).
    """

    signature: JobSignature
    load: float
    duration_s: float

    def __post_init__(self) -> None:
        if not 0.0 < self.load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")


@dataclass
class JobInstance:
    """A placed container: a request bound to a machine at a start time."""

    request: JobRequest
    machine_id: int
    start_time: float
    instance_id: int = field(default_factory=lambda: next(_instance_ids))

    @property
    def end_time(self) -> float:
        return self.start_time + self.request.duration_s

    @property
    def job_name(self) -> str:
        return self.request.signature.name
