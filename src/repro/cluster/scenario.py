"""Job co-location scenarios: FLARE's basic unit of evaluation.

Every new combination of jobs on a machine defines a scenario (paper §4.1,
Figure 5).  The recorder watches each machine's composition over simulated
time; whenever it changes, the elapsed interval is credited to the scenario
that just ended.  A scenario's *weight* is the total machine-time it was
observed, which is the probability mass FLARE and the baselines use.

For each scenario we keep the concrete instances (job + load) of its first
observation — the analogue of the paper logging "the commands and
configurations of running jobs" so the Replayer can reconstruct the
co-location later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from ..perfmodel.contention import RunningInstance
from .machine import Machine, MachineShape
from .source import ScenarioContentHasher, scenario_schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perfmodel.signatures import JobSignature

__all__ = ["ScenarioKey", "Scenario", "ScenarioRecorder", "ScenarioDataset"]

#: Canonical identity of a co-location: sorted (job name, instance count).
ScenarioKey = tuple[tuple[str, int], ...]


def _key_of(machine: Machine) -> ScenarioKey:
    counts: dict[str, int] = {}
    for inst in machine.instances:
        counts[inst.job_name] = counts.get(inst.job_name, 0) + 1
    return tuple(sorted(counts.items()))


@dataclass
class Scenario:
    """One observed job co-location.

    Attributes
    ----------
    scenario_id:
        Dense index in observation order (the figures' "scenario #").
    key:
        Job mix identity.
    instances:
        The concrete containers recorded at first observation, replayable
        by the contention model / Replayer.
    n_occurrences:
        How many distinct intervals showed this mix.
    total_duration_s:
        Total machine-time the mix was observed (the scenario weight).
    """

    scenario_id: int
    key: ScenarioKey
    instances: tuple[RunningInstance, ...]
    n_occurrences: int = 0
    total_duration_s: float = 0.0

    @property
    def total_vcpus(self) -> int:
        return sum(inst.signature.vcpus for inst in self.instances)

    @property
    def hp_vcpus(self) -> int:
        return sum(
            inst.signature.vcpus
            for inst in self.instances
            if inst.signature.is_high_priority
        )

    @property
    def lp_vcpus(self) -> int:
        return self.total_vcpus - self.hp_vcpus

    @property
    def hp_instances(self) -> tuple[RunningInstance, ...]:
        return tuple(
            inst for inst in self.instances if inst.signature.is_high_priority
        )

    def occupancy(self, shape: MachineShape) -> float:
        """Fraction of the machine's vCPUs the mix allocates."""
        return self.total_vcpus / shape.vcpus

    def job_names(self) -> tuple[str, ...]:
        """Distinct job names in the mix."""
        return tuple(name for name, _ in self.key)

    def count_of(self, job_name: str) -> int:
        """Instance count of *job_name* in this mix (0 if absent)."""
        for name, count in self.key:
            if name == job_name:
                return count
        return 0


class ScenarioRecorder:
    """Tracks machine compositions and accumulates scenario statistics.

    ``id_offset`` continues a dense scenario-id sequence across several
    recorder instances — the segmented simulation mode drains and
    replaces its recorder at each segment boundary, and ids must stay
    unique (and monotone) across the whole emitted stream.
    """

    def __init__(self, shape: MachineShape, *, id_offset: int = 0) -> None:
        self.shape = shape
        self.id_offset = id_offset
        self._scenarios: dict[ScenarioKey, Scenario] = {}
        # machine_id -> (key at interval start, interval start time)
        self._open_intervals: dict[int, tuple[ScenarioKey, float]] = {}

    # ------------------------------------------------------------------
    @property
    def n_unique(self) -> int:
        return len(self._scenarios)

    def on_composition_change(self, machine: Machine, now: float) -> None:
        """Notify that *machine*'s job mix just changed (at time *now*).

        Must be called *after* the placement/removal is applied.  The
        interval that just ended is credited to its scenario; a new
        interval opens for the new (possibly empty) mix.
        """
        self._close_interval(machine.machine_id, now)
        key = _key_of(machine)
        if key:
            self._register(key, machine)
            self._open_intervals[machine.machine_id] = (key, now)

    def finalize(self, now: float) -> None:
        """Close all open intervals at simulation end."""
        for machine_id in list(self._open_intervals):
            self._close_interval(machine_id, now)

    def dataset(self) -> "ScenarioDataset":
        """Snapshot the recorded scenarios as an immutable dataset."""
        ordered = sorted(self._scenarios.values(), key=lambda s: s.scenario_id)
        return ScenarioDataset(shape=self.shape, scenarios=tuple(ordered))

    def drain_to(self, sink) -> int:
        """Append every recorded scenario to *sink* in id order.

        *sink* is anything with an ``append(scenario)`` method — in
        practice a :class:`repro.store.StoreWriter`, which flushes full
        shards to disk as they fill, so draining never builds a second
        in-memory copy of the dataset.  Returns the number drained.
        """
        ordered = sorted(self._scenarios.values(), key=lambda s: s.scenario_id)
        for scenario in ordered:
            sink.append(scenario)
        return len(ordered)

    # ------------------------------------------------------------------
    def _register(self, key: ScenarioKey, machine: Machine) -> None:
        if key in self._scenarios:
            return
        instances = tuple(
            RunningInstance(
                signature=inst.request.signature, load=inst.request.load
            )
            for inst in sorted(
                machine.instances, key=lambda i: (i.job_name, i.instance_id)
            )
        )
        self._scenarios[key] = Scenario(
            scenario_id=self.id_offset + len(self._scenarios),
            key=key,
            instances=instances,
        )

    def _close_interval(self, machine_id: int, now: float) -> None:
        open_interval = self._open_intervals.pop(machine_id, None)
        if open_interval is None:
            return
        key, start = open_interval
        duration = now - start
        if duration <= 0.0:
            return
        scenario = self._scenarios[key]
        scenario.n_occurrences += 1
        scenario.total_duration_s += duration


def normalized_weights(durations: np.ndarray) -> np.ndarray:
    """Observation-time weights, normalised to sum to 1.

    Scenarios that were only glimpsed in zero-length transition states
    (possible when the simulation is finalised mid-change) get a small
    uniform epsilon so no scenario is silently unrepresentable.  Shared
    by the in-memory dataset and the sharded store so both backings
    weigh identical durations identically.
    """
    raw = np.asarray(durations, dtype=np.float64)
    if raw.size == 0:
        return raw
    if raw.sum() <= 0.0:
        return np.full(raw.size, 1.0 / raw.size)
    floor = raw[raw > 0].min() * 1e-3
    raw = np.maximum(raw, floor)
    return raw / raw.sum()


@dataclass(frozen=True)
class ScenarioDataset:
    """All distinct scenarios observed in one datacenter, with weights.

    Satisfies the :class:`~repro.cluster.source.ScenarioSource`
    protocol; derived quantities (weights, signatures, the content
    digest) are computed once and cached — profiling and clustering
    call them per scenario group, which used to rebuild the weight
    vector from scratch each time.
    """

    shape: MachineShape
    scenarios: tuple[Scenario, ...]

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def weights(self) -> np.ndarray:
        """Normalised observation-time weights (cached; do not mutate)."""
        cached = getattr(self, "_weights_cache", None)
        if cached is None:
            cached = normalized_weights(self.durations())
            object.__setattr__(self, "_weights_cache", cached)
        return cached

    def durations(self) -> np.ndarray:
        """Raw per-scenario observed durations, in scenario order.

        The un-normalised companion of :meth:`weights`, matching the
        sharded store's column of the same name — consumers that
        accumulate mass across batches (the drift monitor) need raw
        seconds, since per-batch normalised weights do not add.
        """
        return np.array(
            [s.total_duration_s for s in self.scenarios], dtype=np.float64
        )

    def iter_batches(
        self, batch_size: int | None = None
    ) -> Iterator["ScenarioDataset"]:
        """Yield the scenarios as in-memory slices of *batch_size*.

        ``None`` means the natural granularity of the backing — here,
        the whole dataset in one batch (no copy).
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1 or None")
        if batch_size is None or batch_size >= len(self.scenarios):
            yield self
            return
        for start in range(0, len(self.scenarios), batch_size):
            yield ScenarioDataset(
                shape=self.shape,
                scenarios=self.scenarios[start : start + batch_size],
            )

    def schema(self) -> dict[str, Any]:
        """Logical record layout (ScenarioSource protocol)."""
        return scenario_schema()

    def digest(self) -> str:
        """Logical content digest (cached; see ScenarioContentHasher)."""
        cached = getattr(self, "_digest_cache", None)
        if cached is None:
            hasher = ScenarioContentHasher(self.shape)
            for scenario in self.scenarios:
                hasher.update(scenario)
            cached = hasher.hexdigest()
            object.__setattr__(self, "_digest_cache", cached)
        return cached

    @property
    def signatures(self) -> dict[str, "JobSignature"]:
        """Job name -> signature, in first-appearance order (cached)."""
        cached = getattr(self, "_signatures_cache", None)
        if cached is None:
            cached = {}
            for scenario in self.scenarios:
                for instance in scenario.instances:
                    cached.setdefault(
                        instance.signature.name, instance.signature
                    )
            object.__setattr__(self, "_signatures_cache", cached)
        return cached

    def with_weights_from(
        self, durations: dict[ScenarioKey, float]
    ) -> "ScenarioDataset":
        """Copy of the dataset re-weighted by external observation times.

        Supports the §5.6 scheduler-change flow: a new scheduler shifts how
        often each co-location occurs; FLARE restarts from clustering
        (step 3) with new weights instead of re-collecting metrics.
        """
        reweighted = []
        for scenario in self.scenarios:
            duration = durations.get(scenario.key, 0.0)
            reweighted.append(
                Scenario(
                    scenario_id=scenario.scenario_id,
                    key=scenario.key,
                    instances=scenario.instances,
                    n_occurrences=scenario.n_occurrences,
                    total_duration_s=duration,
                )
            )
        return ScenarioDataset(shape=self.shape, scenarios=tuple(reweighted))

    def scenarios_with_job(self, job_name: str) -> list[Scenario]:
        """Scenarios whose mix includes *job_name*."""
        return [s for s in self.scenarios if s.count_of(job_name) > 0]
