"""Job submission system: the simulated users of the datacenter.

Reproduces the paper's user model (§5.1): users submit HP service
containers and LP batch containers; job lengths are random but at least 30
minutes; request-rate (load) variation produces diverse machine behaviours
from under-utilisation to saturation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..perfmodel.signatures import JobSignature
from ..workloads import HP_JOBS, LP_JOBS
from .job import JobRequest

__all__ = ["SubmissionConfig", "SubmissionSystem"]


@dataclass(frozen=True)
class SubmissionConfig:
    """Parameters of the arrival process.

    Attributes
    ----------
    arrival_rate_per_hour:
        Mean container submissions per hour (Poisson process).
    hp_fraction:
        Probability a submission is a high-priority service instance.
    hp_mix / lp_mix:
        Relative submission weights per job name; defaults to uniform over
        the Table 3 catalogue.
    min_duration_s:
        Floor on job length (paper: 30 minutes for stable behaviour).
    mean_extra_duration_s:
        Mean of the exponential tail added on top of the floor.
    load_choices:
        Discrete user-demand levels sampled per instance.  Discrete levels
        keep the number of *distinct* behaviours bounded the way real
        service traffic tiers do.
    diurnal_amplitude:
        Strength of the day/night cycle in ``[0, 1)``.  When positive,
        the arrival rate and HP demand levels are modulated by
        ``1 + A·sin(2πt/T)`` — the "variation in the users' request
        rates" the paper relies on for behavioural diversity (§5.1).
        Zero (default) disables the cycle.
    diurnal_period_s:
        Cycle length (24 h by default).
    burst_choices:
        Instances per submission.  The paper's users "requesting more
        computing power must launch multiple instances (i.e., copies) of
        a job" (§5.1); a burst submits that many identical containers at
        once (each placed independently, possibly on different machines).
        Default: single-instance submissions.
    """

    arrival_rate_per_hour: float = 115.0
    hp_fraction: float = 0.70
    hp_mix: dict[str, float] = field(default_factory=dict)
    lp_mix: dict[str, float] = field(default_factory=dict)
    min_duration_s: float = 1800.0
    mean_extra_duration_s: float = 3600.0
    load_choices: tuple[float, ...] = (0.7, 0.85, 1.0)
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 86400.0
    burst_choices: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if self.arrival_rate_per_hour <= 0.0:
            raise ValueError("arrival_rate_per_hour must be positive")
        if not 0.0 <= self.hp_fraction <= 1.0:
            raise ValueError("hp_fraction must be in [0, 1]")
        if self.min_duration_s <= 0.0:
            raise ValueError("min_duration_s must be positive")
        if self.mean_extra_duration_s < 0.0:
            raise ValueError("mean_extra_duration_s must be non-negative")
        if not self.load_choices:
            raise ValueError("load_choices must be non-empty")
        for load in self.load_choices:
            if not 0.0 < load <= 1.0:
                raise ValueError("each load choice must be in (0, 1]")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period_s <= 0.0:
            raise ValueError("diurnal_period_s must be positive")
        if not self.burst_choices:
            raise ValueError("burst_choices must be non-empty")
        for count in self.burst_choices:
            if count < 1:
                raise ValueError("each burst choice must be >= 1")


class SubmissionSystem:
    """Draws job requests from the configured arrival process."""

    def __init__(
        self,
        config: SubmissionConfig,
        rng: np.random.Generator,
        *,
        hp_catalogue: dict[str, JobSignature] | None = None,
        lp_catalogue: dict[str, JobSignature] | None = None,
    ) -> None:
        self.config = config
        self._rng = rng
        self._hp_names, self._hp_probs = self._mix_table(
            hp_catalogue if hp_catalogue is not None else HP_JOBS, config.hp_mix
        )
        self._lp_names, self._lp_probs = self._mix_table(
            lp_catalogue if lp_catalogue is not None else LP_JOBS, config.lp_mix
        )
        self._hp_catalogue = (
            hp_catalogue if hp_catalogue is not None else dict(HP_JOBS)
        )
        self._lp_catalogue = (
            lp_catalogue if lp_catalogue is not None else dict(LP_JOBS)
        )

    # ------------------------------------------------------------------
    def demand_multiplier(self, now_s: float) -> float:
        """The diurnal modulation factor at simulated time *now_s*."""
        amplitude = self.config.diurnal_amplitude
        if amplitude == 0.0:
            return 1.0
        phase = 2.0 * math.pi * now_s / self.config.diurnal_period_s
        return 1.0 + amplitude * math.sin(phase)

    def next_interarrival_s(self, now_s: float = 0.0) -> float:
        """Exponential gap to the next submission (thinned when diurnal).

        Uses Lewis-Shedler thinning against the peak rate so the arrival
        process is an exact inhomogeneous Poisson process.
        """
        base_rate = self.config.arrival_rate_per_hour / 3600.0
        amplitude = self.config.diurnal_amplitude
        if amplitude == 0.0:
            return float(self._rng.exponential(1.0 / base_rate))
        peak = base_rate * (1.0 + amplitude)
        t = now_s
        while True:
            t += float(self._rng.exponential(1.0 / peak))
            accept = base_rate * self.demand_multiplier(t) / peak
            if self._rng.random() < accept:
                return t - now_s

    def next_burst_size(self) -> int:
        """Instances in the next submission (1 unless bursts configured).

        Drawing is skipped entirely for the single-choice default so the
        random stream — and therefore all seeded results — is unchanged
        when bursts are disabled.
        """
        choices = self.config.burst_choices
        if len(choices) == 1:
            return choices[0]
        return int(choices[int(self._rng.integers(len(choices)))])

    def next_request(self, now_s: float = 0.0) -> JobRequest:
        """Sample the next container submission (at simulated *now_s*)."""
        if self._rng.random() < self.config.hp_fraction:
            names, probs, catalogue = (
                self._hp_names,
                self._hp_probs,
                self._hp_catalogue,
            )
        else:
            names, probs, catalogue = (
                self._lp_names,
                self._lp_probs,
                self._lp_catalogue,
            )
        name = names[int(self._rng.choice(len(names), p=probs))]
        signature = catalogue[name]
        load = float(
            self.config.load_choices[
                int(self._rng.integers(len(self.config.load_choices)))
            ]
        )
        if signature.priority.value == "HP":
            # Service demand follows the user cycle; batch work does not.
            load = float(
                np.clip(load * self.demand_multiplier(now_s), 0.05, 1.0)
            )
        duration = self.config.min_duration_s + float(
            self._rng.exponential(self.config.mean_extra_duration_s)
            if self.config.mean_extra_duration_s > 0.0
            else 0.0
        )
        return JobRequest(signature=signature, load=load, duration_s=duration)

    # ------------------------------------------------------------------
    @staticmethod
    def _mix_table(
        catalogue: dict[str, JobSignature], mix: dict[str, float]
    ) -> tuple[list[str], np.ndarray]:
        if not catalogue:
            raise ValueError("job catalogue must be non-empty")
        unknown = set(mix) - set(catalogue)
        if unknown:
            raise ValueError(f"mix references unknown jobs: {sorted(unknown)}")
        names = sorted(catalogue)
        weights = np.array([mix.get(name, 1.0) for name in names])
        if (weights < 0).any() or weights.sum() <= 0.0:
            raise ValueError("mix weights must be non-negative with positive sum")
        return names, weights / weights.sum()
