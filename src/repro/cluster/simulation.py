"""Datacenter simulation: runs the cluster and collects scenarios.

Wires the event queue, scheduler, submission system and scenario recorder
into the paper's data-collection phase (§4.2): run the datacenter under its
normal user behaviour and log every job co-location scenario that appears,
with how long it was observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import EventQueue
from .job import JobInstance, JobRequest
from .machine import DEFAULT_SHAPE, Machine, MachineShape
from .scenario import ScenarioDataset, ScenarioRecorder
from .scheduler import LeastUtilizedScheduler, Scheduler
from .submission import SubmissionConfig, SubmissionSystem

__all__ = ["DatacenterConfig", "SimulationStats", "SimulationResult", "run_simulation"]


@dataclass(frozen=True)
class DatacenterConfig:
    """Configuration of one simulated datacenter run.

    The paper's environment is three racks of eight machines, with one rack
    hosting the datacenter behaviour and two racks acting as clients/load
    generators guaranteed not to be the bottleneck (§5.1).  Clients are
    therefore represented only by the submission process here.

    Attributes
    ----------
    shape:
        Machine shape for the (homogeneous) behaviour rack.
    n_machines:
        Machines hosting jobs (8 = one rack).
    submission:
        Arrival-process parameters.
    max_days:
        Simulation horizon in days.
    target_unique_scenarios:
        Stop early once this many distinct co-locations have been seen
        (None = run the full horizon).  The paper's datacenter yielded 895.
    seed:
        Master seed for the run.
    """

    shape: MachineShape = DEFAULT_SHAPE
    n_machines: int = 8
    submission: SubmissionConfig = field(default_factory=SubmissionConfig)
    max_days: float = 45.0
    target_unique_scenarios: int | None = 895
    seed: int = 2023

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("n_machines must be >= 1")
        if self.max_days <= 0.0:
            raise ValueError("max_days must be positive")
        if (
            self.target_unique_scenarios is not None
            and self.target_unique_scenarios < 1
        ):
            raise ValueError("target_unique_scenarios must be >= 1 or None")


@dataclass
class SimulationStats:
    """Bookkeeping counters from one run."""

    n_submitted: int = 0
    n_placed: int = 0
    n_denied: int = 0
    n_completed: int = 0
    sim_time_s: float = 0.0

    @property
    def denial_rate(self) -> float:
        return self.n_denied / self.n_submitted if self.n_submitted else 0.0


@dataclass(frozen=True)
class SimulationResult:
    """Output of :func:`run_simulation`.

    When the run streamed its scenarios to a ``sink`` the in-memory
    ``dataset`` is ``None`` — the sink (typically a
    ``repro.store.StoreWriter``) owns the data — and ``n_streamed``
    records how many scenarios were drained to it.
    """

    config: DatacenterConfig
    dataset: ScenarioDataset | None
    stats: SimulationStats
    n_streamed: int = 0
    n_segments: int = 0

    @property
    def n_unique_scenarios(self) -> int:
        if self.dataset is not None:
            return len(self.dataset)
        return self.n_streamed


def run_simulation(
    config: DatacenterConfig,
    *,
    scheduler: Scheduler | None = None,
    submission_system: SubmissionSystem | None = None,
    sink=None,
    segment_days: float | None = None,
    on_segment=None,
) -> SimulationResult:
    """Simulate the datacenter and return its scenario dataset.

    Deterministic for a given (config, scheduler) pair: all randomness
    flows from ``config.seed``.

    Parameters
    ----------
    scheduler:
        Placement policy; defaults to the paper's least-utilised greedy
        scheduler.
    submission_system:
        Pre-built arrival process — pass one to submit jobs from a custom
        catalogue (see ``SubmissionSystem``'s ``hp_catalogue`` /
        ``lp_catalogue``).  Defaults to ``config.submission`` over the
        Table 3 catalogue, seeded from ``config.seed``.
    sink:
        Optional scenario sink with an ``append(scenario)`` method,
        typically a ``repro.store.StoreWriter``.  When given, recorded
        scenarios are drained to it in id order and the result carries
        ``dataset=None`` — the out-of-core path for runs whose scenario
        population should never be resident at once.  The recorder
        itself is O(unique scenarios), which is what a store shards.
    segment_days:
        Continuous-ingestion mode (requires *sink*): instead of one
        drain at the end, the recorder is drained at every segment
        boundary and replaced, so each segment emits the distinct
        co-locations observed *within that window* (a mix recurring in
        a later window appears again under a fresh id, with the
        duration it accrued there — the live-fleet view of the same
        behaviour stream).  Scheduling is untouched, so the event
        sequence is identical to an unsegmented run with the same seed.
    on_segment:
        Optional ``callback(segment_index, n_drained, now_s)`` invoked
        after each segment drain — the natural place to commit a
        :class:`~repro.store.LiveStore` generation.  Also called for
        the final partial segment.
    """
    if segment_days is not None:
        if sink is None:
            raise ValueError("segment_days requires a sink to drain into")
        if segment_days <= 0.0:
            raise ValueError("segment_days must be positive")
    rng = np.random.default_rng(config.seed)
    queue = EventQueue()
    machines = [
        Machine(machine_id=i, shape=config.shape, rack_id=0)
        for i in range(config.n_machines)
    ]
    recorder = ScenarioRecorder(config.shape)
    submission = (
        submission_system
        if submission_system is not None
        else SubmissionSystem(config.submission, rng)
    )
    placer = scheduler if scheduler is not None else LeastUtilizedScheduler()
    stats = SimulationStats()
    horizon_s = config.max_days * 86400.0
    n_streamed = 0
    n_segments = 0
    drained_unique = 0

    def reached_target() -> bool:
        return (
            config.target_unique_scenarios is not None
            and drained_unique + recorder.n_unique
            >= config.target_unique_scenarios
        )

    def complete(machine: Machine, instance: JobInstance) -> None:
        machine.remove(instance)
        stats.n_completed += 1
        recorder.on_composition_change(machine, queue.now)

    def arrive() -> None:
        # A submission is a burst of identical instances (scale-out jobs
        # launch copies, §5.1); each is placed independently and may be
        # individually denied when the datacenter saturates.
        request: JobRequest = submission.next_request(queue.now)
        for _ in range(submission.next_burst_size()):
            stats.n_submitted += 1
            machine = placer.select_machine(machines, request)
            if machine is None:
                stats.n_denied += 1
                continue
            instance = JobInstance(
                request=request,
                machine_id=machine.machine_id,
                start_time=queue.now,
            )
            machine.place(instance)
            stats.n_placed += 1
            recorder.on_composition_change(machine, queue.now)
            queue.schedule_after(
                request.duration_s,
                lambda m=machine, i=instance: complete(m, i),
            )
        # Keep the arrival process going until the horizon.
        gap = submission.next_interarrival_s(queue.now)
        if queue.now + gap <= horizon_s:
            queue.schedule_after(gap, arrive)

    def drain_segment() -> None:
        """Close the window: drain the recorder and start a fresh one."""
        nonlocal recorder, n_streamed, n_segments, drained_unique
        recorder.finalize(queue.now)
        drained = recorder.drain_to(sink)
        n_streamed += drained
        drained_unique += recorder.n_unique
        n_segments += 1
        recorder = ScenarioRecorder(
            config.shape, id_offset=recorder.id_offset + recorder.n_unique
        )
        for machine in machines:
            recorder.on_composition_change(machine, queue.now)
        if on_segment is not None:
            on_segment(n_segments, drained, queue.now)

    def segment_boundary() -> None:
        drain_segment()
        if queue.now + segment_s <= horizon_s:
            queue.schedule_after(segment_s, segment_boundary)

    if segment_days is not None:
        segment_s = segment_days * 86400.0
        if segment_s <= horizon_s:
            queue.schedule(segment_s, segment_boundary)

    queue.schedule(submission.next_interarrival_s(0.0), arrive)
    queue.run(until=horizon_s, stop=reached_target)

    stats.sim_time_s = queue.now
    if segment_days is not None:
        if recorder.n_unique:
            drain_segment()
        return SimulationResult(
            config=config,
            dataset=None,
            stats=stats,
            n_streamed=n_streamed,
            n_segments=n_segments,
        )
    recorder.finalize(queue.now)
    if sink is not None:
        n_streamed = recorder.drain_to(sink)
        return SimulationResult(
            config=config, dataset=None, stats=stats, n_streamed=n_streamed
        )
    return SimulationResult(
        config=config, dataset=recorder.dataset(), stats=stats
    )
