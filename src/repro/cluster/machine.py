"""Machine shapes and runtime machine state.

A *shape* is what the scheduler sees (schedulable vCPUs, DRAM) plus the
hardware performance description used by the contention model.  The two
shapes of the paper are provided: the default Xeon E5-2650 v4 pair
(Table 2) and the Small E5-2640 v3 pair (Table 5, §5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..perfmodel.machine import MachinePerf
from .job import JobInstance

__all__ = ["MachineShape", "Machine", "DEFAULT_SHAPE", "SMALL_SHAPE"]


@dataclass(frozen=True)
class MachineShape:
    """Scheduling + performance description of a server model.

    Attributes
    ----------
    name:
        Shape identifier ("default", "small").
    vcpus:
        Schedulable hardware threads.  Features never change this — the
        paper's scope is features that preserve machine shape (§2).
    dram_gb:
        Schedulable memory (no overcommit).
    perf:
        Hardware parameters for the contention model.
    """

    name: str
    vcpus: int
    dram_gb: float
    perf: MachinePerf

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.dram_gb <= 0.0:
            raise ValueError("dram_gb must be positive")
        if self.vcpus != self.perf.hardware_threads:
            raise ValueError(
                f"shape exposes {self.vcpus} vCPUs but perf model has "
                f"{self.perf.hardware_threads} hardware threads"
            )


#: Table 2 — Intel Xeon E5-2650 v4 ×2 (24 vCPUs/socket), 256 GB DDR4-2400,
#: 30 MB LLC/socket, 1.2–2.9 GHz, SMT on.
DEFAULT_SHAPE = MachineShape(
    name="default",
    vcpus=48,
    dram_gb=256.0,
    perf=MachinePerf(
        physical_cores=24,
        smt_enabled=True,
        min_freq_ghz=1.2,
        max_freq_ghz=2.9,
        llc_mb=60.0,
        mem_bw_gbps=92.0,
        mem_latency_ns=85.0,
        network_gbps=10.0,
        disk_mbps=500.0,
    ),
)

#: Table 5 — Intel Xeon E5-2640 v3 ×2 (16 vCPUs/socket), 128 GB DDR4-2133,
#: 20 MB LLC/socket, up to 2.6 GHz, SMT on.
SMALL_SHAPE = MachineShape(
    name="small",
    vcpus=32,
    dram_gb=128.0,
    perf=MachinePerf(
        physical_cores=16,
        smt_enabled=True,
        min_freq_ghz=1.2,
        max_freq_ghz=2.6,
        llc_mb=40.0,
        mem_bw_gbps=72.0,
        mem_latency_ns=90.0,
        network_gbps=10.0,
        disk_mbps=450.0,
    ),
)


@dataclass
class Machine:
    """Runtime state of one datacenter machine: the containers it hosts."""

    machine_id: int
    shape: MachineShape
    rack_id: int = 0
    instances: list[JobInstance] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def used_vcpus(self) -> int:
        return sum(inst.request.signature.vcpus for inst in self.instances)

    @property
    def used_dram_gb(self) -> float:
        return sum(inst.request.signature.dram_gb for inst in self.instances)

    @property
    def free_vcpus(self) -> int:
        return self.shape.vcpus - self.used_vcpus

    @property
    def free_dram_gb(self) -> float:
        return self.shape.dram_gb - self.used_dram_gb

    @property
    def vcpu_utilization(self) -> float:
        """Allocated-vCPU fraction (the scheduler's load-balancing key)."""
        return self.used_vcpus / self.shape.vcpus

    def fits(self, vcpus: int, dram_gb: float) -> bool:
        """Whether a request fits without overcommitting CPU or memory."""
        return vcpus <= self.free_vcpus and dram_gb <= self.free_dram_gb + 1e-9

    # ------------------------------------------------------------------
    def place(self, instance: JobInstance) -> None:
        """Admit *instance*; raises if it would overcommit the machine."""
        sig = instance.request.signature
        if not self.fits(sig.vcpus, sig.dram_gb):
            raise ValueError(
                f"machine {self.machine_id} cannot fit job {sig.name} "
                f"({sig.vcpus} vCPU / {sig.dram_gb} GB; free: "
                f"{self.free_vcpus} vCPU / {self.free_dram_gb:.1f} GB)"
            )
        self.instances.append(instance)

    def remove(self, instance: JobInstance) -> None:
        """Release *instance* from the machine."""
        try:
            self.instances.remove(instance)
        except ValueError:
            raise ValueError(
                f"instance {instance.instance_id} is not on machine "
                f"{self.machine_id}"
            ) from None
