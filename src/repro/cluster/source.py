"""The ScenarioSource protocol: one dataset abstraction, many backings.

FLARE's consumers — ``Profiler.profile``, ``Flare.fit``, the baselines —
historically took a concrete in-memory :class:`ScenarioDataset`.  The
sharded scenario store (``repro.store``) adds a second backing that does
not fit that type, so the pipeline now programs against this protocol
instead: anything that can report its machine shape, count and weigh its
scenarios, hand out batches, and identify its content satisfies it.
Both :class:`~repro.cluster.ScenarioDataset` and
:class:`~repro.store.ShardedScenarioStore` do.

The content digest is *logical*: it covers the scenarios, the job
signatures and the machine shape, not the bytes of any particular
encoding — so a dataset and the store written from it report the same
digest, which is how ``load_model`` verifies a store-backed model and
how cache keys stay stable across representations.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Iterator, Protocol, runtime_checkable

import numpy as np

from .._deprecations import resolve_renamed_kwarg
from .machine import MachineShape

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scenario import Scenario, ScenarioDataset

__all__ = [
    "ScenarioSource",
    "ScenarioContentHasher",
    "scenario_schema",
    "ensure_dataset",
    "resolve_source_argument",
]

#: Version of the logical scenario record layout described by
#: :func:`scenario_schema` and hashed by :class:`ScenarioContentHasher`.
SCHEMA_VERSION = 1


def scenario_schema() -> dict[str, Any]:
    """The logical record layout every :class:`ScenarioSource` serves."""
    return {
        "version": SCHEMA_VERSION,
        "record": "scenario",
        "fields": [
            {"name": "scenario_id", "type": "int64"},
            {"name": "n_occurrences", "type": "int64"},
            {"name": "total_duration_s", "type": "float64"},
            {"name": "instances", "type": "list[{job: str, load: float64}]"},
        ],
    }


@runtime_checkable
class ScenarioSource(Protocol):
    """Anything that can feed scenarios to the FLARE pipeline.

    ``iter_batches`` yields in-memory :class:`ScenarioDataset` slices in
    scenario order; with ``batch_size=None`` the backing chooses its
    natural granularity (the whole dataset in memory, one shard from a
    store).  ``digest`` identifies the logical content independent of
    the backing (see module docstring).
    """

    @property
    def shape(self) -> MachineShape: ...

    def __len__(self) -> int: ...

    def __getitem__(self, index: int) -> "Scenario": ...

    def iter_batches(
        self, batch_size: int | None = None
    ) -> Iterator["ScenarioDataset"]: ...

    def weights(self) -> np.ndarray: ...

    def schema(self) -> dict[str, Any]: ...

    def digest(self) -> str: ...


class ScenarioContentHasher:
    """Incremental logical digest over a scenario stream.

    Scenario records are folded in arrival order; job signatures are
    collected as they appear and folded *sorted by name* at the end, so
    the digest does not depend on discovery order.  Floats are hashed
    via ``float.hex()`` — exact, so any representation that round-trips
    float64 values (JSON, npy shards, live objects) hashes identically.
    """

    def __init__(self, shape: MachineShape) -> None:
        self._shape = shape
        self._scenario_hash = hashlib.sha256()
        self._signatures: dict[str, str] = {}
        #: id(signature) -> (signature kept alive, its repr).  Streams
        #: reuse a handful of interned signature objects across millions
        #: of instances; caching by identity drops the dataclass-repr
        #: cost from per-instance to per-object without changing a byte
        #: of the hashed stream (the cached repr is the same string).
        self._reprs: dict[int, tuple[Any, str]] = {}
        #: float value -> its hex string.  Real streams draw loads from
        #: a small discrete set, so this collapses the per-instance
        #: ``float.hex()`` cost.  ``0.0`` is never cached: ``-0.0``
        #: aliases it under dict equality but hexes differently.
        self._hex_cache: dict[float, str] = {}
        self.n_scenarios = 0

    def _signature_repr(self, signature) -> str:
        cached = self._reprs.get(id(signature))
        if cached is not None:
            return cached[1]
        encoded = repr(signature)
        known = self._signatures.setdefault(signature.name, encoded)
        if known != encoded:
            raise ValueError(
                f"conflicting signatures for job {signature.name!r}"
            )
        self._reprs[id(signature)] = (signature, encoded)
        return encoded

    def _float_hex(self, value: float) -> str:
        if value == 0.0:
            return float(value).hex()
        cached = self._hex_cache.get(value)
        if cached is None:
            cached = float(value).hex()
            self._hex_cache[value] = cached
        return cached

    def update(self, scenario: "Scenario") -> None:
        self.update_many((scenario,))

    def update_many(self, scenarios) -> None:
        """Fold a batch of scenarios in order, in one hash update.

        Byte-equivalent to calling :meth:`update` per scenario — sha256
        over the concatenation of the per-scenario lines — but the hash
        state is touched once per batch, which is what lets the store
        writer hash whole shards at a time.
        """
        chunks: list[str] = []
        for scenario in scenarios:
            parts = [
                str(scenario.scenario_id),
                str(scenario.n_occurrences),
                float(scenario.total_duration_s).hex(),
            ]
            for instance in scenario.instances:
                # The conflict check (same job name, different signature)
                # lives in the repr-cache miss path: any new object is a
                # cache miss, so coverage is unchanged while the per-
                # instance cost drops to one dict probe.
                self._signature_repr(instance.signature)
                parts.append(instance.signature.name)
                parts.append(self._float_hex(instance.load))
            chunks.append("|".join(parts))
            chunks.append("\n")
        self._scenario_hash.update("".join(chunks).encode())
        self.n_scenarios += len(chunks) // 2

    def signature_objects(self) -> dict[str, Any]:
        """The live signature objects folded so far, keyed by job name."""
        objects: dict[str, Any] = {}
        for signature, _ in self._reprs.values():
            objects.setdefault(signature.name, signature)
        return objects

    def hexdigest(self) -> str:
        signature_hash = hashlib.sha256()
        for name in sorted(self._signatures):
            signature_hash.update(name.encode())
            signature_hash.update(self._signatures[name].encode())
        final = hashlib.sha256()
        final.update(f"scenario-source-v{SCHEMA_VERSION}".encode())
        final.update(repr(self._shape).encode())
        final.update(signature_hash.digest())
        final.update(self._scenario_hash.digest())
        return final.hexdigest()


def ensure_dataset(source: ScenarioSource) -> "ScenarioDataset":
    """Materialise *source* as an in-memory :class:`ScenarioDataset`.

    The identity path is free; a sharded store is decoded in full, so
    only use this where the consumer genuinely needs every scenario
    resident (e.g. the full-datacenter ground-truth baselines).
    """
    from .scenario import ScenarioDataset

    if isinstance(source, ScenarioDataset):
        return source
    to_dataset = getattr(source, "to_dataset", None)
    if to_dataset is not None:
        return to_dataset()
    scenarios: list["Scenario"] = []
    for batch in source.iter_batches():
        scenarios.extend(batch.scenarios)
    return ScenarioDataset(shape=source.shape, scenarios=tuple(scenarios))


def resolve_source_argument(
    source, dataset, *, owner: str
) -> ScenarioSource:
    """Support the renamed ``dataset=`` -> ``source=`` keyword.

    The positional/``source=`` spelling is canonical; passing the legacy
    ``dataset=`` keyword still works but warns (via the shared shim in
    :mod:`repro._deprecations`).
    """
    return resolve_renamed_kwarg(
        source,
        dataset,
        owner=owner,
        old_name="dataset",
        new_name="source",
        stacklevel=3,
    )
