"""Datacenter-improving features (Table 4).

A *feature* is any change to each machine that preserves the machine's
shape — software upgrade, configuration change, emulated hardware change.
Here a feature is a named transformation of the machine's performance
description; the three of the paper are provided plus the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..perfmodel.machine import MachinePerf

__all__ = [
    "Feature",
    "BASELINE",
    "FEATURE_1_CACHE",
    "FEATURE_2_DVFS",
    "FEATURE_3_SMT",
    "PAPER_FEATURES",
]


@dataclass(frozen=True)
class Feature:
    """A shape-preserving machine change under evaluation.

    Attributes
    ----------
    name:
        Short identifier ("feature1").
    description:
        Human-readable summary (Table 4 row).
    apply:
        Pure function mapping a baseline :class:`MachinePerf` to the
        feature-enabled one.  Use a module-level function (not a lambda)
        if the feature must ship to process-pool executors, which pickle
        the replay tasks.
    """

    name: str
    description: str
    apply: Callable[[MachinePerf], MachinePerf]

    def __call__(self, machine: MachinePerf) -> MachinePerf:
        out = self.apply(machine)
        if out.hardware_threads != machine.hardware_threads:
            raise ValueError(
                f"feature {self.name} changed the machine shape "
                f"({machine.hardware_threads} -> {out.hardware_threads} "
                "threads); FLARE's scope is shape-preserving features"
            )
        return out


# The built-in apply functions are module-level (not lambdas) so the
# Feature objects are picklable and replays can run on a process pool.
def _apply_baseline(m: MachinePerf) -> MachinePerf:
    return m


def _apply_cache_restriction(m: MachinePerf) -> MachinePerf:
    return m.with_llc_mb(m.llc_mb * 12.0 / 30.0)


def _apply_dvfs_ceiling(m: MachinePerf) -> MachinePerf:
    return m.with_max_freq_ghz(1.8)


def _apply_smt_off(m: MachinePerf) -> MachinePerf:
    return m.with_smt(False)


#: No-op feature: the Table 4 baseline configuration.
BASELINE = Feature(
    name="baseline",
    description="30 MB LLC/socket, 1.2-2.9 GHz, Hyper-Threading enabled",
    apply=_apply_baseline,
)

#: Feature 1 — cache sizing via way masking (Intel CAT): 30 -> 12 MB/socket.
FEATURE_1_CACHE = Feature(
    name="feature1",
    description="12 MB LLC/socket (cache allocation restricted), "
    "1.2-2.9 GHz, Hyper-Threading enabled",
    apply=_apply_cache_restriction,
)

#: Feature 2 — DVFS policy: frequency ceiling 2.9 -> 1.8 GHz.
FEATURE_2_DVFS = Feature(
    name="feature2",
    description="30 MB LLC/socket, 1.2-1.8 GHz clock, "
    "Hyper-Threading enabled",
    apply=_apply_dvfs_ceiling,
)

#: Feature 3 — SMT configuration: Hyper-Threading disabled.
FEATURE_3_SMT = Feature(
    name="feature3",
    description="30 MB LLC/socket, 1.2-2.9 GHz clock, "
    "Hyper-Threading disabled",
    apply=_apply_smt_off,
)

#: The three features evaluated throughout the paper, in order.
PAPER_FEATURES: tuple[Feature, ...] = (
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    FEATURE_3_SMT,
)
