"""Datacenter cluster simulator: machines, scheduler, users, scenarios.

This package replaces the paper's physical behaviour rack.  It simulates
container submissions onto homogeneous machines under a no-overcommit
scheduler and records every job co-location scenario that appears, with
observation-time weights — the input to FLARE's Profiler.
"""

from .events import EventQueue, ScheduledEvent
from .features import (
    BASELINE,
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    FEATURE_3_SMT,
    PAPER_FEATURES,
    Feature,
)
from .job import JobInstance, JobRequest
from .machine import DEFAULT_SHAPE, SMALL_SHAPE, Machine, MachineShape
from .scenario import Scenario, ScenarioDataset, ScenarioKey, ScenarioRecorder
from .source import (
    ScenarioContentHasher,
    ScenarioSource,
    ensure_dataset,
    scenario_schema,
)
from .scheduler import (
    BestFitPackingScheduler,
    LeastUtilizedScheduler,
    RandomFitScheduler,
    Scheduler,
)
from .simulation import (
    DatacenterConfig,
    SimulationResult,
    SimulationStats,
    run_simulation,
)
from .submission import SubmissionConfig, SubmissionSystem
from .trace import TraceEvent, TraceEventType, dataset_from_trace

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "Feature",
    "BASELINE",
    "FEATURE_1_CACHE",
    "FEATURE_2_DVFS",
    "FEATURE_3_SMT",
    "PAPER_FEATURES",
    "JobRequest",
    "JobInstance",
    "Machine",
    "MachineShape",
    "DEFAULT_SHAPE",
    "SMALL_SHAPE",
    "Scenario",
    "ScenarioDataset",
    "ScenarioKey",
    "ScenarioRecorder",
    "ScenarioSource",
    "ScenarioContentHasher",
    "ensure_dataset",
    "scenario_schema",
    "Scheduler",
    "LeastUtilizedScheduler",
    "BestFitPackingScheduler",
    "RandomFitScheduler",
    "DatacenterConfig",
    "SimulationStats",
    "SimulationResult",
    "run_simulation",
    "SubmissionConfig",
    "SubmissionSystem",
    "TraceEvent",
    "TraceEventType",
    "dataset_from_trace",
]
