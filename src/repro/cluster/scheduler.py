"""Datacenter schedulers.

The paper's scheduler "greedily runs a job in the datacenter machine with
the least resource utilisation for load-balancing purposes" with no
overcommit (§5.1): saturation results in a denial.  Alternative schedulers
are provided for the §5.6 scheduler-change study — a new scheduler does not
invent unseen co-locations, it shifts which ones occur and how often.
"""

from __future__ import annotations

import abc

import numpy as np

from .job import JobRequest
from .machine import Machine

__all__ = [
    "Scheduler",
    "LeastUtilizedScheduler",
    "BestFitPackingScheduler",
    "RandomFitScheduler",
]


class Scheduler(abc.ABC):
    """Places job requests onto machines; returns None to deny."""

    name: str = "abstract"

    @abc.abstractmethod
    def select_machine(
        self, machines: list[Machine], request: JobRequest
    ) -> Machine | None:
        """Pick the machine for *request*, or None if nothing fits."""

    def _feasible(
        self, machines: list[Machine], request: JobRequest
    ) -> list[Machine]:
        sig = request.signature
        return [m for m in machines if m.fits(sig.vcpus, sig.dram_gb)]


class LeastUtilizedScheduler(Scheduler):
    """The paper's greedy load-balancing scheduler.

    Chooses the feasible machine with the lowest allocated-vCPU
    utilisation; ties break on machine id for determinism.
    """

    name = "least-utilized"

    def select_machine(
        self, machines: list[Machine], request: JobRequest
    ) -> Machine | None:
        feasible = self._feasible(machines, request)
        if not feasible:
            return None
        return min(feasible, key=lambda m: (m.vcpu_utilization, m.machine_id))


class BestFitPackingScheduler(Scheduler):
    """Consolidating scheduler: picks the *most* utilised feasible machine.

    Produces high-utilisation co-locations and leaves empty machines empty —
    the classic bin-packing policy a datacenter might adopt to improve
    efficiency (§5.6's example of a scheduler promoting different
    scenarios).
    """

    name = "best-fit-packing"

    def select_machine(
        self, machines: list[Machine], request: JobRequest
    ) -> Machine | None:
        feasible = self._feasible(machines, request)
        if not feasible:
            return None
        return max(feasible, key=lambda m: (m.vcpu_utilization, -m.machine_id))


class RandomFitScheduler(Scheduler):
    """Uniform random placement over feasible machines (control policy)."""

    name = "random-fit"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def select_machine(
        self, machines: list[Machine], request: JobRequest
    ) -> Machine | None:
        feasible = self._feasible(machines, request)
        if not feasible:
            return None
        return feasible[int(self._rng.integers(len(feasible)))]
