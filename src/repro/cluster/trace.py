"""Building scenario datasets from container-lifecycle traces.

A real datacenter does not need this repo's simulator: its orchestrator
already logs container starts and stops per machine (Borg/Kubernetes
events, the Google cluster traces the paper cites [81, 82]).  This module
replays such an event stream through the same machines + recorder the
simulator uses, producing the exact `ScenarioDataset` the FLARE pipeline
consumes — the on-ramp for applying FLARE to observed production data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from ..perfmodel.signatures import JobSignature
from ..workloads import all_jobs
from .job import JobInstance, JobRequest
from .machine import Machine, MachineShape
from .scenario import ScenarioDataset, ScenarioRecorder

__all__ = ["TraceEventType", "TraceEvent", "dataset_from_trace"]


class TraceEventType(enum.Enum):
    """Container lifecycle event kinds."""

    START = "start"
    STOP = "stop"


@dataclass(frozen=True)
class TraceEvent:
    """One orchestrator log line.

    Attributes
    ----------
    time_s:
        Event timestamp (seconds; any epoch, must be non-decreasing).
    machine_id:
        Which machine the container ran on.
    container_id:
        Unique id tying a STOP to its START.
    event:
        START or STOP.
    job:
        Job name (START only; resolved against the catalogue).
    load:
        Demand level in (0, 1] (START only).
    """

    time_s: float
    machine_id: int
    container_id: str
    event: TraceEventType
    job: str = ""
    load: float = 1.0


def dataset_from_trace(
    events: Iterable[TraceEvent],
    shape: MachineShape,
    *,
    catalogue: dict[str, JobSignature] | None = None,
    end_time_s: float | None = None,
    strict: bool = True,
) -> ScenarioDataset:
    """Replay *events* and record the co-location scenarios they imply.

    Parameters
    ----------
    events:
        Lifecycle events, sorted by time (validated).
    shape:
        The machines' shape; capacity violations raise in strict mode.
    catalogue:
        Job name → signature mapping; defaults to the Table 3 catalogue.
    end_time_s:
        Trace horizon closing all still-running containers; defaults to
        the last event's timestamp.
    strict:
        When True (default), malformed traces raise — unknown jobs,
        STOP without START, duplicate container ids, capacity violations,
        time going backwards.  When False, malformed events are skipped.
    """
    jobs = catalogue if catalogue is not None else all_jobs()
    recorder = ScenarioRecorder(shape)
    machines: dict[int, Machine] = {}
    running: dict[str, tuple[Machine, JobInstance]] = {}
    last_time = float("-inf")

    def fail(message: str) -> bool:
        if strict:
            raise ValueError(message)
        return False  # signal "skip"

    for event in events:
        if event.time_s < last_time:
            if not fail(
                f"trace goes backwards at t={event.time_s} "
                f"(previous {last_time})"
            ):
                continue
        last_time = max(last_time, event.time_s)

        machine = machines.get(event.machine_id)
        if machine is None:
            machine = Machine(machine_id=event.machine_id, shape=shape)
            machines[event.machine_id] = machine

        if event.event is TraceEventType.START:
            if event.container_id in running:
                if not fail(
                    f"duplicate START for container {event.container_id!r}"
                ):
                    continue
            signature = jobs.get(event.job)
            if signature is None:
                if not fail(f"unknown job {event.job!r} in trace"):
                    continue
            if not machine.fits(signature.vcpus, signature.dram_gb):
                if not fail(
                    f"machine {event.machine_id} over capacity at "
                    f"t={event.time_s} (container {event.container_id!r})"
                ):
                    continue
            instance = JobInstance(
                request=JobRequest(
                    signature=signature,
                    load=event.load,
                    # Real duration becomes known at STOP; a placeholder
                    # is fine — the recorder only uses composition times.
                    duration_s=1.0,
                ),
                machine_id=event.machine_id,
                start_time=event.time_s,
            )
            machine.place(instance)
            running[event.container_id] = (machine, instance)
            recorder.on_composition_change(machine, event.time_s)
        else:
            entry = running.pop(event.container_id, None)
            if entry is None:
                if not fail(
                    f"STOP without START for container "
                    f"{event.container_id!r}"
                ):
                    continue
            machine, instance = entry
            machine.remove(instance)
            recorder.on_composition_change(machine, event.time_s)

    horizon = end_time_s if end_time_s is not None else max(last_time, 0.0)
    if horizon < last_time:
        raise ValueError(
            f"end_time_s={horizon} precedes the last event at {last_time}"
        )
    recorder.finalize(horizon)
    return recorder.dataset()
