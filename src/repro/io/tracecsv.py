"""CSV import/export in a cluster-trace-like format.

Interoperability with the tabular formats datacenter teams actually have
(the Google cluster-trace family the paper cites): lifecycle events as a
flat CSV, and collected metric samples as long-format CSV.
"""

from __future__ import annotations

import csv
from typing import Iterable

from ..cluster.machine import MachineShape
from ..cluster.scenario import ScenarioDataset
from ..cluster.trace import TraceEvent, TraceEventType, dataset_from_trace
from ..perfmodel.signatures import JobSignature
from ..telemetry.profiler import ProfiledDataset

__all__ = [
    "write_trace_csv",
    "read_trace_csv",
    "dataset_from_trace_csv",
    "export_samples_csv",
]

_TRACE_HEADER = ("time_s", "machine_id", "container_id", "event", "job", "load")


def write_trace_csv(events: Iterable[TraceEvent], path) -> int:
    """Write lifecycle *events* as CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TRACE_HEADER)
        for event in events:
            writer.writerow(
                (
                    f"{event.time_s:.6f}",
                    event.machine_id,
                    event.container_id,
                    event.event.value,
                    event.job,
                    f"{event.load:.6f}",
                )
            )
            count += 1
    return count


def read_trace_csv(path) -> list[TraceEvent]:
    """Read lifecycle events from CSV (schema of :func:`write_trace_csv`)."""
    events = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_TRACE_HEADER) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"trace CSV missing columns: {sorted(missing)}")
        for line_no, row in enumerate(reader, start=2):
            try:
                events.append(
                    TraceEvent(
                        time_s=float(row["time_s"]),
                        machine_id=int(row["machine_id"]),
                        container_id=row["container_id"],
                        event=TraceEventType(row["event"]),
                        job=row["job"],
                        load=float(row["load"]),
                    )
                )
            except (KeyError, ValueError) as exc:
                raise ValueError(
                    f"bad trace row at line {line_no}: {exc}"
                ) from exc
    return events


def dataset_from_trace_csv(
    path,
    shape: MachineShape,
    *,
    catalogue: dict[str, JobSignature] | None = None,
    end_time_s: float | None = None,
    strict: bool = True,
) -> ScenarioDataset:
    """One-call ingestion: trace CSV → :class:`ScenarioDataset`."""
    return dataset_from_trace(
        read_trace_csv(path),
        shape,
        catalogue=catalogue,
        end_time_s=end_time_s,
        strict=strict,
    )


def export_samples_csv(profiled: ProfiledDataset, path) -> int:
    """Export collected metrics as long-format CSV
    (scenario_id, metric, value); returns the row count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("scenario_id", "metric", "value"))
        for row_index, scenario in enumerate(profiled.dataset.scenarios):
            for col, name in enumerate(profiled.metric_names):
                writer.writerow(
                    (
                        scenario.scenario_id,
                        name,
                        f"{profiled.matrix[row_index, col]:.9g}",
                    )
                )
                count += 1
    return count
