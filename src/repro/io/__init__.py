"""Persistence: JSON round-trips for datasets, configs and fitted models."""

from .tracecsv import (
    dataset_from_trace_csv,
    export_samples_csv,
    read_trace_csv,
    write_trace_csv,
)
from .serialization import (
    config_from_dict,
    config_to_dict,
    dataset_from_dict,
    dataset_to_dict,
    fitted_digest,
    load_dataset,
    load_model,
    save_dataset,
    save_model,
)

__all__ = [
    "dataset_to_dict",
    "dataset_from_dict",
    "save_dataset",
    "load_dataset",
    "config_to_dict",
    "config_from_dict",
    "save_model",
    "load_model",
    "fitted_digest",
    "write_trace_csv",
    "read_trace_csv",
    "dataset_from_trace_csv",
    "export_samples_csv",
]
