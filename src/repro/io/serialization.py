"""JSON serialisation for datasets, configurations and fitted models.

Lets teams share what the paper's workflow produces: the scenario dataset
collected from a datacenter (step 1's output, the expensive part) and the
pipeline configuration.  A fitted model is persisted as (config, dataset)
and *re-fitted deterministically* on load — every stage of the pipeline is
seeded, so the reload reproduces the exact clustering; a digest of the
fitted state is stored and verified to prove it.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any

import numpy as np

from ..cluster.machine import MachineShape
from ..cluster.scenario import Scenario, ScenarioDataset
from ..core.analyzer import AnalyzerConfig
from ..core.pipeline import Flare, FlareConfig
from ..perfmodel.contention import RunningInstance
from ..perfmodel.machine import MachinePerf
from ..perfmodel.mrc import MissRatioCurve
from ..perfmodel.signatures import JobSignature, Priority
from ..runtime.config import RuntimeConfig

__all__ = [
    "dataset_to_dict",
    "dataset_from_dict",
    "save_dataset",
    "load_dataset",
    "config_to_dict",
    "config_from_dict",
    "save_model",
    "load_model",
    "fitted_digest",
]

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Leaf codecs
def _signature_to_dict(sig: JobSignature) -> dict[str, Any]:
    return {
        "name": sig.name,
        "description": sig.description,
        "priority": sig.priority.value,
        "vcpus": sig.vcpus,
        "dram_gb": sig.dram_gb,
        "base_cpi": sig.base_cpi,
        "frontend_cpi": sig.frontend_cpi,
        "branch_mpki": sig.branch_mpki,
        "l1i_apki": sig.l1i_apki,
        "l1d_apki": sig.l1d_apki,
        "l2_apki": sig.l2_apki,
        "llc_apki": sig.llc_apki,
        "mrc": {
            "half_capacity_mb": sig.mrc.half_capacity_mb,
            "shape": sig.mrc.shape,
            "floor": sig.mrc.floor,
        },
        "mem_blocking_factor": sig.mem_blocking_factor,
        "write_fraction": sig.write_fraction,
        "active_fraction": sig.active_fraction,
        "network_bytes_per_instr": sig.network_bytes_per_instr,
        "disk_bytes_per_instr": sig.disk_bytes_per_instr,
        "spin_fraction": sig.spin_fraction,
    }


def _signature_from_dict(data: dict[str, Any]) -> JobSignature:
    mrc = data["mrc"]
    return JobSignature(
        name=data["name"],
        description=data["description"],
        priority=Priority(data["priority"]),
        vcpus=data["vcpus"],
        dram_gb=data["dram_gb"],
        base_cpi=data["base_cpi"],
        frontend_cpi=data["frontend_cpi"],
        branch_mpki=data["branch_mpki"],
        l1i_apki=data["l1i_apki"],
        l1d_apki=data["l1d_apki"],
        l2_apki=data["l2_apki"],
        llc_apki=data["llc_apki"],
        mrc=MissRatioCurve(
            half_capacity_mb=mrc["half_capacity_mb"],
            shape=mrc["shape"],
            floor=mrc["floor"],
        ),
        mem_blocking_factor=data["mem_blocking_factor"],
        write_fraction=data["write_fraction"],
        active_fraction=data["active_fraction"],
        network_bytes_per_instr=data["network_bytes_per_instr"],
        disk_bytes_per_instr=data["disk_bytes_per_instr"],
        spin_fraction=data["spin_fraction"],
    )


def _perf_to_dict(perf: MachinePerf) -> dict[str, Any]:
    return {
        "physical_cores": perf.physical_cores,
        "governor": perf.governor,
        "smt_enabled": perf.smt_enabled,
        "smt_speedup": perf.smt_speedup,
        "min_freq_ghz": perf.min_freq_ghz,
        "max_freq_ghz": perf.max_freq_ghz,
        "llc_mb": perf.llc_mb,
        "mem_bw_gbps": perf.mem_bw_gbps,
        "mem_latency_ns": perf.mem_latency_ns,
        "l2_hit_cycles": perf.l2_hit_cycles,
        "llc_hit_cycles": perf.llc_hit_cycles,
        "network_gbps": perf.network_gbps,
        "disk_mbps": perf.disk_mbps,
    }


def _shape_to_dict(shape: MachineShape) -> dict[str, Any]:
    return {
        "name": shape.name,
        "vcpus": shape.vcpus,
        "dram_gb": shape.dram_gb,
        "perf": _perf_to_dict(shape.perf),
    }


def _shape_from_dict(data: dict[str, Any]) -> MachineShape:
    return MachineShape(
        name=data["name"],
        vcpus=data["vcpus"],
        dram_gb=data["dram_gb"],
        perf=MachinePerf(**data["perf"]),
    )


# ----------------------------------------------------------------------
# Dataset
def dataset_to_dict(dataset: ScenarioDataset) -> dict[str, Any]:
    """Serialise a scenario dataset (signatures included, so custom jobs
    survive the round trip)."""
    signatures: dict[str, dict[str, Any]] = {}
    scenarios = []
    for scenario in dataset.scenarios:
        instances = []
        for instance in scenario.instances:
            sig = instance.signature
            signatures.setdefault(sig.name, _signature_to_dict(sig))
            instances.append({"job": sig.name, "load": instance.load})
        scenarios.append(
            {
                "scenario_id": scenario.scenario_id,
                "instances": instances,
                "n_occurrences": scenario.n_occurrences,
                "total_duration_s": scenario.total_duration_s,
            }
        )
    return {
        "format_version": _FORMAT_VERSION,
        "shape": _shape_to_dict(dataset.shape),
        "signatures": signatures,
        "scenarios": scenarios,
    }


def dataset_from_dict(data: dict[str, Any]) -> ScenarioDataset:
    """Rebuild a scenario dataset serialised by :func:`dataset_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    shape = _shape_from_dict(data["shape"])
    signatures = {
        name: _signature_from_dict(raw)
        for name, raw in data["signatures"].items()
    }
    scenarios = []
    for raw in data["scenarios"]:
        instances = tuple(
            RunningInstance(
                signature=signatures[item["job"]], load=item["load"]
            )
            for item in raw["instances"]
        )
        counts: dict[str, int] = {}
        for item in raw["instances"]:
            counts[item["job"]] = counts.get(item["job"], 0) + 1
        scenarios.append(
            Scenario(
                scenario_id=raw["scenario_id"],
                key=tuple(sorted(counts.items())),
                instances=instances,
                n_occurrences=raw["n_occurrences"],
                total_duration_s=raw["total_duration_s"],
            )
        )
    return ScenarioDataset(shape=shape, scenarios=tuple(scenarios))


def save_dataset(source, path, *, shard_size: int | None = None):
    """Write a scenario source to *path*.

    Two on-disk representations share this entry point:

    * **Legacy JSON** (the default): one self-contained file.  Any
      :class:`~repro.cluster.ScenarioSource` is accepted; a non-resident
      source is materialised first.
    * **Sharded store**: chosen when *shard_size* is given or *path* is
      an existing directory.  Streams the source into a
      :class:`~repro.store.ShardedScenarioStore` at *path* (replacing
      any store already there, as the JSON path replaces its file) and
      returns it.

    Both representations carry the same logical content digest, so
    ``load_dataset(path).digest()`` is identical either way.
    """
    path = pathlib.Path(path)
    if shard_size is not None or path.is_dir():
        from ..store import DEFAULT_SHARD_SIZE, write_store

        return write_store(
            source,
            path,
            shard_size=shard_size or DEFAULT_SHARD_SIZE,
            overwrite=True,
        )
    from ..cluster.source import ensure_dataset

    path.write_text(json.dumps(dataset_to_dict(ensure_dataset(source))))
    return None


def load_dataset(path):
    """Read a dataset previously written by :func:`save_dataset`.

    Auto-detects the representation: a directory is opened as a sharded
    scenario store (returning the memory-mapped
    :class:`~repro.store.ShardedScenarioStore`), anything else is
    parsed as the legacy JSON file (returning an in-memory
    :class:`ScenarioDataset`).  Both satisfy
    :class:`~repro.cluster.ScenarioSource`, so downstream code needs no
    branch.
    """
    path = pathlib.Path(path)
    if path.is_dir():
        from ..store import open_store

        return open_store(path)
    return dataset_from_dict(json.loads(path.read_text()))


# ----------------------------------------------------------------------
# Configs
def config_to_dict(config: FlareConfig) -> dict[str, Any]:
    """Serialise a pipeline configuration."""
    analyzer = config.analyzer
    return {
        "refinement_threshold": config.refinement_threshold,
        "noise_sigma": config.noise_sigma,
        "profiler_seed": config.profiler_seed,
        "interpretation_top_n": config.interpretation_top_n,
        "temporal_samples": config.temporal_samples,
        "temporal_jitter": config.temporal_jitter,
        "per_job_metrics": list(config.per_job_metrics),
        "solver": config.solver,
        "memo": config.memo,
        "runtime": (
            None if config.runtime is None else config.runtime.to_dict()
        ),
        "analyzer": {
            "variance_target": analyzer.variance_target,
            "n_components": analyzer.n_components,
            "cluster_counts": list(analyzer.cluster_counts),
            "n_clusters": analyzer.n_clusters,
            "kmeans_restarts": analyzer.kmeans_restarts,
            "kmeans_max_iter": analyzer.kmeans_max_iter,
            "weight_samples": analyzer.weight_samples,
            "seed": analyzer.seed,
        },
    }


def config_from_dict(data: dict[str, Any]) -> FlareConfig:
    """Rebuild a pipeline configuration."""
    raw = data["analyzer"]
    analyzer = AnalyzerConfig(
        variance_target=raw["variance_target"],
        n_components=raw["n_components"],
        cluster_counts=tuple(raw["cluster_counts"]),
        n_clusters=raw["n_clusters"],
        kmeans_restarts=raw["kmeans_restarts"],
        kmeans_max_iter=raw["kmeans_max_iter"],
        weight_samples=raw["weight_samples"],
        seed=raw["seed"],
    )
    return FlareConfig(
        refinement_threshold=data["refinement_threshold"],
        analyzer=analyzer,
        noise_sigma=data["noise_sigma"],
        profiler_seed=data["profiler_seed"],
        interpretation_top_n=data["interpretation_top_n"],
        temporal_samples=data.get("temporal_samples", 0),
        temporal_jitter=data.get("temporal_jitter", 0.15),
        per_job_metrics=tuple(data.get("per_job_metrics", ())),
        solver=data.get("solver", "auto"),
        memo=data.get("memo", "off"),
        runtime=(
            None
            if data.get("runtime") is None
            else RuntimeConfig.from_dict(data["runtime"])
        ),
    )


# ----------------------------------------------------------------------
# Fitted models
def fitted_digest(flare: Flare) -> str:
    """Stable digest of a fitted model's clustering state.

    Covers labels, cluster weights and representative choices — exactly
    what a deterministic re-fit must reproduce.
    """
    analysis = flare.analysis
    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(analysis.labels).tobytes())
    hasher.update(
        np.round(analysis.cluster_weights, 12).astype(np.float64).tobytes()
    )
    reps = [g.representative_index for g in flare.representatives.groups]
    hasher.update(np.asarray(reps, dtype=np.int64).tobytes())
    return hasher.hexdigest()


def save_model(flare: Flare, path) -> None:
    """Persist a fitted model as (config, dataset, digest).

    An in-memory fit embeds the full dataset.  An out-of-core fit would
    defeat its own memory bound by inlining the population, so the
    payload stores a *reference* to the sharded store (path + content
    digest) instead; :func:`load_model` re-opens the store and verifies
    the digest before re-fitting.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "config": config_to_dict(flare.config),
        "fitted_digest": fitted_digest(flare),
    }
    # Refit-path models (repro.core.refit) carry their provenance chain
    # and a deterministic-replay plan: the fixed-block refit pipeline
    # differs from a plain Flare.fit at ~1e-12 (per-shard vs per-block
    # statistics folding) and a warm start is not reproducible from the
    # config alone, so load_model replays the plan instead of re-fitting.
    if flare.lineage:
        payload["lineage"] = [entry.to_dict() for entry in flare.lineage]
        plan = flare._refit_plan
        if plan is not None:
            init = plan.get("init")
            payload["refit_plan"] = {
                "k": int(plan["k"]),
                # JSON round-trips Python floats exactly, so the replay
                # warm-starts from bit-identical centroids.
                "init": None if init is None else np.asarray(init).tolist(),
                "block_rows": int(plan["block_rows"]),
                "sample_capacity": int(plan["sample_capacity"]),
            }
    # Fit-time health statistics ride along so the artefact documents
    # what the model looked like when it was trusted; the drift monitor
    # scores later scenario streams against exactly these numbers.
    baseline = flare.representatives.baseline
    if baseline is not None:
        payload["fit_baseline"] = baseline.to_dict()
    if isinstance(flare.dataset, ScenarioDataset):
        payload["dataset"] = dataset_to_dict(
            flare._profiled.dataset
            if flare._profiled is not None
            else flare.dataset
        )
    else:
        source = flare.dataset
        store_path = getattr(source, "path", None)
        if store_path is None:
            raise ValueError(
                "cannot persist a model fitted on a non-resident source "
                "without an on-disk store; write the source with "
                "save_dataset(source, dir, shard_size=...) and refit"
            )
        payload["dataset_store"] = {
            "path": str(pathlib.Path(store_path).resolve()),
            "content_digest": source.digest(),
        }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_model(path, *, verify: bool = True) -> Flare:
    """Reload a fitted model by deterministic re-fit.

    Parameters
    ----------
    verify:
        Check the re-fitted state's digest against the stored one; raises
        ``ValueError`` on mismatch (e.g. the library's algorithms changed
        since the model was saved).
    """
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    config = config_from_dict(payload["config"])
    if "dataset_store" in payload:
        from ..store import open_store

        reference = payload["dataset_store"]
        source = open_store(reference["path"])
        if source.digest() != reference["content_digest"]:
            raise ValueError(
                f"scenario store at {reference['path']} has changed "
                "since the model was saved "
                f"(stored digest {reference['content_digest'][:12]}…)"
            )
    else:
        source = dataset_from_dict(payload["dataset"])
    if "refit_plan" in payload:
        import tempfile

        from ..core.refit import ModelLineage, replay_refit

        plan = payload["refit_plan"]
        with tempfile.TemporaryDirectory(prefix="repro-replay-") as tmp:
            flare = replay_refit(source, config, plan, spill_dir=tmp)
        flare.lineage = tuple(
            ModelLineage.from_dict(entry)
            for entry in payload.get("lineage", [])
        )
    else:
        flare = Flare(config).fit(source)
    if verify:
        digest = fitted_digest(flare)
        if digest != payload["fitted_digest"]:
            raise ValueError(
                "re-fitted model does not reproduce the saved state "
                f"(stored {payload['fitted_digest'][:12]}…, "
                f"got {digest[:12]}…)"
            )
        stored_baseline = payload.get("fit_baseline")
        if stored_baseline is not None:
            from ..core.representatives import FitBaseline

            stored = FitBaseline.from_dict(stored_baseline)
            refit = flare.representatives.baseline
            if refit is None or stored.n_clusters != refit.n_clusters:
                raise ValueError(
                    "re-fitted model's health baseline does not match "
                    "the saved one"
                )
    return flare
