"""Text rendering of cluster "radar plots" (paper Figure 10).

Each cluster centre lives in whitened PC space (zero mean, unit variance
over the dataset), so a signed bar per PC conveys the same information the
paper's radar plots do: which high-level metrics a group sits high or low
on relative to the datacenter average.
"""

from __future__ import annotations

import numpy as np

__all__ = ["signed_bar", "render_cluster_profile", "render_radar_report"]

_BAR_WIDTH = 10


def signed_bar(value: float, *, scale: float = 2.0, width: int = _BAR_WIDTH) -> str:
    """Render *value* as a signed bar centred on '|'.

    ``scale`` is the value mapped to a full half-width (±2σ by default).

    Examples
    --------
    >>> signed_bar(2.0)
    '          |##########'
    >>> signed_bar(-1.0)
    '     #####|          '
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    if width < 1:
        raise ValueError("width must be >= 1")
    magnitude = min(abs(value) / scale, 1.0)
    filled = round(magnitude * width)
    if value >= 0:
        return " " * width + "|" + "#" * filled + " " * (width - filled)
    return " " * (width - filled) + "#" * filled + "|" + " " * width


def render_cluster_profile(
    cluster_id: int,
    weight: float,
    centroid: np.ndarray,
    spread: np.ndarray | None = None,
) -> str:
    """Multi-line profile of one cluster: a signed bar per PC.

    Parameters
    ----------
    centroid:
        Cluster centre in whitened PC space.
    spread:
        Optional per-PC standard deviation of the cluster's members,
        appended as ``±x.xx`` (the shaded region of Figure 10).
    """
    centre = np.asarray(centroid, dtype=np.float64)
    if spread is not None:
        spread_arr = np.asarray(spread, dtype=np.float64)
        if spread_arr.shape != centre.shape:
            raise ValueError("spread must match centroid shape")
    lines = [f"Cluster {cluster_id} (weight {weight:.1%})"]
    for pc, value in enumerate(centre):
        suffix = (
            f"  ±{spread[pc]:.2f}" if spread is not None else ""
        )
        lines.append(f"  PC{pc:<3d} {signed_bar(float(value))} {value:+.2f}{suffix}")
    return "\n".join(lines)


def render_radar_report(
    centroids: np.ndarray,
    weights: np.ndarray,
    spreads: np.ndarray | None = None,
) -> str:
    """Render every cluster's profile (the full Figure 10 report)."""
    centres = np.asarray(centroids, dtype=np.float64)
    weight_arr = np.asarray(weights, dtype=np.float64)
    if centres.ndim != 2:
        raise ValueError("centroids must be 2-D")
    if weight_arr.shape != (centres.shape[0],):
        raise ValueError("weights must have one entry per cluster")
    blocks = []
    for cid in range(centres.shape[0]):
        spread = spreads[cid] if spreads is not None else None
        blocks.append(
            render_cluster_profile(
                cid, float(weight_arr[cid]), centres[cid], spread
            )
        )
    return "\n\n".join(blocks)
