"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables and figures
report; this module renders them as aligned ASCII tables so EXPERIMENTS.md
and console output stay readable without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: Any, *, precision: int = 2) -> str:
    """Format one cell: floats to fixed precision, others via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned.

    Examples
    --------
    >>> print(render_table(["job", "impact"], [["GA", 12.5]]))
    job | impact
    ----+-------
    GA  |  12.50
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )

    rendered = [
        [format_value(cell, precision=precision) for cell in row]
        for row in rows
    ]
    numeric = [
        all(
            isinstance(row[col], (int, float)) and not isinstance(row[col], bool)
            for row in rows
        )
        if rows
        else False
        for col in range(len(headers))
    ]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in rendered))
        if rendered
        else len(headers[col])
        for col in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            if numeric[col]:
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in rendered)
    return "\n".join(lines)
