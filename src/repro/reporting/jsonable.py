"""Converting result objects into JSON-serialisable structures.

Experiment results are nested frozen dataclasses holding numpy arrays,
enums and (for features) callables.  :func:`to_jsonable` flattens them
into plain dict/list/scalar structures so the benchmark harness can write
machine-readable artefacts next to the rendered text tables.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any

import numpy as np

__all__ = ["to_jsonable"]

_MAX_DEPTH = 24


def to_jsonable(obj: Any, *, _depth: int = 0) -> Any:
    """Recursively convert *obj* into JSON-compatible primitives.

    Handles dataclasses, numpy arrays/scalars, enums, mappings and
    sequences.  Callables (e.g. a Feature's ``apply``) are dropped from
    dataclass output; unknown leaf objects fall back to ``repr``.
    """
    if _depth > _MAX_DEPTH:
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if np.isfinite(obj) else repr(obj)
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, np.generic):
        return to_jsonable(obj.item(), _depth=_depth + 1)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v, _depth=_depth + 1) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {}
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if callable(value) and not dataclasses.is_dataclass(value):
                continue
            out[field.name] = to_jsonable(value, _depth=_depth + 1)
        return out
    if isinstance(obj, dict):
        return {
            str(to_jsonable(k, _depth=_depth + 1)): to_jsonable(
                v, _depth=_depth + 1
            )
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v, _depth=_depth + 1) for v in obj]
    return repr(obj)
