"""Plain-text reporting: ASCII tables and cluster radar profiles."""

from .jsonable import to_jsonable
from .radar import render_cluster_profile, render_radar_report, signed_bar
from .tables import format_value, render_table

__all__ = [
    "render_table",
    "format_value",
    "signed_bar",
    "render_cluster_profile",
    "render_radar_report",
    "to_jsonable",
]
