"""Command-line interface: the FLARE workflow as four commands.

::

    repro simulate  --seed 7 --scenarios 300 --out dataset.json
    repro simulate  --seed 7 --scenarios 100000 --store store/ --shard-size 4096
    repro ingest    --trace events.csv --shape default --out dataset.json
    repro fit       --dataset dataset.json --clusters 18 --out model.json
    repro evaluate  --model model.json --feature feature1 [--job WSC]
    repro report    --model model.json
    repro diagnose  --model model.json
    repro monitor   --model model.json --source live.json [--json]
    repro ledger check --ledger runs.jsonl [--kind bench]
    repro ledger show  --ledger runs.jsonl [--last 5]
    repro store inspect --store store/ [--verify]
    repro store compact --store store/ --out compact/ --shard-size 8192
    repro experiment --figure fig12 --scale small

``fit --dataset`` accepts either a dataset JSON file or a sharded store
directory; store-backed fits run out-of-core (see docs/store.md).
Also runnable as ``python -m repro …``.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .cluster.features import BASELINE, PAPER_FEATURES, Feature
from .cluster.machine import DEFAULT_SHAPE, SMALL_SHAPE
from .cluster.simulation import DatacenterConfig, run_simulation
from .core.analyzer import AnalyzerConfig
from .core.pipeline import Flare, FlareConfig
from .io.serialization import load_dataset, load_model, save_dataset, save_model
from .reporting.radar import render_radar_report
from .reporting.tables import render_table
from .runtime.config import DISPATCH_MODES, ResolvedRuntime, RuntimeConfig
from .store import DEFAULT_SHARD_SIZE, StoreWriter, compact_store, open_store

__all__ = ["main", "build_parser"]

_SHAPES = {"default": DEFAULT_SHAPE, "small": SMALL_SHAPE}
_FEATURES: dict[str, Feature] = {f.name: f for f in PAPER_FEATURES}
_FEATURES[BASELINE.name] = BASELINE

def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """Execution/resilience flags shared by fit / evaluate / experiment."""
    parser.add_argument(
        "--executor",
        help="execution backend: serial (default), process, process:<N>",
    )
    parser.add_argument(
        "--dispatch",
        choices=DISPATCH_MODES,
        default="auto",
        help=(
            "how scenario payloads reach process workers: auto "
            "(default), pickle, shardref (store-backed sources), shm"
        ),
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        metavar="N",
        help=(
            "scenarios per dispatched block (default: cost-aware "
            "auto-sizing from observed per-scenario cost)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        metavar="N",
        help="retry failed tasks up to N times (seeded backoff)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help=(
            "per-task wall-clock budget; hung process-pool workers are "
            "killed and their work re-dispatched"
        ),
    )
    parser.add_argument(
        "--failure-policy",
        choices=("fail_fast", "retry_then_skip", "retry_then_raise"),
        help=(
            "what exhausted retries do (default fail_fast, or "
            "retry_then_raise when --retries/--task-timeout is given)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        help=(
            "journal completed tasks under DIR so a killed run can be "
            "resumed with --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the --checkpoint journal of a previous "
            "identical invocation instead of starting fresh"
        ),
    )


def _add_ledger_flag(parser: argparse.ArgumentParser) -> None:
    """The run-ledger flag shared by fit / evaluate / monitor."""
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        help=(
            "append a structured run record (config digest, env "
            "fingerprint, stage timings, key metrics) to this JSONL "
            "ledger; check the trajectory with `repro ledger check`"
        ),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by fit / evaluate / diagnose / experiment."""
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "write a trace of this run: Chrome trace-event JSON "
            "(open in Perfetto / chrome://tracing), or span JSONL when "
            "PATH ends in .jsonl"
        ),
    )
    parser.add_argument(
        "--obs-summary",
        action="store_true",
        help=(
            "print a per-stage span/counter summary afterwards "
            "(worker-side telemetry included)"
        ),
    )
    parser.add_argument(
        "--runtime-stats",
        action="store_true",
        help="alias for --obs-summary",
    )


_EXPERIMENTS = (
    "fig01",
    "fig02",
    "fig03",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "sec56",
    "ablations",
    "sampling-strategies",
    "holdout",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FLARE: representative-scenario datacenter evaluation",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run the datacenter and collect scenarios"
    )
    simulate.add_argument("--seed", type=int, default=2023)
    simulate.add_argument("--scenarios", type=int, default=895)
    simulate.add_argument(
        "--shape", choices=sorted(_SHAPES), default="default"
    )
    simulate_out = simulate.add_mutually_exclusive_group(required=True)
    simulate_out.add_argument("--out", help="output dataset JSON")
    simulate_out.add_argument(
        "--store",
        metavar="DIR",
        help=(
            "stream scenarios into a sharded columnar store at DIR "
            "instead of an in-memory JSON dataset"
        ),
    )
    simulate.add_argument(
        "--shard-size",
        type=int,
        default=DEFAULT_SHARD_SIZE,
        metavar="N",
        help=f"scenarios per store shard (default {DEFAULT_SHARD_SIZE})",
    )

    ingest = sub.add_parser(
        "ingest", help="build a dataset from a container-lifecycle trace CSV"
    )
    ingest.add_argument("--trace", required=True, help="input trace CSV")
    ingest.add_argument(
        "--shape", choices=sorted(_SHAPES), default="default"
    )
    ingest.add_argument(
        "--lenient",
        action="store_true",
        help="skip malformed trace rows instead of failing",
    )
    ingest.add_argument("--out", required=True, help="output dataset JSON")

    fit = sub.add_parser("fit", help="fit FLARE on a collected dataset")
    fit.add_argument(
        "--dataset",
        required=True,
        help="input dataset JSON, or a sharded store directory",
    )
    fit.add_argument("--clusters", type=int, default=18)
    fit.add_argument(
        "--solver",
        choices=("scalar", "batched", "auto"),
        default="auto",
        help="contention-solver path (bit-identical; scalar is the "
        "reference, batched vectorises scenario batches)",
    )
    fit.add_argument(
        "--memo",
        default="off",
        metavar="off|memory|store:<path>",
        help="content-addressed solve memo (bit-identical hits; "
        "'store:<path>' persists solves across runs)",
    )
    fit.add_argument("--out", required=True, help="output model JSON")
    _add_runtime_flags(fit)
    _add_obs_flags(fit)
    _add_ledger_flag(fit)

    evaluate = sub.add_parser(
        "evaluate", help="estimate a feature's impact from a fitted model"
    )
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument(
        "--feature", choices=sorted(_FEATURES), required=True
    )
    evaluate.add_argument("--job", help="per-job estimate for this HP job")
    evaluate.add_argument(
        "--solver",
        choices=("scalar", "batched", "auto"),
        default=None,
        help="override the model's contention-solver path for replays",
    )
    evaluate.add_argument(
        "--memo",
        default=None,
        metavar="off|memory|store:<path>",
        help="override the model's solve-memo spec for replays",
    )
    _add_runtime_flags(evaluate)
    _add_obs_flags(evaluate)
    _add_ledger_flag(evaluate)

    report = sub.add_parser(
        "report", help="print a fitted model's interpretation report"
    )
    report.add_argument("--model", required=True)

    diagnose = sub.add_parser(
        "diagnose", help="print a fitted model's representativeness report"
    )
    diagnose.add_argument("--model", required=True)
    _add_obs_flags(diagnose)

    monitor = sub.add_parser(
        "monitor",
        help="score a scenario stream's drift against a fitted model",
    )
    monitor.add_argument("--model", required=True, help="fitted model JSON")
    monitor.add_argument(
        "--source",
        help=(
            "scenario source to score: dataset JSON or sharded store "
            "directory (default: the model's own dataset — a self-check "
            "that should report healthy)"
        ),
    )
    monitor.add_argument(
        "--json",
        action="store_true",
        help="emit the full drift report as JSON instead of text",
    )
    monitor.add_argument(
        "--fail-on",
        choices=("warn", "alert", "never"),
        default="alert",
        help=(
            "lowest drift status that exits non-zero (exit 1 = warn, "
            "2 = alert; default: alert)"
        ),
    )
    _add_runtime_flags(monitor)
    _add_obs_flags(monitor)
    _add_ledger_flag(monitor)

    fleet = sub.add_parser(
        "fleet",
        help=(
            "continuous fleet mode: ingest a segmented simulation into a "
            "live store, monitor each generation for drift, and refit "
            "incrementally on warn/alert (see docs/fleet.md)"
        ),
    )
    fleet.add_argument(
        "--store", required=True, metavar="DIR", help="live store directory"
    )
    fleet.add_argument(
        "--spill",
        required=True,
        metavar="DIR",
        help="persistent metric spill reused across refits",
    )
    fleet.add_argument("--out", required=True, help="final model JSON")
    fleet.add_argument("--seed", type=int, default=2023)
    fleet.add_argument(
        "--days", type=float, default=3.0, help="simulated horizon in days"
    )
    fleet.add_argument(
        "--segment-days",
        type=float,
        default=1.0,
        help="ingestion window; one store generation committed per segment",
    )
    fleet.add_argument(
        "--scenarios",
        type=int,
        default=None,
        help="stop the simulation after this many distinct co-locations",
    )
    fleet.add_argument(
        "--shape", choices=sorted(_SHAPES), default="default"
    )
    fleet.add_argument(
        "--shard-size", type=int, default=DEFAULT_SHARD_SIZE, metavar="N"
    )
    fleet.add_argument(
        "--clusters",
        type=int,
        default=None,
        help="fixed cluster count (default: knee-point sweep at gen 0)",
    )
    _add_runtime_flags(fleet)
    _add_obs_flags(fleet)
    _add_ledger_flag(fleet)

    ledger = sub.add_parser(
        "ledger", help="inspect or gate on the run ledger"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    ledger_check = ledger_sub.add_parser(
        "check",
        help=(
            "compare the newest record against the rolling history "
            "(median ± k·MAD per metric); non-zero exit on regression"
        ),
    )
    ledger_check.add_argument("--ledger", required=True, metavar="PATH")
    ledger_check.add_argument(
        "--kind",
        default="bench",
        help="record kind to gate on (default bench; 'any' disables)",
    )
    ledger_check.add_argument(
        "--metric",
        action="append",
        metavar="NAME[:lower|:higher]",
        help=(
            "metric rule: NAME:lower flags increases (default), "
            "NAME:higher flags decreases; repeatable; default is the "
            "built-in smoke-bench rule set"
        ),
    )
    ledger_check.add_argument(
        "--k", type=float, default=None, help="MAD multiplier (default 3)"
    )
    ledger_check.add_argument(
        "--rel-floor",
        type=float,
        default=None,
        help="minimum slack as a fraction of |median| (default 0.1)",
    )
    ledger_check.add_argument(
        "--min-samples",
        type=int,
        default=None,
        help="history size below which a rule is skipped (default 4)",
    )
    ledger_check.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="only judge against the most recent N prior records",
    )
    ledger_check.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    ledger_show = ledger_sub.add_parser(
        "show", help="print the most recent ledger records"
    )
    ledger_show.add_argument("--ledger", required=True, metavar="PATH")
    ledger_show.add_argument(
        "--last", type=int, default=10, metavar="N", help="records to show"
    )

    store = sub.add_parser(
        "store", help="inspect or compact a sharded scenario store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    inspect = store_sub.add_parser(
        "inspect", help="print a store's manifest summary"
    )
    inspect.add_argument("--store", required=True, metavar="DIR")
    inspect.add_argument(
        "--verify",
        action="store_true",
        help="re-read every shard and check all content digests",
    )
    compact = store_sub.add_parser(
        "compact", help="rewrite a store with a new shard size"
    )
    compact.add_argument("--store", required=True, metavar="DIR")
    compact.add_argument("--out", required=True, metavar="DIR")
    compact.add_argument(
        "--shard-size",
        type=int,
        metavar="N",
        help="scenarios per shard in the rewritten store (default: keep)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper figure"
    )
    experiment.add_argument("--figure", choices=_EXPERIMENTS, required=True)
    experiment.add_argument(
        "--scale", choices=("small", "paper"), default="small"
    )
    experiment.add_argument("--seed", type=int, default=2023)
    _add_runtime_flags(experiment)
    _add_obs_flags(experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "ingest": _cmd_ingest,
        "fit": _cmd_fit,
        "evaluate": _cmd_evaluate,
        "report": _cmd_report,
        "diagnose": _cmd_diagnose,
        "monitor": _cmd_monitor,
        "fleet": _cmd_fleet,
        "ledger": _cmd_ledger,
        "store": _cmd_store,
        "experiment": _cmd_experiment,
    }[args.command]

    trace_path = getattr(args, "trace", None)
    want_summary = getattr(args, "obs_summary", False) or getattr(
        args, "runtime_stats", False
    )
    # `repro ledger …` reads a ledger; every other command's --ledger
    # flag *writes* one — install it for the duration of the run.
    ledger_path = (
        getattr(args, "ledger", None) if args.command != "ledger" else None
    )
    if ledger_path:
        from .obs.ledger import disable_ledger, enable_ledger

        enable_ledger(ledger_path)
    try:
        if not trace_path and not want_summary:
            return handler(args)
        return _run_observed(handler, args, trace_path, want_summary)
    finally:
        if ledger_path:
            disable_ledger()


def _run_observed(handler, args, trace_path, want_summary: bool) -> int:
    """Run a command under a live tracer; export/summarise afterwards."""
    from . import obs

    tracer = obs.enable()
    try:
        code = handler(args)
    finally:
        obs.disable()
    if want_summary:
        print()
        print(obs.render_summary(tracer))
    if trace_path:
        path = obs.write_trace(
            tracer.spans(), trace_path, metrics=obs.get_metrics()
        )
        print(f"\ntrace written -> {path}")
    return code


# ----------------------------------------------------------------------
def _resolve_runtime(args, run_key: tuple) -> ResolvedRuntime | None:
    """Resolved runtime for one command's flags (None = legacy path).

    The flags map one-to-one onto :class:`RuntimeConfig` fields (see its
    docstring table); the checkpoint run id digests the command and its
    semantic arguments (*run_key*), so ``--resume`` only ever restores
    chunks journaled by an identical invocation — a different dataset,
    feature or figure lands in a different journal.
    """
    spec = getattr(args, "executor", None)
    non_default = (
        spec
        or args.dispatch != "auto"
        or args.chunk_size is not None
        or args.retries is not None
        or args.task_timeout is not None
        or args.failure_policy is not None
        or args.checkpoint
        or args.resume
    )
    if not non_default:
        return None
    if args.resume and not args.checkpoint:
        raise SystemExit("error: --resume requires --checkpoint DIR")
    config = RuntimeConfig(
        executor=spec,
        dispatch=args.dispatch,
        chunk_size=args.chunk_size if args.chunk_size is not None else "auto",
        retries=args.retries,
        task_timeout_s=args.task_timeout,
        failure_policy=args.failure_policy,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
    )
    return ResolvedRuntime(config.resolve(run_key), config, owned=True)


def _print_resume_summary(args) -> None:
    """Report how much work ``--resume`` restored from the journal."""
    if not getattr(args, "resume", False):
        return
    from .obs.metrics import get_metrics

    hits = (
        get_metrics().snapshot()["counters"].get("checkpoint_hits_total", 0)
    )
    print(f"resume: {int(hits)} task(s) restored from the checkpoint journal")


# ----------------------------------------------------------------------
def _cmd_simulate(args) -> int:
    config = DatacenterConfig(
        shape=_SHAPES[args.shape],
        seed=args.seed,
        target_unique_scenarios=args.scenarios,
    )
    if args.store is not None:
        with StoreWriter(
            args.store,
            config.shape,
            shard_size=args.shard_size,
            overwrite=True,
        ) as writer:
            result = run_simulation(config, sink=writer)
        destination = f"{args.store} ({writer.store.n_shards} shards)"
    else:
        result = run_simulation(config)
        save_dataset(result.dataset, args.out)
        destination = args.out
    print(
        f"collected {result.n_unique_scenarios} scenarios "
        f"({result.stats.n_placed} placements, "
        f"{result.stats.denial_rate:.1%} denials) -> {destination}"
    )
    return 0


def _cmd_ingest(args) -> int:
    from .io.tracecsv import dataset_from_trace_csv

    dataset = dataset_from_trace_csv(
        args.trace, _SHAPES[args.shape], strict=not args.lenient
    )
    save_dataset(dataset, args.out)
    print(
        f"ingested {len(dataset)} distinct co-locations from "
        f"{args.trace} -> {args.out}"
    )
    return 0


def _cmd_fit(args) -> int:
    dataset = load_dataset(args.dataset)
    config = FlareConfig(
        analyzer=AnalyzerConfig(n_clusters=args.clusters),
        solver=args.solver,
        memo=args.memo,
    )
    runtime = _resolve_runtime(args, ("fit", args.dataset, args.clusters))
    try:
        flare = Flare(config).fit(dataset, runtime=runtime)
    finally:
        if runtime is not None:
            runtime.close()
    save_model(flare, args.out)
    _print_resume_summary(args)
    report = flare.prune_report
    print(
        f"fitted FLARE: {report.n_kept + report.n_dropped} raw -> "
        f"{report.n_kept} refined metrics, "
        f"{flare.analysis.n_components} PCs, "
        f"{flare.analysis.n_clusters} groups -> {args.out}"
    )
    return 0


def _cmd_evaluate(args) -> int:
    flare = load_model(args.model)
    if args.solver is not None:
        flare.replayer.solver = args.solver
    if args.memo is not None:
        from .perfmodel.memo import validate_memo_spec

        validate_memo_spec(args.memo)
        flare.replayer.memo = args.memo if args.memo != "off" else None
    feature = _FEATURES[args.feature]
    runtime = _resolve_runtime(
        args, ("evaluate", args.model, args.feature, args.job)
    )
    try:
        if args.job:
            estimate = flare.evaluate_job(feature, args.job, runtime=runtime)
            label = f"{feature.name} impact on {args.job}"
        else:
            estimate = flare.evaluate(feature, runtime=runtime)
            label = f"{feature.name} impact (all HP jobs)"
    finally:
        if runtime is not None:
            runtime.close()
    _print_resume_summary(args)
    print(f"{label}: {estimate.reduction_pct:.2f}% MIPS reduction")
    print(f"evaluation cost: {estimate.evaluation_cost} scenario replays")
    rows = [
        [c.cluster_id, c.weight * 100.0, c.reduction_pct, c.scenario_id]
        for c in estimate.per_cluster
    ]
    print(
        render_table(
            ["cluster", "weight %", "impact %", "scenario"],
            rows,
            title="per-group breakdown",
        )
    )
    return 0


def _cmd_report(args) -> int:
    flare = load_model(args.model)
    print("High-level metrics (Figure 8 style):")
    for interp in flare.interpretations:
        print("  " + interp.describe())
    print()
    analysis = flare.analysis
    print(
        render_radar_report(
            analysis.kmeans.centroids, analysis.cluster_weights
        )
    )
    return 0


def _cmd_diagnose(args) -> int:
    from .core.diagnostics import diagnose

    flare = load_model(args.model)
    report = diagnose(flare)
    print(report.render())
    worst = report.worst_group()
    print(
        f"\nloosest group: cluster {worst.cluster_id} "
        f"(mean member distance {worst.mean_member_distance:.2f}); "
        f"mean representative centrality "
        f"{report.mean_centrality():.2f} (lower = more central)"
    )
    return 0


def _cmd_monitor(args) -> int:
    import json as _json

    flare = load_model(args.model)
    source = load_dataset(args.source) if args.source else None
    runtime = _resolve_runtime(
        args, ("monitor", args.model, args.source or "")
    )
    try:
        report = flare.health(source, runtime=runtime)
    finally:
        if runtime is not None:
            runtime.close()
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    fail_floor = {"warn": 1, "alert": 2, "never": 99}[args.fail_on]
    return report.exit_code if report.exit_code >= fail_floor else 0


class _SegmentReplay:
    """A deterministic stand-in for a live tail over a committed store.

    The fleet command first re-runs the seeded segmented simulation to
    (re)build the whole store, then replays its generation marks one
    ``refresh()`` at a time — so the watch loop sees exactly the growth
    a live deployment would, and a ``--resume`` of a killed run walks
    the identical sequence.
    """

    def __init__(self, store, marks: list, index: int) -> None:
        self._store = store
        self._marks = marks
        self._index = index

    @property
    def shape(self):
        return self._store.shape

    @property
    def cycle_index(self) -> int:
        return self._index

    def refresh(self) -> int:
        before = self._marks[self._index]
        if self._index < len(self._marks) - 1:
            self._index += 1
        return self._marks[self._index] - before

    def _view(self):
        from .store.live import StoreSlice

        return StoreSlice(self._store, 0, len(self))

    def __len__(self) -> int:
        return int(self._marks[self._index])

    def __getitem__(self, index: int):
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._store[index]

    def new_since(self, watermark: int):
        from .store.live import StoreSlice

        return StoreSlice(self._store, watermark, len(self))

    def iter_batches(self, batch_size=None):
        return self._view().iter_batches(batch_size)

    def weights(self):
        return self._view().weights()

    def durations(self):
        return self._view().durations()

    def schema(self):
        return self._store.schema()

    def digest(self) -> str:
        return self._view().digest()


def _cmd_fleet(args) -> int:
    import json as _json
    import pathlib

    import numpy as np

    from .core.refit import refit, replay_refit
    from .io.serialization import fitted_digest
    from .store import LiveStore, TailingSource
    from .store.live import StoreSlice

    shape = _SHAPES[args.shape]
    store_dir = pathlib.Path(args.store)
    spill_dir = pathlib.Path(args.spill)
    config = FlareConfig(analyzer=AnalyzerConfig(n_clusters=args.clusters))
    sim = DatacenterConfig(
        shape=shape,
        seed=args.seed,
        max_days=args.days,
        target_unique_scenarios=args.scenarios,
    )

    # Phase 1 — ingestion: (re)build the live store from the seeded
    # simulation, committing one generation per segment.  Deterministic,
    # so a resumed run reconstructs the identical store.
    marks: list[int] = []
    with LiveStore(
        store_dir, shape, shard_size=args.shard_size, overwrite=True
    ) as live:

        def on_segment(index: int, drained: int, now_s: float) -> None:
            live.commit()
            if live.watermark and (
                not marks or live.watermark > marks[-1]
            ):
                marks.append(live.watermark)

        run_simulation(
            sim,
            sink=live,
            segment_days=args.segment_days,
            on_segment=on_segment,
        )
    if not marks:
        raise SystemExit("error: the simulation produced no scenarios")
    reader = open_store(store_dir)
    print(
        f"ingested {marks[-1]} scenarios across {len(marks)} "
        f"generation(s) -> {store_dir}"
    )

    # The fleet journal makes the control loop resumable: one line per
    # completed cycle, carrying the lineage and the deterministic-replay
    # plan of the model in force after that cycle.
    journal_path = (
        pathlib.Path(args.checkpoint) / "fleet-journal.jsonl"
        if args.checkpoint
        else None
    )
    entries: list[dict] = []
    if args.resume and journal_path is not None and journal_path.exists():
        with journal_path.open() as handle:
            entries = [_json.loads(line) for line in handle if line.strip()]

    def journal_append(entry: dict) -> None:
        if journal_path is None:
            return
        journal_path.parent.mkdir(parents=True, exist_ok=True)
        with journal_path.open("a") as handle:
            handle.write(_json.dumps(entry) + "\n")

    def journal_entry(cycle: int, status: str, action: str, model) -> dict:
        plan = model._refit_plan
        init = plan.get("init") if plan else None
        return {
            "cycle": cycle,
            "covered": int(model.analysis.labels.shape[0]),
            "status": status,
            "action": action,
            "digest": fitted_digest(model),
            "lineage": [e.to_dict() for e in model.lineage],
            "plan": None
            if plan is None
            else {
                "k": int(plan["k"]),
                "init": None if init is None else np.asarray(init).tolist(),
                "block_rows": int(plan["block_rows"]),
                "sample_capacity": int(plan["sample_capacity"]),
            },
        }

    runtime = _resolve_runtime(
        args, ("fleet", str(store_dir), args.seed, args.days)
    )
    try:
        if entries:
            # Phase 2a — resume: rebuild the last journaled model (and
            # its spill, bit-identically) from the recorded plan.
            last = entries[-1]
            covered = int(last["covered"])
            # A store-covering model is replayed over a path-bearing
            # source so the republished payload can keep the store
            # reference (a StoreSlice has no on-disk identity).
            source = (
                TailingSource(reader)
                if covered == len(reader)
                else StoreSlice(reader, 0, covered)
            )
            model = replay_refit(
                source, config, last["plan"], spill_dir=spill_dir
            )
            if fitted_digest(model) != last["digest"]:
                raise SystemExit(
                    "error: resumed model does not reproduce the "
                    "journaled state; delete the checkpoint to restart"
                )
            from .core.refit import ModelLineage

            model.lineage = tuple(
                ModelLineage.from_dict(e) for e in last["lineage"]
            )
            start_cycle = int(last["cycle"]) + 1
            print(
                f"resume: restored cycle {last['cycle']} model "
                f"({covered} rows, generation "
                f"{model.lineage[-1].generation if model.lineage else 0})"
            )
        else:
            # Phase 2b — generation 0: full fit over the first window.
            model = refit(
                StoreSlice(reader, 0, marks[0]),
                config,
                spill_dir=spill_dir,
                trigger="initial",
                runtime=runtime,
            )
            journal_append(journal_entry(0, "initial", "fit:full", model))
            print(
                f"cycle 0: fitted generation 0 on {marks[0]} rows "
                f"({model.analysis.n_clusters} clusters)"
            )
            start_cycle = 1

        # A journal whose last entry is the final publish means the
        # previous run completed: republish it verbatim instead of
        # stacking another (fixed-point, but lineage-growing) refit.
        run_complete = bool(entries) and entries[-1]["status"] == "final"
        if run_complete:
            print("resume: previous run completed; republishing")

        # Phase 3 — the watch loop over the remaining generations.
        if not run_complete and start_cycle <= len(marks) - 1:
            tail = _SegmentReplay(reader, marks, start_cycle - 1)
            for decision in model.watch(
                tail, spill_dir=spill_dir, runtime=runtime
            ):
                model = decision.model
                cycle = tail.cycle_index
                journal_append(
                    journal_entry(
                        cycle, decision.status, decision.action, model
                    )
                )
                print(
                    f"cycle {cycle}: +{decision.n_new} rows, "
                    f"{decision.status} -> {decision.action}"
                )

        # Phase 4 — publish: absorb any healthy tail so the final model
        # covers the full store (a no-op fixed point when it already
        # does), then save it with the store reference.
        if not run_complete:
            final_tail = TailingSource(reader)
            model = model.refit(
                final_tail, spill_dir=spill_dir, trigger="final"
            )
            journal_append(
                journal_entry(
                    len(marks),
                    "final",
                    f"refit:{model.lineage[-1].kind}",
                    model,
                )
            )
    finally:
        if runtime is not None:
            runtime.close()
    save_model(model, args.out)
    _print_resume_summary(args)
    lineage = model.lineage[-1]
    print(
        f"published generation {lineage.generation} "
        f"({lineage.kind}, {lineage.n_scenarios} scenarios, "
        f"{model.analysis.n_clusters} clusters) -> {args.out}"
    )
    return 0


def _cmd_ledger(args) -> int:
    import json as _json

    from .obs.ledger import (
        DEFAULT_BENCH_RULES,
        MetricRule,
        RegressionDetector,
        RunLedger,
    )

    ledger = RunLedger(args.ledger)
    if args.ledger_command == "show":
        records = ledger.tail(args.last)
        if not records:
            print(f"ledger {args.ledger}: empty")
            return 0
        print(f"ledger {args.ledger}: last {len(records)} record(s)")
        for record in records:
            metrics = ", ".join(
                f"{k}={v:.6g}"
                for k, v in sorted(record.metrics.items())[:4]
            )
            print(
                f"  {record.timestamp or '-':<26} {record.kind:<10} "
                f"{metrics}"
            )
        return 0
    if args.ledger_command == "check":
        if args.metric:
            rules = []
            for spec in args.metric:
                name, _, direction = spec.partition(":")
                if direction not in ("", "lower", "higher"):
                    raise SystemExit(
                        f"error: bad metric direction {direction!r} "
                        "(use :lower or :higher)"
                    )
                rules.append(
                    MetricRule(
                        name, lower_is_better=(direction != "higher")
                    )
                )
        else:
            rules = list(DEFAULT_BENCH_RULES)
        detector = RegressionDetector(rules).with_overrides(
            k=args.k,
            rel_floor=args.rel_floor,
            min_samples=args.min_samples,
        )
        records = ledger.read()
        if not records:
            raise SystemExit(f"error: ledger {args.ledger} holds no records")
        kind = None if args.kind == "any" else args.kind
        try:
            report = detector.check(records, kind=kind, window=args.window)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0 if report.ok else 1
    raise AssertionError(f"unknown ledger command {args.ledger_command!r}")


def _cmd_store(args) -> int:
    if args.store_command == "inspect":
        store = open_store(args.store)
        mib = store.bytes_total / (1024.0 * 1024.0)
        rows = [
            [
                stat["shard"],
                stat["rows"],
                stat["bytes"],
                stat["duration_mass_s"],
            ]
            for stat in store.shard_stats()
        ]
        print(
            f"store {store.path}: {len(store)} scenarios in "
            f"{store.n_shards} shard(s) of <= {store.shard_size}, "
            f"{mib:.2f} MiB"
        )
        print(f"content digest: {store.digest()}")
        print(render_table(["shard", "rows", "bytes", "duration s"], rows))
        if args.verify:
            summary = store.verify()
            print(
                f"verified: {summary['rows']} rows across "
                f"{summary['n_shards']} shard(s), digests OK"
            )
        return 0
    if args.store_command == "compact":
        store = open_store(args.store)
        compacted = compact_store(
            store, args.out, shard_size=args.shard_size, overwrite=True
        )
        print(
            f"compacted {store.n_shards} shard(s) of <= {store.shard_size} "
            f"-> {compacted.n_shards} shard(s) of <= "
            f"{compacted.shard_size} at {args.out}"
        )
        return 0
    raise AssertionError(f"unknown store command {args.store_command!r}")


def _cmd_experiment(args) -> int:
    from . import experiments
    from .experiments import get_context

    context = get_context(args.scale, seed=args.seed)
    runtime = _resolve_runtime(
        args, ("experiment", args.figure, args.scale, args.seed)
    )
    if runtime is not None:
        context.use_executor(runtime.executor)
    figure = args.figure
    if figure == "fig03":
        print(experiments.fig03_scenario_landscape.run_occupancy(context).render())
        print()
        print(
            experiments.fig03_scenario_landscape.run_impact_vs_mpki(
                context
            ).render()
        )
    elif figure == "fig14":
        print(experiments.fig14_heterogeneous.run_transfer(context).render())
        print()
        print(experiments.fig14_heterogeneous.run(context).render())
    elif figure == "ablations":
        print(experiments.ablations.run_pipeline_variants(context).render())
    elif figure == "sampling-strategies":
        print(experiments.sampling_strategies.run(context).render())
    elif figure == "holdout":
        print(experiments.holdout.run(context).render())
    else:
        module = {
            "fig01": experiments.fig01_landscape,
            "fig02": experiments.fig02_loadtesting_pitfall,
            "fig07": experiments.fig07_pca_variance,
            "fig08": experiments.fig08_pc_interpretation,
            "fig09": experiments.fig09_cluster_selection,
            "fig10": experiments.fig10_cluster_radar,
            "fig11": experiments.fig11_cluster_impacts,
            "fig12": experiments.fig12_accuracy,
            "fig13": experiments.fig13_cost_accuracy,
            "sec56": experiments.sec56_scheduler_change,
        }[figure]
        print(module.run(context).render())
    _print_resume_summary(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
