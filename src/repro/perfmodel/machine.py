"""Physical machine performance parameters.

These are the knobs the paper's three features turn (Table 4): LLC
capacity (Feature 1, via Intel CAT), the DVFS frequency ceiling
(Feature 2) and SMT/Hyper-Threading (Feature 3) — all without changing the
machine's *shape* (schedulable vCPUs, DRAM) that the scheduler sees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachinePerf"]


@dataclass(frozen=True)
class MachinePerf:
    """Performance-relevant hardware description of one server.

    Attributes
    ----------
    physical_cores:
        Total physical cores across sockets (24 for the default E5-2650 v4
        pair at 12 cores/socket, exposing 48 hardware threads with SMT).
    smt_enabled:
        Whether two hardware threads share each core.  Disabling SMT does
        not change the schedulable vCPU count (shape is preserved); it
        changes how oversubscribed threads share core throughput.
    smt_speedup:
        Aggregate throughput of two SMT threads on one core relative to a
        single thread (typ. ~1.25).  With SMT off, co-resident threads
        strictly time-slice (aggregate 1.0).
    min_freq_ghz / max_freq_ghz:
        DVFS range.
    governor:
        Frequency-selection policy: ``"performance"`` pins busy cores at
        ``max_freq_ghz``; ``"ondemand"`` scales the clock linearly with
        core utilisation between the range endpoints — the classic
        power-saving policy whose datacenter cost FLARE can quantify.
    llc_mb:
        Total last-level cache across sockets (2 × 30 MB default; Feature 1
        restricts it to 2 × 12 MB via way masking).
    mem_bw_gbps:
        Peak DRAM bandwidth (4 channels DDR4-2400 per socket; ~92 GB/s
        achievable streaming bandwidth across two sockets).
    mem_latency_ns:
        Unloaded DRAM access latency.
    l2_hit_cycles / llc_hit_cycles:
        Access latencies of the mid-level caches, in core cycles.
    network_gbps / disk_mbps:
        I/O ceilings feeding the utilisation counters.
    """

    physical_cores: int = 24
    governor: str = "performance"
    smt_enabled: bool = True
    smt_speedup: float = 1.25
    min_freq_ghz: float = 1.2
    max_freq_ghz: float = 2.9
    llc_mb: float = 60.0
    mem_bw_gbps: float = 92.0
    mem_latency_ns: float = 85.0
    l2_hit_cycles: float = 12.0
    llc_hit_cycles: float = 40.0
    network_gbps: float = 10.0
    disk_mbps: float = 500.0

    def __post_init__(self) -> None:
        if self.physical_cores < 1:
            raise ValueError("physical_cores must be >= 1")
        if self.governor not in ("performance", "ondemand"):
            raise ValueError(
                f"unknown governor {self.governor!r}; expected "
                "'performance' or 'ondemand'"
            )
        if not 1.0 <= self.smt_speedup <= 2.0:
            raise ValueError("smt_speedup must be in [1, 2]")
        if self.min_freq_ghz <= 0.0 or self.max_freq_ghz < self.min_freq_ghz:
            raise ValueError("frequency range is invalid")
        for attr in (
            "llc_mb",
            "mem_bw_gbps",
            "mem_latency_ns",
            "l2_hit_cycles",
            "llc_hit_cycles",
            "network_gbps",
            "disk_mbps",
        ):
            if getattr(self, attr) <= 0.0:
                raise ValueError(f"{attr} must be positive")

    @property
    def hardware_threads(self) -> int:
        """Schedulable hardware threads (vCPUs) this machine exposes."""
        return self.physical_cores * 2

    def with_llc_mb(self, llc_mb: float) -> "MachinePerf":
        """Copy with a different usable LLC capacity (Feature 1)."""
        return replace(self, llc_mb=llc_mb)

    def with_max_freq_ghz(self, max_freq_ghz: float) -> "MachinePerf":
        """Copy with a different DVFS ceiling (Feature 2)."""
        return replace(self, max_freq_ghz=max_freq_ghz)

    def with_smt(self, enabled: bool) -> "MachinePerf":
        """Copy with SMT toggled (Feature 3)."""
        return replace(self, smt_enabled=enabled)

    def with_governor(self, governor: str) -> "MachinePerf":
        """Copy with a different DVFS governor policy."""
        return replace(self, governor=governor)

    def effective_frequency_ghz(self, busy_threads: float) -> float:
        """Clock the governor selects at the given machine activity."""
        if self.governor == "performance":
            return self.max_freq_ghz
        utilisation = min(
            max(busy_threads, 0.0) / self.physical_cores, 1.0
        )
        return self.min_freq_ghz + utilisation * (
            self.max_freq_ghz - self.min_freq_ghz
        )
