"""Persistent content-addressed solve memo (two tiers).

The batched solver (PR 5) dedups identical scenarios *within* one call;
at fleet scale the same co-locations repeat *across* batches, shards,
repeated ``evaluate`` runs and service-mode requests.  This module
memoises the contention fixed point across all of them:

* **Tier 1 — in-process LRU.**  The same :class:`_SolveCache` structure
  the shared solve cache uses, keyed by the canonical content digest,
  so repeated lookups in one process cost a dict probe.
* **Tier 2 — store segments.**  A directory of digest-verified,
  mmap-readable numpy segments (the ``repro.store`` codec discipline:
  temp-file + ``os.replace`` appends, sidecar manifest written last,
  sha256 checked on read).  Misses that fall through tier 1 are looked
  up here; solves are appended as new segments and *merged on read*,
  so any number of concurrent writer processes can share one memo
  directory without coordination — segment names are content digests,
  so two writers flushing identical work collide harmlessly and
  conflicting names are impossible.

Memoisation is only admissible because solves are bit-reproducible: a
:func:`~repro.perfmodel.contention.solve_colocation` call is a pure
deterministic function of ``(machine, instances)``, and the scalar and
batched paths are bit-identical.  Every float round-trips the segment
encoding exactly (raw IEEE-754 doubles), so a memo hit returns the same
bits a fresh solve would.  A corrupt or truncated segment fails its
digest check and is dropped whole — a corrupt entry degrades to a miss,
never to a wrong solve.

The key canonicalises float payloads before hashing: ``-0.0`` and
``0.0`` hash differently (they are different machine configurations —
``1/x`` diverges), while every NaN payload collapses onto one token
(NaN != NaN would otherwise make such keys unmatchable even against
themselves).  See :func:`solve_key`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from .contention import (
    ColocationPerformance,
    InstancePerformance,
    RunningInstance,
    _SolveCache,
    canonical_float_token,
)
from .cpistack import CPIStack
from .machine import MachinePerf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .signatures import JobSignature

__all__ = [
    "MEMO_FORMAT",
    "MEMO_FORMAT_VERSION",
    "MEMO_MODES",
    "SolveMemo",
    "canonical_float_token",
    "decode_memo_entries",
    "encode_memo_entries",
    "resolve_memo",
    "solve_key",
    "validate_memo_spec",
]

MEMO_FORMAT = "repro-solve-memo"
MEMO_FORMAT_VERSION = 1

#: Accepted ``memo=`` knob spellings (``store`` takes a ``:<path>``).
MEMO_MODES = ("off", "memory", "store")

#: One memoised solve: header row + an (offset, count) slice into the
#: companion instance table.  Explicit little-endian, like the scenario
#: store, so segments are byte-identical across platforms.
MEMO_ENTRY_DTYPE = np.dtype(
    [
        ("key", "S64"),
        ("inst_offset", "<i8"),
        ("inst_count", "<i4"),
        ("iterations", "<i4"),
        ("converged", "<i1"),
        ("cpu_utilization", "<f8"),
        ("mem_bw_utilization", "<f8"),
        ("mem_latency_ns", "<f8"),
    ]
)

#: One solved instance, in scenario order: every published
#: ``InstancePerformance`` float plus the full CPI stack.  Job name and
#: priority are *not* stored — they are a function of the query's own
#: signatures, which the key already covers.
MEMO_INSTANCE_DTYPE = np.dtype(
    [
        (name, "<f8")
        for name in (
            "mips",
            "ipc",
            "busy_threads",
            "cache_share_mb",
            "llc_miss_ratio",
            "llc_mpki",
            "dram_gbps",
            "network_gbps",
            "disk_mbps",
            "frequency_ghz",
            "cpi_base",
            "cpi_frontend",
            "cpi_branch",
            "cpi_l2",
            "cpi_llc_hit",
            "cpi_dram",
            "cpi_smt",
        )
    ]
)

_CPI_FIELDS = ("base", "frontend", "branch", "l2", "llc_hit", "dram", "smt")
_PERF_FIELDS = (
    "mips",
    "ipc",
    "busy_threads",
    "cache_share_mb",
    "llc_miss_ratio",
    "llc_mpki",
    "dram_gbps",
    "network_gbps",
    "disk_mbps",
    "frequency_ghz",
)


# ----------------------------------------------------------------------
# Canonical content-addressed key
def _canonical_value_token(value) -> str:
    if isinstance(value, float):
        return canonical_float_token(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, str)):
        return str(value)
    return repr(value)


#: id() -> (signature kept alive, digest bytes).  Signatures are tiny
#: frozen dataclasses reused across millions of instances; keeping the
#: object referenced makes the id key stable for the process lifetime.
_SIGNATURE_DIGESTS: dict[int, tuple["JobSignature", bytes]] = {}


def _signature_digest(signature: "JobSignature") -> bytes:
    cached = _SIGNATURE_DIGESTS.get(id(signature))
    if cached is not None:
        return cached[1]
    digest = hashlib.sha256(repr(signature).encode()).hexdigest().encode()
    _SIGNATURE_DIGESTS[id(signature)] = (signature, digest)
    return digest


#: id() -> (machine kept alive, hash state over the machine fields).
#: Every key in one evaluate run shares the machine prefix; caching the
#: partially-fed hasher and ``copy()``-ing it per scenario drops the
#: per-key cost to the instance bytes alone.
_MACHINE_PREFIXES: dict[int, tuple[MachinePerf, "hashlib._Hash"]] = {}

#: load value -> canonical token bytes.  Fleet loads draw from a small
#: discrete set; 0.0 is excluded (``-0.0`` aliases it under dict
#: equality but tokenises differently) and non-finite values are
#: excluded (NaN never equals itself, so it could only grow the dict).
_LOAD_TOKENS: dict[float, bytes] = {}


def _machine_prefix(machine: MachinePerf) -> "hashlib._Hash":
    cached = _MACHINE_PREFIXES.get(id(machine))
    if cached is not None:
        return cached[1]
    hasher = hashlib.sha256()
    hasher.update(f"{MEMO_FORMAT}-key-v{MEMO_FORMAT_VERSION}".encode())
    for field in dataclasses.fields(machine):
        hasher.update(field.name.encode())
        hasher.update(b"=")
        hasher.update(
            _canonical_value_token(getattr(machine, field.name)).encode()
        )
        hasher.update(b";")
    _MACHINE_PREFIXES[id(machine)] = (machine, hasher)
    return hasher


def _load_token(value: float) -> bytes:
    token = _LOAD_TOKENS.get(value)
    if token is None:
        token = canonical_float_token(value).encode()
        if value != 0.0 and value == value:
            _LOAD_TOKENS[value] = token
    return token


def solve_key(
    machine: MachinePerf, instances: Sequence[RunningInstance]
) -> str:
    """Canonical content digest of one ``(machine, scenario)`` solve.

    Covers every :class:`MachinePerf` field by name (the same contract
    as ``_SolveCache.make_key``) and, per instance in scenario order,
    the full job-signature content plus the load — all floats via
    :func:`canonical_float_token`, so the key is identical no matter
    which process, representation or run derives it.
    """
    hasher = _machine_prefix(machine).copy()
    for instance in instances:
        hasher.update(_signature_digest(instance.signature))
        hasher.update(b"@")
        hasher.update(_load_token(instance.load))
        hasher.update(b"|")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Segment codec
def encode_memo_entries(
    items: Iterable[tuple[str, ColocationPerformance]],
) -> tuple[np.ndarray, np.ndarray]:
    """Pack ``(key, solution)`` pairs into (entry table, instance table).

    Deterministic: the same items in the same order produce byte-
    identical arrays, which is what makes content-digest segment names
    and the golden serialisation fixture possible.
    """
    pairs = list(items)
    entries = np.empty(len(pairs), dtype=MEMO_ENTRY_DTYPE)
    total = sum(len(solution.instances) for _, solution in pairs)
    instances = np.empty(total, dtype=MEMO_INSTANCE_DTYPE)
    offset = 0
    for row, (key, solution) in enumerate(pairs):
        count = len(solution.instances)
        entries[row] = (
            key.encode(),
            offset,
            count,
            solution.iterations,
            1 if solution.converged else 0,
            solution.cpu_utilization,
            solution.mem_bw_utilization,
            solution.mem_latency_ns,
        )
        for perf in solution.instances:
            instances[offset] = tuple(
                getattr(perf, name) for name in _PERF_FIELDS
            ) + tuple(
                getattr(perf.cpi_stack, name) for name in _CPI_FIELDS
            )
            offset += 1
    return entries, instances


def decode_memo_entries(
    machine: MachinePerf,
    instances: Sequence[RunningInstance],
    entry: np.void,
    instance_rows: np.ndarray,
) -> ColocationPerformance | None:
    """Rebuild a solved :class:`ColocationPerformance` from segment rows.

    Job names and priorities come from the *query's* signatures (the
    key guarantees they match what was solved); every float is read
    back as the exact double that was written.  Returns ``None`` when
    the stored instance count disagrees with the query — the defensive
    stance against an (astronomically unlikely) digest collision:
    degrade to a miss, never return a wrong solve.
    """
    if int(entry["inst_count"]) != len(instances):
        return None
    performances = []
    # One tolist() converts the whole slice to plain-float tuples in
    # dtype order: the 10 _PERF_FIELDS then the 7 CPI components.
    for instance, values in zip(instances, instance_rows.tolist()):
        signature = instance.signature
        performances.append(
            InstancePerformance(
                job_name=signature.name,
                priority=signature.priority,
                mips=values[0],
                ipc=values[1],
                cpi_stack=CPIStack(*values[10:]),
                busy_threads=values[2],
                cache_share_mb=values[3],
                llc_miss_ratio=values[4],
                llc_mpki=values[5],
                dram_gbps=values[6],
                network_gbps=values[7],
                disk_mbps=values[8],
                frequency_ghz=values[9],
            )
        )
    return ColocationPerformance(
        machine=machine,
        instances=tuple(performances),
        cpu_utilization=float(entry["cpu_utilization"]),
        mem_bw_utilization=float(entry["mem_bw_utilization"]),
        mem_latency_ns=float(entry["mem_latency_ns"]),
        converged=bool(entry["converged"]),
        iterations=int(entry["iterations"]),
    )


def _inc(counter: str, value: int = 1) -> None:
    from ..obs import inc

    inc(counter, value)


# ----------------------------------------------------------------------
class SolveMemo:
    """Two-tier content-addressed memo for contention solves.

    Parameters
    ----------
    spec:
        The knob spelling this memo realises: ``"memory"`` for the LRU
        tier alone, or ``"store:<path>"`` to back it with a persistent
        segment directory at ``<path>``.
    maxsize:
        In-process LRU capacity.
    flush_threshold:
        Pending store-tier entries that trigger an automatic segment
        flush; callers also flush at natural batch boundaries.
    """

    def __init__(
        self,
        spec: str = "memory",
        *,
        maxsize: int = 65536,
        flush_threshold: int = 2048,
    ) -> None:
        mode, path = validate_memo_spec(spec)
        if mode == "off":
            raise ValueError("SolveMemo cannot be constructed for 'off'")
        self.spec = spec
        self._memory = _SolveCache(maxsize=maxsize)
        self.flush_threshold = flush_threshold
        self.path = pathlib.Path(path) if path is not None else None
        self._pending: dict[str, ColocationPerformance] = {}
        #: (id(machine), id(instances tuple)) -> (machine, instances,
        #: key), both kept alive.  Re-evaluating the same dataset keys
        #: each scenario with one dict probe instead of a sha256 pass.
        self._keys: dict[tuple[int, int], tuple] = {}
        #: key -> (entry table, instance table, entry row)
        self._store_index: dict[
            str, tuple[np.ndarray, np.ndarray, int]
        ] = {}
        self._segments_seen: set[str] = set()
        self._loaded = False
        self.store_hits = 0
        self.segments_written = 0
        self.corrupt_segments = 0

    # -- pickling: workers resolve their own per-process instance ------
    def __reduce__(self):
        return (resolve_memo, (self.spec,))

    def __enter__(self) -> "SolveMemo":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()

    # ------------------------------------------------------------------
    def key_for(
        self, machine: MachinePerf, instances: Sequence[RunningInstance]
    ) -> str:
        """:func:`solve_key`, cached by object identity for tuples.

        Safe only because the cached operands are immutable (a tuple of
        frozen instances, a frozen machine) and are kept referenced, so
        an id cannot be recycled while its entry lives; mutable
        sequences bypass the cache.
        """
        if type(instances) is not tuple:
            return solve_key(machine, instances)
        token = (id(machine), id(instances))
        cached = self._keys.get(token)
        if cached is not None:
            return cached[2]
        key = solve_key(machine, instances)
        self._keys[token] = (machine, instances, key)
        return key

    def lookup(
        self,
        key: str,
        machine: MachinePerf,
        instances: Sequence[RunningInstance],
    ) -> ColocationPerformance | None:
        """Tier-1 then tier-2 lookup; ``None`` is a genuine miss."""
        hit = self._memory.lookup(key)
        if hit is not None:
            _inc("solve_memo_hits_total")
            return hit
        if self.path is not None:
            if not self._loaded:
                self.refresh()
            located = self._store_index.get(key)
            if located is not None:
                entries, rows, row = located
                entry = entries[row]
                start = int(entry["inst_offset"])
                stop = start + int(entry["inst_count"])
                solution = decode_memo_entries(
                    machine, instances, entry, rows[start:stop]
                )
                if solution is not None:
                    self._memory.store(key, solution)
                    self.store_hits += 1
                    _inc("solve_memo_hits_total")
                    _inc("solve_memo_store_hits_total")
                    return solution
        _inc("solve_memo_misses_total")
        return None

    def record(self, key: str, solution: ColocationPerformance) -> None:
        """Admit one solved scenario into both tiers."""
        self._memory.store(key, solution)
        if self.path is not None and key not in self._store_index:
            self._pending[key] = solution
            if len(self._pending) >= self.flush_threshold:
                self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write pending entries as one atomic segment; returns count.

        The segment name is the content digest of its own tables, so a
        concurrent writer producing the same solves lands on the same
        name with the same bytes — the second ``os.replace`` is a
        no-op, not a conflict.  The sidecar manifest is written last:
        no sidecar, no segment.
        """
        if self.path is None or not self._pending:
            self._pending.clear()
            return 0
        from ..store.format import array_digest, write_array_atomic

        items = sorted(self._pending.items())
        entries, instances = encode_memo_entries(items)
        entries_digest = array_digest(entries)
        instances_digest = array_digest(instances)
        name = "seg-" + hashlib.sha256(
            f"{entries_digest}:{instances_digest}".encode()
        ).hexdigest()[:16]
        self.path.mkdir(parents=True, exist_ok=True)
        sidecar_path = self.path / f"{name}.json"
        if not sidecar_path.exists():
            write_array_atomic(self.path / f"{name}.entries.npy", entries)
            write_array_atomic(
                self.path / f"{name}.instances.npy", instances
            )
            sidecar = {
                "format": MEMO_FORMAT,
                "format_version": MEMO_FORMAT_VERSION,
                "entries": int(entries.shape[0]),
                "instances": int(instances.shape[0]),
                "entries_digest": entries_digest,
                "instances_digest": instances_digest,
            }
            temporary = sidecar_path.with_name(f".tmp-{sidecar_path.name}")
            try:
                temporary.write_text(json.dumps(sidecar, indent=1) + "\n")
                import os

                os.replace(temporary, sidecar_path)
            finally:
                temporary.unlink(missing_ok=True)
        # Serve the flushed entries from the in-memory arrays directly.
        self._segments_seen.add(name)
        for row in range(entries.shape[0]):
            key = entries[row]["key"].decode()
            self._store_index.setdefault(key, (entries, instances, row))
        written = len(items)
        self._pending.clear()
        self.segments_written += 1
        _inc("solve_memo_entries_written_total", written)
        _inc("solve_memo_segments_written_total")
        return written

    def refresh(self) -> int:
        """Merge-on-read: index any segments not yet seen.

        Safe to call at any time; concurrent writers only ever add new
        uniquely-named segments, and a segment failing its digest check
        (corruption, truncation, torn concurrent state) is skipped
        whole — its keys simply stay misses.
        """
        self._loaded = True
        if self.path is None or not self.path.is_dir():
            return 0
        from ..store.format import StoreCorruptionError, read_shard_array

        merged = 0
        for sidecar_path in sorted(self.path.glob("seg-*.json")):
            name = sidecar_path.name[: -len(".json")]
            if name in self._segments_seen:
                continue
            self._segments_seen.add(name)
            try:
                sidecar = json.loads(sidecar_path.read_text())
                if (
                    sidecar.get("format") != MEMO_FORMAT
                    or sidecar.get("format_version") != MEMO_FORMAT_VERSION
                ):
                    raise StoreCorruptionError(
                        f"unrecognised memo segment sidecar {sidecar_path}"
                    )
                entries = read_shard_array(
                    self.path / f"{name}.entries.npy",
                    mmap=True,
                    expected_rows=int(sidecar["entries"]),
                    expected_digest=sidecar["entries_digest"],
                )
                instances = read_shard_array(
                    self.path / f"{name}.instances.npy",
                    mmap=True,
                    expected_rows=int(sidecar["instances"]),
                    expected_digest=sidecar["instances_digest"],
                )
            except (
                StoreCorruptionError,
                OSError,
                ValueError,
                KeyError,
                json.JSONDecodeError,
            ):
                self.corrupt_segments += 1
                _inc("solve_memo_corrupt_segments_total")
                continue
            for row in range(entries.shape[0]):
                key = entries[row]["key"].decode()
                self._store_index.setdefault(key, (entries, instances, row))
            merged += 1
        return merged

    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop tier 1 (the persistent tier is untouched)."""
        self._memory.clear()

    @property
    def store_entries(self) -> int:
        """Distinct keys indexed from the persistent tier."""
        return len(self._store_index)

    def stats(self) -> dict:
        info = self._memory.info()
        return {
            "spec": self.spec,
            "memory_hits": info.hits,
            "memory_misses": info.misses,
            "memory_entries": info.currsize,
            "store_hits": self.store_hits,
            "store_entries": len(self._store_index),
            "pending": len(self._pending),
            "segments_written": self.segments_written,
            "corrupt_segments": self.corrupt_segments,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SolveMemo({self.spec!r}, entries={self.store_entries})"


# ----------------------------------------------------------------------
# Knob plumbing
def validate_memo_spec(spec: str) -> tuple[str, str | None]:
    """Parse/validate a ``memo=`` knob; returns ``(mode, path | None)``."""
    if not isinstance(spec, str):
        raise TypeError(f"memo spec must be a string, got {spec!r}")
    if spec in ("off", "memory"):
        return spec, None
    if spec.startswith("store:"):
        path = spec[len("store:") :]
        if not path:
            raise ValueError("memo='store:<path>' needs a non-empty path")
        return "store", path
    raise ValueError(
        f"unknown memo spec {spec!r}; expected one of "
        "'off', 'memory', or 'store:<path>'"
    )


#: Per-process memo instances by spec — the warm cache service-mode
#: workers (and pickled tasks, via ``SolveMemo.__reduce__``) share.
_MEMO_REGISTRY: dict[str, SolveMemo] = {}


def resolve_memo(value: "SolveMemo | str | None") -> SolveMemo | None:
    """Resolve a memo knob to a live per-process :class:`SolveMemo`.

    ``None``/``"off"`` disable memoisation; a :class:`SolveMemo` passes
    through; a spec string maps onto this process's shared instance for
    that spec (creating it on first use), which is also how pickled
    tasks rebind to their worker's memo.
    """
    if value is None:
        return None
    if isinstance(value, SolveMemo):
        return value
    mode, _ = validate_memo_spec(value)
    if mode == "off":
        return None
    memo = _MEMO_REGISTRY.get(value)
    if memo is None:
        memo = SolveMemo(value)
        _MEMO_REGISTRY[value] = memo
    return memo
