"""Request-latency model for interactive services.

The paper summarises performance as normalised MIPS but stresses that
FLARE "is not bound to any specific performance metric" (§5.1) — tail
latency being the obvious alternative for latency-critical services.
This module derives per-instance request latency from the contention
solution with a standard M/M/1-per-worker approximation:

* the *service time* of a request inflates with the job's CPI relative to
  running alone (interference slows every instruction down);
* the *wait time* follows 1/(1-ρ) queueing growth, where the effective
  utilisation is the offered demand times the service-time inflation —
  an interfered-with server saturates earlier;
* the p99 uses the exponential sojourn-time quantile, ``W · ln(100)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from .contention import InstancePerformance

__all__ = ["LatencyEstimate", "instance_latency", "DEFAULT_SERVICE_TIME_MS"]

#: Uncontended mean service time per request (ms), by job code.  Values
#: follow the service classes of the CloudSuite benchmarks: memcached
#: sub-millisecond, search/serving a few ms, streaming chunk delivery
#: larger.  Jobs not listed fall back to 2 ms.
DEFAULT_SERVICE_TIME_MS: dict[str, float] = {
    "DC": 0.3,
    "WSC": 4.0,
    "WSV": 3.0,
    "DS": 5.0,
    "MS": 8.0,
    "DA": 50.0,
    "GA": 50.0,
    "IA": 40.0,
}

_FALLBACK_SERVICE_TIME_MS = 2.0
_MAX_UTILISATION = 0.99


@dataclass(frozen=True)
class LatencyEstimate:
    """Mean and tail request latency of one service instance."""

    job_name: str
    service_time_ms: float
    utilisation: float
    mean_ms: float
    p99_ms: float

    @property
    def queueing_factor(self) -> float:
        """Mean sojourn over uncontended service time."""
        return self.mean_ms / self.service_time_ms


def instance_latency(
    perf: InstancePerformance,
    inherent: InstancePerformance,
    load: float,
    *,
    service_time_ms: float | None = None,
) -> LatencyEstimate:
    """Request latency of an instance under its current co-location.

    Parameters
    ----------
    perf:
        The instance's solved performance in the co-location.
    inherent:
        The same instance solved alone on an empty machine (the
        normaliser the MIPS metric also uses).
    load:
        The instance's demand level: offered utilisation per worker
        before interference.
    service_time_ms:
        Uncontended mean service time; defaults to the job's entry in
        :data:`DEFAULT_SERVICE_TIME_MS`.
    """
    if not 0.0 < load <= 1.0:
        raise ValueError("load must be in (0, 1]")
    if perf.job_name != inherent.job_name:
        raise ValueError(
            f"performance is for {perf.job_name!r} but inherent is for "
            f"{inherent.job_name!r}"
        )
    base = (
        service_time_ms
        if service_time_ms is not None
        else DEFAULT_SERVICE_TIME_MS.get(
            perf.job_name, _FALLBACK_SERVICE_TIME_MS
        )
    )
    if base <= 0.0:
        raise ValueError("service_time_ms must be positive")

    # Interference slows every instruction: service-time inflation is the
    # ratio of uncontended to contended per-thread instruction rate.
    inflation = (
        inherent.ipc * inherent.frequency_ghz
    ) / (perf.ipc * perf.frequency_ghz)
    inflation = max(inflation, 1.0)
    service = base * inflation

    utilisation = min(load * inflation, _MAX_UTILISATION)
    mean = service / (1.0 - utilisation)
    p99 = mean * math.log(100.0)
    return LatencyEstimate(
        job_name=perf.job_name,
        service_time_ms=base,
        utilisation=utilisation,
        mean_ms=mean,
        p99_ms=p99,
    )
