"""Calibrating model parameters from measurements.

A team adopting FLARE on a real datacenter does not hand-write job
signatures — it measures.  This module fits the model's two main
ingredients from data a performance engineer can actually collect:

* :func:`fit_mrc` — a miss-ratio curve from (cache allocation, miss
  ratio) points, e.g. from an Intel-CAT way-masking sweep;
* :func:`calibrate_cpi_components` — the signature's CPI components from
  a solo run's IPC and topdown fractions (the standard perf/toplev
  output).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from .cpistack import TopdownBreakdown
from .mrc import MissRatioCurve

__all__ = ["fit_mrc", "MRCFit", "calibrate_cpi_components", "CPIComponents"]


@dataclass(frozen=True)
class MRCFit:
    """A fitted miss-ratio curve plus its fit quality."""

    mrc: MissRatioCurve
    rmse: float
    n_points: int


def fit_mrc(
    cache_mb,
    miss_ratios,
    *,
    floor_bounds: tuple[float, float] = (0.0, 0.95),
    shape_bounds: tuple[float, float] = (0.2, 4.0),
) -> MRCFit:
    """Least-squares fit of a hyperbolic MRC to measured points.

    Parameters
    ----------
    cache_mb / miss_ratios:
        Paired observations: miss ratio measured at each cache
        allocation.  At least 3 points (the model has 3 parameters).

    Returns
    -------
    MRCFit
        The fitted curve and its root-mean-square error on the inputs.
    """
    sizes = np.asarray(cache_mb, dtype=np.float64)
    ratios = np.asarray(miss_ratios, dtype=np.float64)
    if sizes.ndim != 1 or sizes.shape != ratios.shape:
        raise ValueError("cache_mb and miss_ratios must be matching 1-D arrays")
    if sizes.size < 3:
        raise ValueError("need at least 3 measurement points")
    if (sizes < 0).any():
        raise ValueError("cache sizes must be non-negative")
    if (ratios < 0).any() or (ratios > 1).any():
        raise ValueError("miss ratios must be in [0, 1]")

    def model(c, half, shape, floor):
        return floor + (1.0 - floor) / (1.0 + c / half) ** shape

    half_guess = max(float(np.median(sizes)), 0.1)
    p0 = (half_guess, 1.0, max(float(ratios.min()) * 0.8, 1e-3))
    bounds = (
        (0.01, shape_bounds[0], floor_bounds[0]),
        (1e4, shape_bounds[1], floor_bounds[1]),
    )
    params, _ = curve_fit(
        model, sizes, ratios, p0=p0, bounds=bounds, maxfev=20_000
    )
    half, shape, floor = (float(p) for p in params)
    mrc = MissRatioCurve(half_capacity_mb=half, shape=shape, floor=floor)
    predicted = np.array([mrc.miss_ratio(c) for c in sizes])
    rmse = float(np.sqrt(np.mean((predicted - ratios) ** 2)))
    return MRCFit(mrc=mrc, rmse=rmse, n_points=int(sizes.size))


@dataclass(frozen=True)
class CPIComponents:
    """CPI components recovered from a solo-run measurement."""

    base_cpi: float
    frontend_cpi: float
    bad_speculation_cpi: float
    backend_cpi: float

    @property
    def total(self) -> float:
        return (
            self.base_cpi
            + self.frontend_cpi
            + self.bad_speculation_cpi
            + self.backend_cpi
        )


def calibrate_cpi_components(
    ipc: float, topdown: TopdownBreakdown
) -> CPIComponents:
    """Split a measured CPI into signature components via topdown slots.

    Given the IPC of a job running alone and its level-1 topdown
    breakdown (retiring / frontend-bound / bad-speculation /
    backend-bound), attribute total CPI proportionally — the standard
    interpretation of topdown slot fractions.  The results seed a
    :class:`~repro.perfmodel.signatures.JobSignature`'s ``base_cpi``
    (retiring) and ``frontend_cpi``; backend CPI is what the cache/memory
    parameters must reproduce.
    """
    if ipc <= 0.0:
        raise ValueError("ipc must be positive")
    total_cpi = 1.0 / ipc
    return CPIComponents(
        base_cpi=total_cpi * topdown.retiring,
        frontend_cpi=total_cpi * topdown.frontend_bound,
        bad_speculation_cpi=total_cpi * topdown.bad_speculation,
        backend_cpi=total_cpi * topdown.backend_bound,
    )
