"""Job resource signatures: the microarchitectural personality of a job.

The paper runs real CloudSuite / SPEC CPU2006 binaries; those are not
available here, so each job is described by a *signature* — inherent CPI
components, cache behaviour, bandwidth appetite and I/O rates per instance.
The contention model (:mod:`repro.perfmodel.contention`) combines the
signatures of co-located instances into per-job performance, which is all
the FLARE pipeline ever observes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from .mrc import MissRatioCurve

__all__ = ["Priority", "JobSignature"]


class Priority(enum.Enum):
    """Job scheduling priority (paper §3.1).

    High-priority (HP) jobs are the services whose performance the
    datacenter manages; low-priority (LP) batch jobs run on free quota and
    their throughput is ignored when summarising feature impact.
    """

    HIGH = "HP"
    LOW = "LP"


@dataclass(frozen=True)
class JobSignature:
    """Per-instance resource and performance profile of a job.

    All rates are per retired instruction unless noted.  An *instance* is
    one container: ``vcpus`` hardware threads plus ``dram_gb`` of memory
    (the paper fixes instances at 4 vCPUs, Table 3).

    Attributes
    ----------
    name:
        Short job code (``DA``, ``DC`` … for HP; SPEC names for LP).
    description:
        Human-readable description (benchmark + configuration, Table 3).
    priority:
        HP or LP.
    vcpus / dram_gb:
        Container resource request, used by the scheduler (no overcommit).
    base_cpi:
        Cycles per instruction with perfect caches and no stalls
        (issue-width / dependency limited; lower = more ILP).
    frontend_cpi:
        Frontend (fetch/decode) stall cycles per instruction — large
        instruction footprints (scale-out services) have high values.
    branch_mpki:
        Branch mispredictions per kilo-instruction.
    l1d_apki / l2_apki / llc_apki:
        Accesses per kilo-instruction reaching each cache level.
    l1i_apki:
        Instruction-cache accesses per kilo-instruction (frontend traffic).
    mrc:
        LLC miss-ratio curve of the instance.
    mem_blocking_factor:
        Fraction of LLC-miss latency that actually stalls retirement
        (1/MLP); latency-sensitive pointer chasing ≈ 0.8, streaming ≈ 0.2.
    write_fraction:
        Fraction of LLC misses that also produce a writeback.
    active_fraction:
        Fraction of allocated vCPU time the instance keeps its threads
        busy at nominal load (servers waiting on requests sit below 1.0).
    network_bytes_per_instr / disk_bytes_per_instr:
        I/O appetite, feeding the network/disk counters of the Profiler.
    spin_fraction:
        Fraction of retired instructions that are spin/polling filler and
        carry no useful work.  Kept small: the paper notes its jobs are
        tuned to minimise spinning so MIPS tracks application throughput.
    """

    name: str
    description: str
    priority: Priority
    vcpus: int
    dram_gb: float
    base_cpi: float
    frontend_cpi: float
    branch_mpki: float
    l1i_apki: float
    l1d_apki: float
    l2_apki: float
    llc_apki: float
    mrc: MissRatioCurve
    mem_blocking_factor: float
    write_fraction: float = 0.3
    active_fraction: float = 0.9
    network_bytes_per_instr: float = 0.0
    disk_bytes_per_instr: float = 0.0
    spin_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.dram_gb <= 0.0:
            raise ValueError("dram_gb must be positive")
        for attr in ("base_cpi", "frontend_cpi"):
            if getattr(self, attr) < 0.0:
                raise ValueError(f"{attr} must be non-negative")
        if self.base_cpi <= 0.0:
            raise ValueError("base_cpi must be positive")
        for attr in (
            "branch_mpki",
            "l1i_apki",
            "l1d_apki",
            "l2_apki",
            "llc_apki",
            "network_bytes_per_instr",
            "disk_bytes_per_instr",
        ):
            if getattr(self, attr) < 0.0:
                raise ValueError(f"{attr} must be non-negative")
        if not 0.0 < self.mem_blocking_factor <= 1.0:
            raise ValueError("mem_blocking_factor must be in (0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if not 0.0 < self.active_fraction <= 1.0:
            raise ValueError("active_fraction must be in (0, 1]")
        if not 0.0 <= self.spin_fraction < 1.0:
            raise ValueError("spin_fraction must be in [0, 1)")

    @property
    def is_high_priority(self) -> bool:
        return self.priority is Priority.HIGH

    def scaled_load(self, load: float) -> "JobSignature":
        """Signature at a user-demand *load* in ``(0, 1]``.

        Load scales thread busy-time and I/O appetite; the per-instruction
        cache behaviour is intrinsic to the code and does not change.
        """
        if not 0.0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        return replace(
            self,
            active_fraction=self.active_fraction * load,
            network_bytes_per_instr=self.network_bytes_per_instr,
            disk_bytes_per_instr=self.disk_bytes_per_instr,
        )
