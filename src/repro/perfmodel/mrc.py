"""Miss-ratio curves for shared last-level-cache modelling.

Each job's LLC behaviour is summarised by a hyperbolic miss-ratio curve
(MRC): the fraction of LLC accesses that miss as a function of the cache
capacity the job effectively receives.  Hyperbolic MRCs are the standard
first-order model for datacenter workloads (cf. Qureshi & Patt utility
curves) and give FLARE's Feature 1 (cache sizing, 30 MB → 12 MB) a
realistic, job-dependent response.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MissRatioCurve", "hyperbolic_miss_ratio"]


def hyperbolic_miss_ratio(cache_mb, half_capacity_mb, shape, floor):
    """Vectorised hyperbolic MRC evaluation.

    The one place the miss-ratio formula is written down for array
    inputs: both the scalar contention solver and the batched solver
    (:mod:`repro.perfmodel.batch`) evaluate their miss ratios through
    this function, so the two paths are bit-identical by construction —
    ``pow`` is the only transcendental in the contention model, and
    numpy's array ``**`` is not bit-identical to Python's scalar ``**``.
    All four arguments broadcast against each other.
    """
    reducible = 1.0 / (1.0 + cache_mb / half_capacity_mb) ** shape
    return floor + (1.0 - floor) * reducible


@dataclass(frozen=True)
class MissRatioCurve:
    """Hyperbolic miss-ratio curve.

    ``miss_ratio(c) = floor + (1 - floor) / (1 + (c / half_capacity_mb)) ** shape``

    Attributes
    ----------
    half_capacity_mb:
        Capacity at which the reducible miss ratio halves for ``shape=1`` —
        a proxy for the hot working-set size.
    shape:
        Steepness of the curve.  Streaming jobs (no reuse) use small shapes;
        cache-friendly jobs use larger ones.
    floor:
        Compulsory/coherence miss ratio that no amount of cache removes.
    """

    half_capacity_mb: float
    shape: float = 1.0
    floor: float = 0.02

    def __post_init__(self) -> None:
        if self.half_capacity_mb <= 0.0:
            raise ValueError("half_capacity_mb must be positive")
        if self.shape <= 0.0:
            raise ValueError("shape must be positive")
        if not 0.0 <= self.floor < 1.0:
            raise ValueError("floor must be in [0, 1)")

    def miss_ratio(self, cache_mb: float) -> float:
        """Miss ratio when the job receives *cache_mb* of LLC."""
        if cache_mb < 0.0:
            raise ValueError("cache_mb must be non-negative")
        reducible = 1.0 / (1.0 + cache_mb / self.half_capacity_mb) ** self.shape
        return self.floor + (1.0 - self.floor) * reducible

    def marginal_utility(self, cache_mb: float, delta_mb: float = 0.25) -> float:
        """Miss-ratio reduction per MB around *cache_mb* (for partitioning)."""
        if delta_mb <= 0.0:
            raise ValueError("delta_mb must be positive")
        lo = self.miss_ratio(cache_mb)
        hi = self.miss_ratio(cache_mb + delta_mb)
        return (lo - hi) / delta_mb
