"""Performance/interference model substrate.

Replaces the paper's physical testbed: job signatures, hyperbolic
miss-ratio curves, machine hardware descriptions and the fixed-point
contention solver that turns "these containers share this machine" into
per-job MIPS, CPI stacks and resource counters.
"""

from .batch import (
    SOLVER_MODES,
    ScenarioBatch,
    resolve_solver_mode,
    solve_colocation_batch,
    solve_colocation_many,
)
from .contention import (
    ColocationPerformance,
    InstancePerformance,
    RunningInstance,
    inherent_performance,
    solve_colocation,
    solve_colocation_cached,
)
from .calibration import CPIComponents, MRCFit, calibrate_cpi_components, fit_mrc
from .cpistack import CPIStack, TopdownBreakdown
from .latency import DEFAULT_SERVICE_TIME_MS, LatencyEstimate, instance_latency
from .machine import MachinePerf
from .memo import (
    MEMO_MODES,
    SolveMemo,
    resolve_memo,
    solve_key,
    validate_memo_spec,
)
from .mrc import MissRatioCurve
from .signatures import JobSignature, Priority

__all__ = [
    "MissRatioCurve",
    "JobSignature",
    "Priority",
    "MachinePerf",
    "CPIStack",
    "TopdownBreakdown",
    "RunningInstance",
    "InstancePerformance",
    "ColocationPerformance",
    "solve_colocation",
    "solve_colocation_cached",
    "inherent_performance",
    "ScenarioBatch",
    "SOLVER_MODES",
    "resolve_solver_mode",
    "solve_colocation_batch",
    "solve_colocation_many",
    "MEMO_MODES",
    "SolveMemo",
    "resolve_memo",
    "solve_key",
    "validate_memo_spec",
    "LatencyEstimate",
    "instance_latency",
    "DEFAULT_SERVICE_TIME_MS",
    "fit_mrc",
    "MRCFit",
    "calibrate_cpi_components",
    "CPIComponents",
]
