"""Batched structure-of-arrays contention solving.

:func:`repro.perfmodel.contention.solve_colocation` iterates one
scenario at a time with per-instance Python work inside the fixed-point
loop.  Every hot caller — the Profiler, the Replayer, the
full-datacenter baseline — holds *many* scenarios that all want solving
under the same machine, so this module batches them:

* :class:`ScenarioBatch` packs a scenario population into a
  structure-of-arrays layout: a signature table deduplicated by job
  signature (in practice: by job name, since the catalogue maps each
  name to one signature), per-scenario instance index arrays padded
  into dense ``(n_scenarios, max_instances)`` matrices, and a validity
  mask marking real lanes.
* :func:`solve_colocation_batch` runs the same damped fixed point as
  the scalar solver — LLC shares, miss ratios, bandwidth pressure, CPI
  stacks, instruction rates — as whole-matrix numpy ops over every
  scenario simultaneously, with an active-scenario convergence mask so
  converged rows freeze while stragglers iterate.

**Bit-identity contract.**  The batched solver reproduces the scalar
solver's outputs bit for bit, not merely approximately.  That holds
because every arithmetic step mirrors the scalar expression's exact
association order using only elementwise IEEE-754 ops (``+ - * /
minimum``), the single transcendental (the MRC ``pow``) goes through
the shared :func:`repro.perfmodel.mrc.hyperbolic_miss_ratio` helper on
ndarrays in both paths, and per-scenario reductions sum contiguous row
slices of exactly the scenario's lane count (never padded lanes, whose
different lengths could change numpy's pairwise-summation tree).  The
differential suite in ``tests/perfmodel/test_batch_equivalence.py``
enforces the contract on hypothesis-generated populations and golden
fixtures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .contention import (
    _BRANCH_PENALTY_CYCLES,
    _BW_CONGESTION_GAIN,
    _BW_UTIL_CAP,
    _CACHE_LINE_BYTES,
    _DAMPING,
    _L2_BLOCKING,
    _LLC_HIT_BLOCKING,
    _MAX_ITERATIONS,
    _RELATIVE_TOLERANCE,
    _SOLVE_CACHE,
    _SolveCache,
    _core_throughput_factor,
    ColocationPerformance,
    InstancePerformance,
    RunningInstance,
    solve_colocation,
    solve_colocation_cached,
)
from .cpistack import CPIStack
from .machine import MachinePerf
from .mrc import hyperbolic_miss_ratio
from .signatures import JobSignature

__all__ = [
    "ScenarioBatch",
    "SOLVER_MODES",
    "resolve_solver_mode",
    "solve_colocation_batch",
    "solve_colocation_many",
]

SOLVER_MODES = ("scalar", "batched", "auto")

# Indices into ScenarioBatch.sig_params rows.
_P_LLC_APKI = 0
_P_L2_APKI = 1
_P_BRANCH_MPKI = 2
_P_BASE_CPI = 3
_P_FRONTEND_CPI = 4
_P_WRITE_FRACTION = 5
_P_MEM_BLOCKING = 6
_P_MRC_HALF = 7
_P_MRC_SHAPE = 8
_P_MRC_FLOOR = 9
_P_BUSY_BASE = 10
_N_PARAMS = 11


def resolve_solver_mode(solver: str, n_scenarios: int) -> str:
    """Resolve a ``solver`` knob value to ``"scalar"`` or ``"batched"``.

    ``"auto"`` picks the batched path whenever there is more than one
    scenario to solve; a single scenario gains nothing from the batch
    layout, so it stays on the scalar reference path.
    """
    if solver not in SOLVER_MODES:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {SOLVER_MODES}"
        )
    if solver == "auto":
        return "batched" if n_scenarios > 1 else "scalar"
    return solver


@dataclass(eq=False)
class ScenarioBatch:
    """Structure-of-arrays packing of a scenario population.

    Attributes
    ----------
    signatures:
        Deduplicated signature table.  Lanes reference it through
        ``sig_index``; a signature co-located in fifty scenarios is
        stored once.
    sig_params:
        ``(_N_PARAMS, n_signatures)`` float matrix of the solver-facing
        parameters of each table entry (APKIs, CPI components, MRC
        shape, ``vcpus * active_fraction`` busy base, ...).
    sig_index:
        ``(n_scenarios, max_instances)`` int lane -> table index.
        Padded lanes hold 0 (any valid index; they are masked out).
    loads:
        ``(n_scenarios, max_instances)`` per-lane load; 0.0 in padding.
    mask:
        ``(n_scenarios, max_instances)`` bool validity mask.
    counts:
        ``(n_scenarios,)`` instance count per scenario (may be 0).
    """

    signatures: tuple[JobSignature, ...]
    sig_params: np.ndarray
    sig_index: np.ndarray
    loads: np.ndarray
    mask: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_instances(
        cls,
        scenarios: Sequence[Sequence[RunningInstance]],
    ) -> "ScenarioBatch":
        """Pack *scenarios* (each a sequence of instances) into a batch."""
        n_scenarios = len(scenarios)
        counts = np.array(
            [len(instances) for instances in scenarios], dtype=np.intp
        )
        max_instances = int(counts.max()) if n_scenarios else 0

        table: dict[JobSignature, int] = {}
        signatures: list[JobSignature] = []
        sig_index = np.zeros((n_scenarios, max_instances), dtype=np.intp)
        loads = np.zeros((n_scenarios, max_instances))
        mask = np.zeros((n_scenarios, max_instances), dtype=bool)
        for row, instances in enumerate(scenarios):
            for lane, inst in enumerate(instances):
                sig = inst.signature
                idx = table.get(sig)
                if idx is None:
                    idx = table[sig] = len(signatures)
                    signatures.append(sig)
                sig_index[row, lane] = idx
                loads[row, lane] = inst.load
                mask[row, lane] = True

        return cls(
            signatures=tuple(signatures),
            sig_params=_pack_sig_params(signatures),
            sig_index=sig_index,
            loads=loads,
            mask=mask,
            counts=counts,
        )

    @classmethod
    def from_tables(
        cls,
        scenario_table: np.ndarray,
        instance_table: np.ndarray,
        job_names: Sequence[str],
        signatures_by_job: dict[str, JobSignature],
    ) -> "ScenarioBatch":
        """Pack a batch straight from the store's columnar tables.

        *scenario_table* / *instance_table* are (slices of) the arrays
        the shard codec writes (:mod:`repro.store.format`) — typically
        memory-mapped or shared-memory backed, which is the zero-copy
        dispatch path: no :class:`RunningInstance` objects are
        materialised.  ``inst_offset`` values are absolute into
        *instance_table*, so any scenario-row slice pairs with the full
        instance table.

        Bit-identical to decoding the slice and calling
        :meth:`from_instances`: the signature table dedupes by interned
        job index in first-encounter lane order, which matches
        dedupe-by-signature because the catalogue maps each job name to
        exactly one signature (and signature equality includes the
        name); loads are the same float64 values either way.
        """
        counts = scenario_table["inst_count"].astype(np.intp)
        offsets = scenario_table["inst_offset"].astype(np.intp)
        n_scenarios = len(counts)
        max_instances = int(counts.max()) if n_scenarios else 0

        jobs = np.asarray(instance_table["job"])
        load_column = np.asarray(instance_table["load"], dtype=np.float64)
        table: dict[int, int] = {}
        signatures: list[JobSignature] = []
        sig_index = np.zeros((n_scenarios, max_instances), dtype=np.intp)
        loads = np.zeros((n_scenarios, max_instances))
        mask = np.zeros((n_scenarios, max_instances), dtype=bool)
        for row in range(n_scenarios):
            start = int(offsets[row])
            for lane in range(int(counts[row])):
                job = int(jobs[start + lane])
                idx = table.get(job)
                if idx is None:
                    idx = table[job] = len(signatures)
                    signatures.append(signatures_by_job[job_names[job]])
                sig_index[row, lane] = idx
                loads[row, lane] = load_column[start + lane]
                mask[row, lane] = True

        return cls(
            signatures=tuple(signatures),
            sig_params=_pack_sig_params(signatures),
            sig_index=sig_index,
            loads=loads,
            mask=mask,
            counts=counts,
        )

    def __len__(self) -> int:
        return len(self.counts)


def _pack_sig_params(signatures: Sequence[JobSignature]) -> np.ndarray:
    """The ``(_N_PARAMS, n_signatures)`` solver-parameter matrix."""
    sig_params = np.empty((_N_PARAMS, len(signatures)))
    for col, sig in enumerate(signatures):
        sig_params[_P_LLC_APKI, col] = sig.llc_apki
        sig_params[_P_L2_APKI, col] = sig.l2_apki
        sig_params[_P_BRANCH_MPKI, col] = sig.branch_mpki
        sig_params[_P_BASE_CPI, col] = sig.base_cpi
        sig_params[_P_FRONTEND_CPI, col] = sig.frontend_cpi
        sig_params[_P_WRITE_FRACTION, col] = sig.write_fraction
        sig_params[_P_MEM_BLOCKING, col] = sig.mem_blocking_factor
        sig_params[_P_MRC_HALF, col] = sig.mrc.half_capacity_mb
        sig_params[_P_MRC_SHAPE, col] = sig.mrc.shape
        sig_params[_P_MRC_FLOOR, col] = sig.mrc.floor
        # Same association order as RunningInstance.busy_threads:
        # (vcpus * active_fraction) * load, with the first product
        # taken here in plain Python floats.
        sig_params[_P_BUSY_BASE, col] = sig.vcpus * sig.active_fraction
    return sig_params


def _row_sums(matrix: np.ndarray, counts: list[int]) -> np.ndarray:
    """Per-row sums over each row's first ``counts[i]`` lanes.

    Summing the contiguous prefix slice (rather than the whole padded
    row) keeps numpy's pairwise-summation tree identical to the scalar
    solver's fresh ``len == count`` arrays, preserving bit-identity.
    """
    out = np.empty(len(counts))
    for i, count in enumerate(counts):
        out[i] = matrix[i, :count].sum()
    return out


def solve_colocation_batch(
    machine: MachinePerf,
    batch: ScenarioBatch | Sequence[Sequence[RunningInstance]],
) -> list[ColocationPerformance]:
    """Solve every scenario in *batch* on *machine* simultaneously.

    Returns one :class:`ColocationPerformance` per scenario, in batch
    order, bit-identical to calling the scalar
    :func:`~repro.perfmodel.contention.solve_colocation` per scenario.
    """
    if not isinstance(batch, ScenarioBatch):
        batch = ScenarioBatch.from_instances(batch)
    n_total = len(batch)
    results: list[ColocationPerformance | None] = [None] * n_total

    nonempty = np.flatnonzero(batch.counts > 0)
    for row in np.flatnonzero(batch.counts == 0):
        results[row] = ColocationPerformance(
            machine=machine,
            instances=(),
            cpu_utilization=0.0,
            mem_bw_utilization=0.0,
            mem_latency_ns=machine.mem_latency_ns,
            converged=True,
            iterations=0,
        )
    if nonempty.size == 0:
        return results  # type: ignore[return-value]

    counts = batch.counts[nonempty]
    counts_list = counts.tolist()
    sig_index = batch.sig_index[nonempty]
    loads = batch.loads[nonempty]
    lane_mask = batch.mask[nonempty]
    params = batch.sig_params

    # Per-lane parameter matrices, gathered once (constant across the
    # fixed-point iterations).  Padded lanes carry signature 0's
    # parameters with load 0 — every derived quantity there is finite
    # and excluded from the per-scenario reductions below.
    llc_apki = params[_P_LLC_APKI][sig_index]
    l2_apki = params[_P_L2_APKI][sig_index]
    branch_mpki = params[_P_BRANCH_MPKI][sig_index]
    base_cpi = params[_P_BASE_CPI][sig_index]
    frontend_cpi = params[_P_FRONTEND_CPI][sig_index]
    write_fraction = params[_P_WRITE_FRACTION][sig_index]
    mem_blocking = params[_P_MEM_BLOCKING][sig_index]
    mrc_half = params[_P_MRC_HALF][sig_index]
    mrc_shape = params[_P_MRC_SHAPE][sig_index]
    mrc_floor = params[_P_MRC_FLOOR][sig_index]
    busy = params[_P_BUSY_BASE][sig_index] * loads

    # Frequency and core sharing depend only on the (fixed) total busy
    # threads — one exact scalar computation per scenario, reusing the
    # same Python-level helpers as the scalar path.
    total_busy = _row_sums(busy, counts_list)
    freq = np.empty(len(nonempty))
    core_factor = np.empty(len(nonempty))
    for i in range(len(nonempty)):
        busy_i = float(total_busy[i])
        freq[i] = machine.effective_frequency_ghz(busy_i)
        core_factor[i] = _core_throughput_factor(machine, busy_i)
    freq_col = freq[:, None]

    # Mutable fixed-point state.
    rate = np.where(lane_mask, 1e9, 0.0)
    counts_f = counts.astype(float)
    shares = np.where(lane_mask, (machine.llc_mb / counts_f)[:, None], 0.0)
    converged = np.zeros(len(nonempty), dtype=bool)
    iterations = np.full(len(nonempty), _MAX_ITERATIONS, dtype=np.intp)
    active = np.arange(len(nonempty))

    def _stack_totals(sub, miss_ratio, mem_latency_col, freq_sub_col, cf_sub):
        """CPI-stack component matrices for the row subset *sub*.

        Every expression mirrors ``contention._build_stack`` and
        ``CPIStack.total`` association order exactly.
        """
        branch = branch_mpki[sub] / 1000.0 * _BRANCH_PENALTY_CYCLES
        l2_stall = l2_apki[sub] / 1000.0 * _L2_BLOCKING * machine.l2_hit_cycles
        llc_hits_pki = llc_apki[sub] * (1.0 - miss_ratio)
        llc_hit_stall = (
            llc_hits_pki / 1000.0 * _LLC_HIT_BLOCKING * machine.llc_hit_cycles
        )
        dram_stall = (
            llc_apki[sub]
            * miss_ratio
            / 1000.0
            * mem_latency_col
            * freq_sub_col
            * mem_blocking[sub]
        )
        core_side = (
            base_cpi[sub] + frontend_cpi[sub] + branch + l2_stall + llc_hit_stall
        )
        smt_factor = 1.0 / cf_sub - 1.0
        smt_penalty = np.where(
            (cf_sub < 1.0)[:, None], core_side * smt_factor[:, None], 0.0
        )
        total = core_side + dram_stall + smt_penalty
        return branch, l2_stall, llc_hit_stall, dram_stall, smt_penalty, total

    for iteration in range(1, _MAX_ITERATIONS + 1):
        if active.size == 0:
            break
        act_counts = [counts_list[i] for i in active]
        r = rate[active]

        # --- LLC partitioning: proportional to access rate -------------
        access_rate = r * llc_apki[active] / 1000.0
        total_access = _row_sums(access_rate, act_counts)
        has_access = total_access > 0.0
        safe_total = np.where(has_access, total_access, 1.0)
        target_shares = np.where(
            has_access[:, None],
            machine.llc_mb * access_rate / safe_total[:, None],
            (machine.llc_mb / counts_f[active])[:, None],
        )
        sh = _DAMPING * shares[active] + (1.0 - _DAMPING) * target_shares
        shares[active] = sh

        miss_ratio = hyperbolic_miss_ratio(
            sh, mrc_half[active], mrc_shape[active], mrc_floor[active]
        )
        mpki = llc_apki[active] * miss_ratio

        # --- DRAM bandwidth congestion ----------------------------------
        bytes_per_instr = (
            mpki / 1000.0 * _CACHE_LINE_BYTES * (1.0 + write_fraction[active])
        )
        traffic_gbps = r * bytes_per_instr / 1e9
        util = np.minimum(
            _row_sums(traffic_gbps, act_counts) / machine.mem_bw_gbps,
            _BW_UTIL_CAP,
        )
        mem_latency = machine.mem_latency_ns * (
            1.0 + _BW_CONGESTION_GAIN * util * util / (1.0 - util)
        )

        # --- CPI stacks and instruction rates ---------------------------
        *_, total_cpi = _stack_totals(
            active,
            miss_ratio,
            mem_latency[:, None],
            freq_col[active],
            core_factor[active],
        )
        new_rate = busy[active] * freq_col[active] * 1e9 / total_cpi

        # Convergence per row, mirroring np.allclose(new, old, rtol, atol=1)
        # elementwise; padded lanes compare 0 against 0 and never block.
        close = np.abs(new_rate - r) <= 1.0 + _RELATIVE_TOLERANCE * np.abs(r)
        row_converged = close.all(axis=1)

        conv_rows = active[row_converged]
        if conv_rows.size:
            # Scalar break semantics: the converging iteration assigns the
            # *undamped* rate and stops updating that scenario.
            rate[conv_rows] = new_rate[row_converged]
            converged[conv_rows] = True
            iterations[conv_rows] = iteration
        live = ~row_converged
        live_rows = active[live]
        if live_rows.size:
            rate[live_rows] = (
                _DAMPING * r[live] + (1.0 - _DAMPING) * new_rate[live]
            )
        active = live_rows

    # Final consistent pass with the converged rates, over all rows.
    access_rate = rate * llc_apki / 1000.0
    total_access = _row_sums(access_rate, counts_list)
    has_access = total_access > 0.0
    safe_total = np.where(has_access, total_access, 1.0)
    shares = np.where(
        has_access[:, None],
        machine.llc_mb * access_rate / safe_total[:, None],
        shares,
    )
    miss_ratio = hyperbolic_miss_ratio(shares, mrc_half, mrc_shape, mrc_floor)
    mpki = llc_apki * miss_ratio
    bytes_per_instr = (
        mpki / 1000.0 * _CACHE_LINE_BYTES * (1.0 + write_fraction)
    )
    traffic_gbps = rate * bytes_per_instr / 1e9
    raw_util = _row_sums(traffic_gbps, counts_list) / machine.mem_bw_gbps
    util = np.minimum(raw_util, _BW_UTIL_CAP)
    mem_latency = machine.mem_latency_ns * (
        1.0 + _BW_CONGESTION_GAIN * util * util / (1.0 - util)
    )
    branch, l2_stall, llc_hit_stall, dram_stall, smt_penalty, total_cpi = (
        _stack_totals(
            slice(None), miss_ratio, mem_latency[:, None], freq_col, core_factor
        )
    )
    final_rate = busy * freq_col * 1e9 / total_cpi

    for i, row in enumerate(nonempty):
        perf: list[InstancePerformance] = []
        for lane in range(counts_list[i]):
            sig = batch.signatures[sig_index[i, lane]]
            stack = CPIStack(
                base=sig.base_cpi,
                frontend=sig.frontend_cpi,
                branch=float(branch[i, lane]),
                l2=float(l2_stall[i, lane]),
                llc_hit=float(llc_hit_stall[i, lane]),
                dram=float(dram_stall[i, lane]),
                smt=float(smt_penalty[i, lane]),
            )
            lane_rate = final_rate[i, lane]
            perf.append(
                InstancePerformance(
                    job_name=sig.name,
                    priority=sig.priority,
                    mips=float(lane_rate / 1e6),
                    ipc=float(1.0 / total_cpi[i, lane]),
                    cpi_stack=stack,
                    busy_threads=float(busy[i, lane]),
                    cache_share_mb=float(shares[i, lane]),
                    llc_miss_ratio=float(miss_ratio[i, lane]),
                    llc_mpki=float(mpki[i, lane]),
                    dram_gbps=float(lane_rate * bytes_per_instr[i, lane] / 1e9),
                    network_gbps=float(
                        lane_rate * sig.network_bytes_per_instr * 8.0 / 1e9
                    ),
                    disk_mbps=float(lane_rate * sig.disk_bytes_per_instr / 1e6),
                    frequency_ghz=float(freq[i]),
                )
            )
        results[row] = ColocationPerformance(
            machine=machine,
            instances=tuple(perf),
            cpu_utilization=min(
                float(total_busy[i]) / machine.hardware_threads, 1.0
            ),
            mem_bw_utilization=float(raw_util[i]),
            mem_latency_ns=float(mem_latency[i]),
            converged=bool(converged[i]),
            iterations=int(iterations[i]),
        )
    return results  # type: ignore[return-value]


def solve_colocation_many(
    machine: MachinePerf,
    scenarios: Sequence[Sequence[RunningInstance]],
    *,
    solver: str = "auto",
    cached: bool = False,
    memo=None,
) -> list[ColocationPerformance]:
    """Solve many scenarios through the selected solver path.

    With ``cached=True`` the shared solve memo is consulted per
    scenario: hits are returned directly, misses are solved as one
    batch (deduplicated within the batch) and written back, so mixing
    batched and scalar callers keeps a single coherent cache.

    ``memo`` accepts a :class:`~repro.perfmodel.memo.SolveMemo`, a memo
    spec string (``"memory"``/``"store:<path>"``), or ``None``/``"off"``.
    When active it supersedes ``cached=``: lookups go through the
    content-addressed two-tier memo (so hits survive across processes
    and runs), misses are solved through the selected solver path —
    bit-identical either way — and recorded back into both tiers.
    """
    mode = resolve_solver_mode(solver, len(scenarios))
    if memo is not None:
        from .memo import resolve_memo

        live = resolve_memo(memo)
        if live is not None:
            return _solve_many_memoised(machine, scenarios, mode, live)
    if mode == "scalar":
        if cached:
            return [
                solve_colocation_cached(machine, tuple(instances))
                for instances in scenarios
            ]
        return [solve_colocation(machine, instances) for instances in scenarios]

    if not cached:
        return solve_colocation_batch(machine, scenarios)

    results: list[ColocationPerformance | None] = [None] * len(scenarios)
    pending: dict[tuple, list[int]] = {}
    miss_scenarios: list[tuple[RunningInstance, ...]] = []
    for i, instances in enumerate(scenarios):
        key = _SolveCache.make_key(machine, tuple(instances))
        hit = _SOLVE_CACHE.lookup(key)
        if hit is not None:
            results[i] = hit
            continue
        rows = pending.get(key)
        if rows is None:
            pending[key] = [i]
            miss_scenarios.append(tuple(instances))
        else:
            rows.append(i)
    if miss_scenarios:
        solved = solve_colocation_batch(machine, miss_scenarios)
        for (key, rows), solution in zip(pending.items(), solved):
            _SOLVE_CACHE.store(key, solution)
            for row in rows:
                results[row] = solution
    return results  # type: ignore[return-value]


def _solve_many_memoised(
    machine: MachinePerf,
    scenarios: Sequence[Sequence[RunningInstance]],
    mode: str,
    memo,
) -> list[ColocationPerformance]:
    """Memo-first solve: hits from the memo, misses via ``mode``'s path.

    Mirrors the ``cached=True`` pending-dict shape, but keyed on the
    content digest so hits carry across batches, processes, and runs.
    Misses solved here are recorded and flushed at the end of the call
    — one segment append per batch, which keeps concurrent writers to
    coarse atomic appends rather than per-solve churn.
    """
    results: list[ColocationPerformance | None] = [None] * len(scenarios)
    pending: dict[str, list[int]] = {}
    miss_scenarios: list[tuple[RunningInstance, ...]] = []
    for i, raw in enumerate(scenarios):
        instances = tuple(raw)
        key = memo.key_for(machine, instances)
        hit = memo.lookup(key, machine, instances)
        if hit is not None:
            results[i] = hit
            continue
        rows = pending.get(key)
        if rows is None:
            pending[key] = [i]
            miss_scenarios.append(instances)
        else:
            rows.append(i)
    if miss_scenarios:
        if mode == "scalar":
            solved = [
                solve_colocation(machine, instances)
                for instances in miss_scenarios
            ]
        else:
            solved = solve_colocation_batch(machine, miss_scenarios)
        for (key, rows), solution in zip(pending.items(), solved):
            memo.record(key, solution)
            for row in rows:
                results[row] = solution
        memo.flush()
    return results  # type: ignore[return-value]
