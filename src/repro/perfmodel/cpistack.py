"""CPI-stack decomposition and its mapping onto topdown categories.

The contention solver produces, for every job instance, a breakdown of
cycles-per-instruction into additive components.  The Profiler then derives
Intel-topdown-style high-level counters (retiring / frontend-bound /
bad-speculation / backend-bound, with backend split into core- and
memory-bound) from the same stack, exactly the counter families the paper
collects (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPIStack", "TopdownBreakdown"]


@dataclass(frozen=True)
class CPIStack:
    """Additive cycles-per-instruction components for one instance.

    Attributes
    ----------
    base:
        Issue/dependency-limited cycles (useful work).
    frontend:
        Fetch/decode starvation cycles.
    branch:
        Misprediction recovery cycles.
    l2 / llc_hit:
        Stalls on L2 and LLC hits.
    dram:
        Stalls on LLC misses serviced by (possibly congested) DRAM.
    smt:
        Cycles lost to sharing a physical core with a co-resident thread.
    """

    base: float
    frontend: float
    branch: float
    l2: float
    llc_hit: float
    dram: float
    smt: float = 0.0

    def __post_init__(self) -> None:
        for name in ("base", "frontend", "branch", "l2", "llc_hit", "dram", "smt"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"CPI component {name} must be non-negative")
        if self.base <= 0.0:
            raise ValueError("base CPI must be positive")

    @property
    def total(self) -> float:
        """Total cycles per instruction."""
        return (
            self.base
            + self.frontend
            + self.branch
            + self.l2
            + self.llc_hit
            + self.dram
            + self.smt
        )

    @property
    def memory(self) -> float:
        """Memory-subsystem stall cycles (L2 + LLC + DRAM)."""
        return self.l2 + self.llc_hit + self.dram

    def topdown(self) -> "TopdownBreakdown":
        """Map the stack onto topdown slot fractions (sums to 1)."""
        total = self.total
        return TopdownBreakdown(
            retiring=self.base / total,
            frontend_bound=self.frontend / total,
            bad_speculation=self.branch / total,
            backend_bound=(self.memory + self.smt) / total,
            memory_bound=self.memory / total,
            core_bound=self.smt / total,
        )


@dataclass(frozen=True)
class TopdownBreakdown:
    """Topdown level-1 (+ the backend level-2 split) slot fractions."""

    retiring: float
    frontend_bound: float
    bad_speculation: float
    backend_bound: float
    memory_bound: float
    core_bound: float

    def __post_init__(self) -> None:
        level1 = (
            self.retiring
            + self.frontend_bound
            + self.bad_speculation
            + self.backend_bound
        )
        if abs(level1 - 1.0) > 1e-6:
            raise ValueError(f"level-1 topdown slots must sum to 1, got {level1}")
        split = self.memory_bound + self.core_bound
        if abs(split - self.backend_bound) > 1e-6:
            raise ValueError("memory_bound + core_bound must equal backend_bound")
