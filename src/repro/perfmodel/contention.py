"""Fixed-point shared-resource contention solver.

Given a machine and the set of job instances co-located on it, this module
computes every instance's steady-state performance under contention for:

* **LLC capacity** — proportional-to-access-rate partitioning, with each
  job's miss ratio read off its hyperbolic miss-ratio curve (Feature 1 acts
  here by shrinking the capacity being shared);
* **DRAM bandwidth** — total miss traffic inflates memory latency through a
  queueing-style congestion term;
* **Physical cores / SMT** — busy hardware threads beyond the physical core
  count share core throughput at ``smt_speedup`` (SMT on) or strict
  time-slicing (SMT off — Feature 3);
* **DVFS frequency** — core-side CPI components are in cycles while memory
  stalls are in nanoseconds, so frequency changes (Feature 2) shift the
  balance exactly as leading-loads DVFS models predict.

The solver iterates cache shares → miss rates → bandwidth congestion →
CPI → instruction rates to a damped fixed point.  Everything downstream of
the simulator (Profiler counters, FLARE clustering, replay) consumes only
its outputs.
"""

from __future__ import annotations

import dataclasses
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from .cpistack import CPIStack
from .machine import MachinePerf
from .mrc import hyperbolic_miss_ratio
from .signatures import JobSignature, Priority

__all__ = [
    "RunningInstance",
    "InstancePerformance",
    "ColocationPerformance",
    "solve_colocation",
    "solve_colocation_cached",
    "inherent_performance",
]

_BRANCH_PENALTY_CYCLES = 15.0
_L2_BLOCKING = 0.30
_LLC_HIT_BLOCKING = 0.40
_CACHE_LINE_BYTES = 64.0
_BW_CONGESTION_GAIN = 1.6
_BW_UTIL_CAP = 0.95
_MAX_ITERATIONS = 60
_RELATIVE_TOLERANCE = 1e-7
_DAMPING = 0.35


@dataclass(frozen=True)
class RunningInstance:
    """One container scheduled on the machine.

    Attributes
    ----------
    signature:
        The job's resource signature.
    load:
        User-demand level in ``(0, 1]`` fixed at submission time; scales
        thread busy-time (and therefore all throughput-derived traffic).
    """

    signature: JobSignature
    load: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.load <= 1.0:
            raise ValueError("load must be in (0, 1]")

    @property
    def busy_threads(self) -> float:
        """Hardware threads this instance keeps busy on average."""
        return self.signature.vcpus * self.signature.active_fraction * self.load


@dataclass(frozen=True)
class InstancePerformance:
    """Steady-state performance of one instance under co-location."""

    job_name: str
    priority: Priority
    mips: float
    ipc: float
    cpi_stack: CPIStack
    busy_threads: float
    cache_share_mb: float
    llc_miss_ratio: float
    llc_mpki: float
    dram_gbps: float
    network_gbps: float
    disk_mbps: float
    frequency_ghz: float

    @property
    def is_high_priority(self) -> bool:
        return self.priority is Priority.HIGH


@dataclass(frozen=True)
class ColocationPerformance:
    """Machine-wide solution for one co-location scenario."""

    machine: MachinePerf
    instances: tuple[InstancePerformance, ...]
    cpu_utilization: float
    mem_bw_utilization: float
    mem_latency_ns: float
    converged: bool
    iterations: int

    @property
    def total_mips(self) -> float:
        return sum(inst.mips for inst in self.instances)

    @property
    def hp_mips(self) -> float:
        return sum(i.mips for i in self.instances if i.is_high_priority)

    def per_job_mips(self) -> dict[str, float]:
        """Total MIPS by job name (summing multiple instances)."""
        totals: dict[str, float] = {}
        for inst in self.instances:
            totals[inst.job_name] = totals.get(inst.job_name, 0.0) + inst.mips
        return totals


def solve_colocation(
    machine: MachinePerf,
    instances: list[RunningInstance] | tuple[RunningInstance, ...],
) -> ColocationPerformance:
    """Solve the contention fixed point for *instances* on *machine*."""
    if not instances:
        return ColocationPerformance(
            machine=machine,
            instances=(),
            cpu_utilization=0.0,
            mem_bw_utilization=0.0,
            mem_latency_ns=machine.mem_latency_ns,
            converged=True,
            iterations=0,
        )

    n = len(instances)
    busy = np.array([inst.busy_threads for inst in instances])
    total_busy = float(busy.sum())
    freq = machine.effective_frequency_ghz(total_busy)
    core_factor = _core_throughput_factor(machine, total_busy)

    sigs = [inst.signature for inst in instances]
    llc_apki = np.array([s.llc_apki for s in sigs])
    write_fraction = np.array([s.write_fraction for s in sigs])
    # MRC parameters as arrays so the miss ratio is evaluated through the
    # shared vectorised helper — the batched solver evaluates the exact
    # same expression on the exact same dtype, keeping the paths
    # bit-identical (numpy array ``**`` != Python scalar ``**``).
    mrc_half = np.array([s.mrc.half_capacity_mb for s in sigs])
    mrc_shape = np.array([s.mrc.shape for s in sigs])
    mrc_floor = np.array([s.mrc.floor for s in sigs])

    # Initial guess: equal cache shares, unloaded memory latency.
    inst_rate = np.full(n, 1e9)
    mem_latency = machine.mem_latency_ns
    shares = np.full(n, machine.llc_mb / n)
    converged = False
    iterations = 0

    for iterations in range(1, _MAX_ITERATIONS + 1):
        # --- LLC partitioning: proportional to access rate -------------
        access_rate = inst_rate * llc_apki / 1000.0
        total_access = access_rate.sum()
        if total_access > 0.0:
            target_shares = machine.llc_mb * access_rate / total_access
        else:
            target_shares = np.full(n, machine.llc_mb / n)
        shares = _DAMPING * shares + (1.0 - _DAMPING) * target_shares

        miss_ratio = hyperbolic_miss_ratio(shares, mrc_half, mrc_shape, mrc_floor)
        mpki = llc_apki * miss_ratio

        # --- DRAM bandwidth congestion ----------------------------------
        bytes_per_instr = (
            mpki / 1000.0 * _CACHE_LINE_BYTES * (1.0 + write_fraction)
        )
        traffic_gbps = inst_rate * bytes_per_instr / 1e9
        util = min(float(traffic_gbps.sum()) / machine.mem_bw_gbps, _BW_UTIL_CAP)
        mem_latency = machine.mem_latency_ns * (
            1.0 + _BW_CONGESTION_GAIN * util * util / (1.0 - util)
        )

        # --- CPI stacks and instruction rates ---------------------------
        new_rate = np.empty(n)
        for i, sig in enumerate(sigs):
            stack = _build_stack(
                machine, sig, freq, miss_ratio[i], mem_latency, core_factor
            )
            new_rate[i] = busy[i] * freq * 1e9 / stack.total

        if np.allclose(new_rate, inst_rate, rtol=_RELATIVE_TOLERANCE, atol=1.0):
            inst_rate = new_rate
            converged = True
            break
        inst_rate = _DAMPING * inst_rate + (1.0 - _DAMPING) * new_rate

    # Final consistent pass with the converged rates.
    access_rate = inst_rate * llc_apki / 1000.0
    total_access = access_rate.sum()
    if total_access > 0.0:
        shares = machine.llc_mb * access_rate / total_access
    miss_ratio = hyperbolic_miss_ratio(shares, mrc_half, mrc_shape, mrc_floor)
    mpki = llc_apki * miss_ratio
    bytes_per_instr = (
        mpki / 1000.0 * _CACHE_LINE_BYTES * (1.0 + write_fraction)
    )
    traffic_gbps = inst_rate * bytes_per_instr / 1e9
    raw_util = float(traffic_gbps.sum()) / machine.mem_bw_gbps
    util = min(raw_util, _BW_UTIL_CAP)
    mem_latency = machine.mem_latency_ns * (
        1.0 + _BW_CONGESTION_GAIN * util * util / (1.0 - util)
    )

    results = []
    for i, (inst, sig) in enumerate(zip(instances, sigs)):
        stack = _build_stack(
            machine, sig, freq, miss_ratio[i], mem_latency, core_factor
        )
        rate = busy[i] * freq * 1e9 / stack.total
        results.append(
            InstancePerformance(
                job_name=sig.name,
                priority=sig.priority,
                mips=rate / 1e6,
                ipc=1.0 / stack.total,
                cpi_stack=stack,
                busy_threads=float(busy[i]),
                cache_share_mb=float(shares[i]),
                llc_miss_ratio=float(miss_ratio[i]),
                llc_mpki=float(mpki[i]),
                dram_gbps=float(rate * bytes_per_instr[i] / 1e9),
                network_gbps=float(rate * sig.network_bytes_per_instr * 8.0 / 1e9),
                disk_mbps=float(rate * sig.disk_bytes_per_instr / 1e6),
                frequency_ghz=freq,
            )
        )

    return ColocationPerformance(
        machine=machine,
        instances=tuple(results),
        cpu_utilization=min(total_busy / machine.hardware_threads, 1.0),
        mem_bw_utilization=raw_util,
        mem_latency_ns=mem_latency,
        converged=converged,
        iterations=iterations,
    )


class _CacheInfo(NamedTuple):
    """``functools.lru_cache``-compatible statistics tuple."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


def canonical_float_token(value: float) -> str:
    """Exact, canonical text form of a float for cache/memo keys.

    ``float.hex()`` round-trips every finite double exactly and keeps
    ``-0.0`` distinct from ``0.0`` (``-0x0.0p+0`` vs ``0x0.0p+0``) —
    they are different machine configurations, since expressions like
    ``1/x`` diverge at the sign of zero, yet ``-0.0 == 0.0`` under the
    tuple equality a naive key relies on.  Conversely, all NaN payloads
    collapse onto one ``"nan"`` token: ``nan != nan``, so a raw NaN in
    a key would never match anything, not even itself.
    """
    if math.isnan(value):
        return "nan"
    return float(value).hex()


def _canonical_machine_value(value):
    """Canonical key token for one MachinePerf field value."""
    if isinstance(value, float):
        return ("f", canonical_float_token(value))
    return value


class _SolveCache:
    """Explicit LRU memo for ``(machine, instances) -> ColocationPerformance``.

    The key expands *every* field of the machine config by name —
    ``max_freq_ghz`` (DVFS), ``smt_enabled`` (SMT), ``llc_mb`` (cache
    sizing), governor, bandwidth, latencies — so replayed feature
    variants that share a scenario can never alias onto a stale solve:
    two machines are the same cache entry only if every configuration
    field is equal.  Relying on the dataclass's derived ``__hash__``
    alone would couple cache correctness to ``MachinePerf``'s equality
    semantics; the explicit field expansion keeps the key honest even
    if those are customised later.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, ColocationPerformance] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def make_key(
        machine: MachinePerf, instances: tuple[RunningInstance, ...]
    ) -> tuple:
        machine_key = tuple(
            (field.name, _canonical_machine_value(getattr(machine, field.name)))
            for field in dataclasses.fields(machine)
        )
        return (machine_key, instances)

    def lookup(self, key: tuple) -> ColocationPerformance | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: tuple, value: ColocationPerformance) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> _CacheInfo:
        return _CacheInfo(self.hits, self.misses, self.maxsize, len(self._entries))


_SOLVE_CACHE = _SolveCache(maxsize=65536)


def solve_colocation_cached(
    machine: MachinePerf,
    instances: tuple[RunningInstance, ...],
) -> ColocationPerformance:
    """Memoised :func:`solve_colocation` for repeated scenario evaluation.

    FLARE, the baselines and the Profiler all solve the same (machine,
    scenario) pairs; every argument is a frozen dataclass, so caching on
    identity-by-value is safe.  Pass instances as a tuple.  The memo is
    a :class:`_SolveCache` keyed on the full machine configuration so
    feature variants (DVFS frequency, SMT flag, cache size, ...) of the
    same scenario always occupy distinct entries.
    """
    key = _SolveCache.make_key(machine, instances)
    cached = _SOLVE_CACHE.lookup(key)
    if cached is None:
        cached = solve_colocation(machine, instances)
        _SOLVE_CACHE.store(key, cached)
    return cached


# functools.lru_cache-compatible management surface.
solve_colocation_cached.cache_clear = _SOLVE_CACHE.clear  # type: ignore[attr-defined]
solve_colocation_cached.cache_info = _SOLVE_CACHE.info  # type: ignore[attr-defined]


def inherent_performance(
    machine: MachinePerf, signature: JobSignature
) -> InstancePerformance:
    """Performance of one instance running *alone* on an empty machine.

    The paper normalises each job's in-datacenter MIPS by this "inherent
    MIPS" so jobs with naturally high instruction rates do not dominate the
    summary metric (§5.1).
    """
    solution = solve_colocation(machine, [RunningInstance(signature, load=1.0)])
    return solution.instances[0]


def _core_throughput_factor(machine: MachinePerf, total_busy: float) -> float:
    """Per-thread throughput factor from core sharing.

    With ``t`` average busy threads per core (t ∈ [0, 2]), aggregate core
    throughput ramps linearly from 1.0 at t=1 to ``smt_speedup`` at t=2
    (or stays at 1.0 without SMT).  Each thread receives ``agg(t)/t``.
    """
    cores = machine.physical_cores
    if total_busy <= cores or total_busy <= 0.0:
        return 1.0
    threads_per_core = min(total_busy / cores, 2.0)
    aggregate_speedup = machine.smt_speedup if machine.smt_enabled else 1.0
    aggregate = 1.0 + (aggregate_speedup - 1.0) * (threads_per_core - 1.0)
    return aggregate / threads_per_core


def _build_stack(
    machine: MachinePerf,
    sig: JobSignature,
    freq_ghz: float,
    llc_miss_ratio: float,
    mem_latency_ns: float,
    core_factor: float,
) -> CPIStack:
    """Assemble the CPI stack for one instance at the current state."""
    branch = sig.branch_mpki / 1000.0 * _BRANCH_PENALTY_CYCLES
    l2_stall = sig.l2_apki / 1000.0 * _L2_BLOCKING * machine.l2_hit_cycles
    llc_hits_pki = sig.llc_apki * (1.0 - llc_miss_ratio)
    llc_hit_stall = (
        llc_hits_pki / 1000.0 * _LLC_HIT_BLOCKING * machine.llc_hit_cycles
    )
    dram_stall = (
        sig.llc_apki
        * llc_miss_ratio
        / 1000.0
        * mem_latency_ns
        * freq_ghz
        * sig.mem_blocking_factor
    )
    # Core sharing penalises cycles that need the pipeline (issue slots,
    # fetch bandwidth, on-core caches).  DRAM stall cycles overlap with the
    # co-resident thread, so memory-bound jobs are naturally SMT-friendly.
    core_side_cpi = (
        sig.base_cpi + sig.frontend_cpi + branch + l2_stall + llc_hit_stall
    )
    smt_penalty = (
        core_side_cpi * (1.0 / core_factor - 1.0) if core_factor < 1.0 else 0.0
    )
    return CPIStack(
        base=sig.base_cpi,
        frontend=sig.frontend_cpi,
        branch=branch,
        l2=l2_stall,
        llc_hit=llc_hit_stall,
        dram=dram_stall,
        smt=smt_penalty,
    )
