"""Shared deprecation shims: one warning format for every legacy spelling.

Each public API rename in this package goes through the same lifecycle:
the old spelling keeps working for a few releases while emitting a
``DeprecationWarning`` that names the replacement and the planned
removal version, then disappears.  Before this module the shim logic was
copy-pasted per call site, which let the warning texts drift; these
helpers are now the single source of that format.

Two shapes cover every shim in the codebase:

* :func:`resolve_renamed_kwarg` — a keyword was renamed
  (``dataset=`` → ``source=``, ``executor=`` → ``runtime=``);
* :func:`resolve_positional_kwarg` — a parameter became keyword-only
  (``percentile_interval(values, 0.9)`` → ``confidence=0.9``).
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = [
    "DEPRECATION_REMOVAL_VERSION",
    "warn_deprecated",
    "resolve_renamed_kwarg",
    "resolve_positional_kwarg",
]

#: The release in which every shim routed through this module is
#: scheduled to be removed; mentioned in each warning so callers can
#: plan migrations.
DEPRECATION_REMOVAL_VERSION = "2.0"

_SENTINEL = object()


def warn_deprecated(message: str, *, stacklevel: int = 2) -> None:
    """Emit one uniformly-formatted :class:`DeprecationWarning`.

    *message* states what is deprecated and what replaces it; the
    planned removal version is appended here so no call site forgets it.
    """
    warnings.warn(
        f"{message} (will be removed in "
        f"{DEPRECATION_REMOVAL_VERSION})",
        DeprecationWarning,
        stacklevel=stacklevel + 1,
    )


def resolve_renamed_kwarg(
    new_value: Any,
    old_value: Any,
    *,
    owner: str,
    old_name: str,
    new_name: str,
    required: bool = True,
    stacklevel: int = 2,
) -> Any:
    """Support a renamed keyword argument during its deprecation window.

    The *new_name* spelling is canonical; passing the legacy *old_name*
    keyword still works but warns.  Passing both is an error, as is
    passing neither when *required*.  ``None`` means "not passed" for
    both spellings — the pattern every shimmed signature here uses.
    """
    if old_value is not None:
        if new_value is not None:
            raise TypeError(
                f"{owner} got both {new_name!r} and legacy "
                f"{old_name!r} arguments"
            )
        warn_deprecated(
            f"the {old_name!r} keyword of {owner} is deprecated; "
            f"use {new_name!r}",
            stacklevel=stacklevel + 1,
        )
        return old_value
    if new_value is None and required:
        raise TypeError(
            f"{owner} missing required argument: {new_name!r}"
        )
    return new_value


def resolve_positional_kwarg(
    args: tuple,
    default: Any,
    *,
    owner: str,
    name: str,
    max_positional: int = 1,
    stacklevel: int = 2,
) -> Any:
    """Support a parameter that became keyword-only.

    *args* is the function's ``*args`` overflow tuple; one trailing
    positional is accepted (with a warning) as the legacy spelling of
    the now keyword-only *name*, more than one is a ``TypeError``
    matching the pre-shim signature.
    """
    if not args:
        return default
    if len(args) > 1:
        raise TypeError(
            f"{owner}() takes {max_positional} positional argument"
            f"{'s' if max_positional != 1 else ''} "
            f"({max_positional + len(args)} given)"
        )
    warn_deprecated(
        f"passing {name} positionally to {owner}() is deprecated; "
        f"use {name}=...",
        stacklevel=stacklevel + 1,
    )
    return args[0]
