"""Deterministic parallel execution runtime.

The scaffolding every fan-out loop in the reproduction dispatches
through:

* :mod:`repro.runtime.executor` — the :class:`Executor` protocol with
  serial and process-pool implementations, selectable per call or via
  the ``REPRO_EXECUTOR`` environment variable;
* :mod:`repro.runtime.seeding` — per-task seed derivation via
  ``numpy.random.SeedSequence.spawn`` so parallel results are
  bit-identical to serial ones;
* :mod:`repro.runtime.resilience` — the failure model executors
  enforce: timeouts, bounded seeded-backoff retries, pool recovery and
  :class:`FailurePolicy`-driven degradation to typed
  :class:`TaskFailure` results;
* :mod:`repro.runtime.faultinject` — seeded, executor-independent fault
  injection (crash/hang/slow/flaky-exception) for reproducible chaos
  testing of those paths;
* :mod:`repro.runtime.cache` — digest-keyed in-memory/on-disk caching
  of profiled datasets and fitted models plus the
  :class:`CheckpointJournal` behind CLI ``--resume`` (imported lazily;
  it pulls in the whole pipeline).

Per-dispatch wall-clock and task counts are surfaced through
:data:`repro.telemetry.RUNTIME_STATS`.

:mod:`repro.runtime.config` unifies the execution knobs into
:class:`RuntimeConfig` — one value carrying executor choice, dispatch
mode, chunking, resilience and checkpointing — and
:mod:`repro.runtime.dispatch` provides the zero-copy scenario
transports behind its ``dispatch`` field (:class:`ShardRef` descriptors
into sharded stores, shared-memory tables for in-memory datasets).
"""

from .config import (
    DISPATCH_MODES,
    ResolvedRuntime,
    RuntimeConfig,
    cost_aware_block,
    record_stage_cost,
    resolve_runtime,
)
from .dispatch import (
    DispatchError,
    ShardRef,
    active_shared_segments,
    choose_dispatch,
)
from .executor import (
    EXECUTOR_ENV_VAR,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    available_workers,
    resolve_executor,
)
from .faultinject import (
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
)
from .resilience import (
    ExecutorBrokenError,
    FailurePolicy,
    ResilienceConfig,
    RetryPolicy,
    TaskFailure,
    TaskRetryError,
    TaskTimeoutError,
    partition_failures,
)
from .seeding import (
    root_seed_sequence,
    spawn_generators,
    spawn_seed_sequences,
)

__all__ = [
    "RuntimeConfig",
    "ResolvedRuntime",
    "resolve_runtime",
    "DISPATCH_MODES",
    "DispatchError",
    "ShardRef",
    "choose_dispatch",
    "active_shared_segments",
    "cost_aware_block",
    "record_stage_cost",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "available_workers",
    "EXECUTOR_ENV_VAR",
    "root_seed_sequence",
    "spawn_seed_sequences",
    "spawn_generators",
    "FailurePolicy",
    "RetryPolicy",
    "ResilienceConfig",
    "TaskFailure",
    "TaskRetryError",
    "TaskTimeoutError",
    "ExecutorBrokenError",
    "partition_failures",
    "FaultSpec",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
    # lazily re-exported from .cache (heavy import chain)
    "RuntimeCache",
    "CheckpointJournal",
    "default_cache",
    "dataset_digest",
    "config_digest",
    "CACHE_DIR_ENV_VAR",
]

_CACHE_EXPORTS = {
    "RuntimeCache",
    "CheckpointJournal",
    "default_cache",
    "dataset_digest",
    "config_digest",
    "CACHE_DIR_ENV_VAR",
}


def __getattr__(name: str):
    if name in _CACHE_EXPORTS:
        from . import cache

        return getattr(cache, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
