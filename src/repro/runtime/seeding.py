"""Deterministic per-task seed derivation for parallel execution.

Parallel fan-out must not change results: a trial's random stream has to
depend only on (root seed, trial index), never on which worker ran it or
how tasks were chunked.  ``numpy.random.SeedSequence.spawn`` provides
exactly this — children are statistically independent and reproducible —
so every fan-out loop in the repository derives one child sequence per
task from a single root and builds a fresh ``Generator`` from it.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "root_seed_sequence",
    "spawn_seed_sequences",
    "spawn_generators",
]


def root_seed_sequence(seed) -> np.random.SeedSequence:
    """Normalise *seed* into a root :class:`numpy.random.SeedSequence`.

    Accepts ``None`` (fresh OS entropy), an integer, an existing
    ``SeedSequence`` (returned unchanged), or a ``Generator`` — for the
    latter one draw is taken from the stream so that callers sharing a
    generator still obtain reproducible, independent roots.
    """
    if seed is None:
        return np.random.SeedSequence()
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63)))
    return np.random.SeedSequence(int(seed))


def spawn_seed_sequences(seed, n: int) -> tuple[np.random.SeedSequence, ...]:
    """Spawn *n* independent child sequences from *seed*.

    Child *i* depends only on the root entropy and its spawn position, so
    task *i* sees the same stream under any executor and any chunking.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return tuple(root_seed_sequence(seed).spawn(n))


def spawn_generators(seed, n: int) -> tuple[np.random.Generator, ...]:
    """Spawn *n* independent generators from *seed* (one per task)."""
    return tuple(
        np.random.default_rng(seq) for seq in spawn_seed_sequences(seed, n)
    )
