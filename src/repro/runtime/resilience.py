"""Fault-tolerant execution policies for the runtime layer.

A replay campaign that dies at scenario 800/895 because one worker
segfaulted or hung wastes exactly the evaluation cost FLARE exists to
save.  This module defines the failure model every executor enforces:

* **timeouts** — a per-task wall-clock budget; the process backend
  enforces it preemptively (hung workers are killed and the pool
  respawned), the serial backend cooperatively (injected hangs raise,
  but genuinely stuck user code cannot be preempted in-process);
* **bounded retries** — failed chunks are re-executed up to
  ``max_retries`` times with seeded exponential backoff + jitter, so
  even the waiting pattern is reproducible;
* **graceful degradation** — a :class:`FailurePolicy` decides what an
  exhausted chunk does: poison the batch (``fail_fast``), raise a typed
  :class:`TaskRetryError` (``retry_then_raise``), or degrade each lost
  task into a typed :class:`TaskFailure` result holding its position in
  the batch (``retry_then_skip``) so downstream consumers can filter
  and renormalise instead of losing the whole run.

Retries re-execute pure tasks whose randomness comes only from their
own items (the :mod:`repro.runtime.seeding` contract), so a retried
chunk reproduces its original results bit-for-bit — which is how the
chaos suite can require serial ≡ process identity *under injected
faults*, not just on the happy path.

Observability: every failure event lands in :mod:`repro.obs` —
``task_retries_total`` / ``task_timeouts_total`` / ``tasks_skipped_total``
/ ``pool_respawns_total`` counters and a zero-duration
``failure:<stage>`` span per event when tracing is enabled.
"""

from __future__ import annotations

import enum
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from .faultinject import FaultSpec

__all__ = [
    "FailurePolicy",
    "RetryPolicy",
    "ResilienceConfig",
    "TaskFailure",
    "TaskRetryError",
    "TaskTimeoutError",
    "ExecutorBrokenError",
    "partition_failures",
]


class FailurePolicy(str, enum.Enum):
    """What an executor does with a chunk that keeps failing."""

    FAIL_FAST = "fail_fast"
    RETRY_THEN_SKIP = "retry_then_skip"
    RETRY_THEN_RAISE = "retry_then_raise"

    @classmethod
    def parse(cls, value: "FailurePolicy | str") -> "FailurePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown failure policy {value!r}; expected one of "
                f"{[p.value for p in cls]}"
            ) from None


class TaskRetryError(RuntimeError):
    """A chunk exhausted its retries under ``retry_then_raise``."""


class TaskTimeoutError(TimeoutError):
    """A chunk exceeded its wall-clock budget."""


class ExecutorBrokenError(RuntimeError):
    """The process pool kept dying faster than it could be respawned."""


@dataclass(frozen=True)
class TaskFailure:
    """Typed stand-in result for a task skipped under ``retry_then_skip``.

    Skipped chunks yield one ``TaskFailure`` per task *in the task's
    position*, so result lists keep their length and ordering and
    downstream ``zip``-style consumers stay aligned.  Use
    :func:`partition_failures` to separate them from real results.
    """

    stage: str
    error: str
    attempts: int


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with seeded exponential backoff + jitter.

    The backoff delay before retry *n* of chunk *c* in stage *s* is
    ``min(base * factor**n, max) * (1 + jitter * u)`` where ``u`` is a
    uniform variate spawned from ``SeedSequence([seed, crc(s), c, n])``
    — deterministic across runs and backends, like everything else in
    the runtime.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    backoff_jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0.0 or self.backoff_max_s < 0.0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_jitter < 0.0:
            raise ValueError("backoff_jitter must be non-negative")

    def delay_s(self, stage: str, chunk_index: int, attempt: int) -> float:
        """Deterministic backoff delay before retrying *attempt*."""
        delay = min(
            self.backoff_base_s * self.backoff_factor**attempt,
            self.backoff_max_s,
        )
        if self.backoff_jitter > 0.0 and delay > 0.0:
            seq = np.random.SeedSequence(
                [self.seed, zlib.crc32(stage.encode()), chunk_index, attempt]
            )
            u = float(np.random.default_rng(seq).random())
            delay *= 1.0 + self.backoff_jitter * u
        return delay


@dataclass(frozen=True)
class ResilienceConfig:
    """Failure model one executor enforces on every ``map`` call.

    The default configuration is a no-op (``fail_fast``, no timeout, no
    faults): executors take the exact pre-resilience fast path, so the
    machinery costs nothing unless asked for — the ``bench_smoke``
    ``resilience_overhead_pct`` record holds the *enabled* path to the
    same < 2 % budget as tracing.
    """

    policy: FailurePolicy = FailurePolicy.FAIL_FAST
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout_s: float | None = None
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", FailurePolicy.parse(self.policy))
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive (or None)")

    @property
    def is_noop(self) -> bool:
        """True when the config changes nothing about execution."""
        return (
            self.policy is FailurePolicy.FAIL_FAST
            and self.timeout_s is None
            and self.faults is None
        )

    # ------------------------------------------------------------------
    def on_chunk_failure(
        self,
        *,
        stage: str,
        chunk_index: int,
        chunk_len: int,
        attempt: int,
        exc: BaseException,
    ) -> str:
        """Account one chunk failure and decide what happens next.

        Returns ``"retry"`` (after the backoff sleep) or ``"skip"``;
        re-raises under ``fail_fast`` and raises :class:`TaskRetryError`
        when ``retry_then_raise`` runs out of attempts.
        """
        from ..obs.metrics import inc
        from ..obs.tracing import get_tracer

        if isinstance(exc, TimeoutError):
            inc("task_timeouts_total", chunk_len)
        with get_tracer().span(
            f"failure:{stage}",
            chunk=chunk_index,
            attempt=attempt,
            error=repr(exc),
        ):
            pass
        if self.policy is FailurePolicy.FAIL_FAST:
            raise exc
        if attempt >= self.retry.max_retries:
            if self.policy is FailurePolicy.RETRY_THEN_SKIP:
                inc("tasks_skipped_total", chunk_len)
                return "skip"
            raise TaskRetryError(
                f"stage {stage!r} chunk {chunk_index} "
                f"({chunk_len} tasks) failed after {attempt + 1} attempts: "
                f"{exc!r}"
            ) from exc
        inc("task_retries_total", chunk_len)
        delay = self.retry.delay_s(stage, chunk_index, attempt)
        if delay > 0.0:
            time.sleep(delay)
        return "retry"

    def skipped_chunk(
        self, stage: str, chunk_len: int, attempt: int, exc: BaseException
    ) -> list:
        """The ``retry_then_skip`` degradation of one lost chunk."""
        failure = TaskFailure(
            stage=stage, error=repr(exc), attempts=attempt + 1
        )
        return [failure] * chunk_len


def partition_failures(results) -> tuple[list, list]:
    """Split a result list into (real results, :class:`TaskFailure`\\ s).

    The standard consumption pattern for ``retry_then_skip`` batches:
    callers drop the failures (renormalising whatever weighting the
    survivors carry) instead of crashing on a poisoned element.
    """
    ok: list = []
    failed: list = []
    for result in results:
        (failed if isinstance(result, TaskFailure) else ok).append(result)
    return ok, failed
