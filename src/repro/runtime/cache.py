"""Digest-keyed caching of profiled datasets and fitted FLARE models.

Step 1 (profiling) and steps 2–3 (fitting) are the expensive parts of
the pipeline, and experiment suites re-run them for the same (config,
dataset) pair over and over.  Both are deterministic functions of their
inputs, so they cache safely under a content digest:

* **in-memory** — fitted ``Flare`` objects and ``ProfiledDataset``
  matrices keyed by ``sha256(config JSON, dataset JSON)``;
* **on-disk** — profiled matrices as ``.npy`` files and fitted models
  via :func:`repro.io.serialization.save_model`'s digest-verified
  deterministic re-fit, so a warm cache survives across processes and
  a corrupted or stale entry is detected rather than trusted.

The disk layer is opt-in: pass ``disk_dir`` or set the
:data:`CACHE_DIR_ENV_VAR` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
from collections import OrderedDict

import numpy as np

from ..cluster.scenario import ScenarioDataset
from ..telemetry.database import Database
from ..telemetry.profiler import ProfiledDataset

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "dataset_digest",
    "config_digest",
    "RuntimeCache",
    "CheckpointJournal",
    "default_cache",
]

#: Environment variable enabling the on-disk cache layer.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"


def _sha256_of_json(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def dataset_digest(dataset: ScenarioDataset) -> str:
    """Content digest of a scenario dataset (canonical JSON form)."""
    from ..io.serialization import dataset_to_dict

    return _sha256_of_json(dataset_to_dict(dataset))


def config_digest(config) -> str:
    """Content digest of a :class:`~repro.core.pipeline.FlareConfig`."""
    from ..io.serialization import config_to_dict

    return _sha256_of_json(config_to_dict(config))


class RuntimeCache:
    """Two-level (memory, disk) cache for pipeline artefacts.

    Parameters
    ----------
    memory_slots:
        Entries kept per artefact kind in the in-memory LRU layer.
    disk_dir:
        Directory for the persistent layer; ``None`` disables it.
    """

    def __init__(
        self, *, memory_slots: int = 8, disk_dir=None
    ) -> None:
        if memory_slots < 0:
            raise ValueError("memory_slots must be non-negative")
        self.memory_slots = memory_slots
        self.disk_dir = pathlib.Path(disk_dir) if disk_dir else None
        self._profiled: OrderedDict[str, ProfiledDataset] = OrderedDict()
        self._fitted: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _hit(self) -> None:
        """Count a hit locally and in the observability registry.

        The ``cache_hits_total`` counter goes through :mod:`repro.obs`
        so hits scored inside process-pool workers travel back to the
        parent through the executor's capture channel instead of dying
        with the worker (the instance attributes stay worker-local).
        """
        from ..obs.metrics import inc

        self.hits += 1
        inc("cache_hits_total")

    def _miss(self) -> None:
        from ..obs.metrics import inc

        self.misses += 1
        inc("cache_misses_total")

    # ------------------------------------------------------------------
    def _remember(self, store: OrderedDict, key: str, value) -> None:
        if self.memory_slots == 0:
            return
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.memory_slots:
            store.popitem(last=False)

    def _lookup(self, store: OrderedDict, key: str):
        if key in store:
            store.move_to_end(key)
            return store[key]
        return None

    def _disk_path(self, kind: str, key: str, suffix: str) -> pathlib.Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{kind}-{key[:32]}{suffix}"

    # ------------------------------------------------------------------
    def get_profiled(self, config, dataset: ScenarioDataset) -> ProfiledDataset:
        """Profile *dataset* under *config*'s Profiler, cached by digest.

        The disk layer stores only the metric matrix; the surrounding
        ``ProfiledDataset`` is rebuilt from the live config and dataset,
        so a registry change (different metric count) invalidates the
        entry by shape mismatch instead of silently misaligning columns.
        """
        key = f"{config_digest(config)}-{dataset_digest(dataset)}"
        cached = self._lookup(self._profiled, key)
        if cached is not None:
            self._hit()
            return cached

        from ..cluster.features import BASELINE

        profiler = config.make_profiler()
        if self.disk_dir is not None:
            path = self._disk_path("profiled", key, ".npy")
            if path.exists():
                matrix = np.load(path)
                if matrix.shape == (len(dataset), len(profiler.specs)):
                    profiled = ProfiledDataset(
                        dataset=dataset,
                        machine=BASELINE(dataset.shape.perf),
                        specs=profiler.specs,
                        matrix=matrix,
                    )
                    self._remember(self._profiled, key, profiled)
                    self._hit()
                    return profiled

        self._miss()
        profiled = profiler.profile(dataset)
        self._remember(self._profiled, key, profiled)
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            np.save(self._disk_path("profiled", key, ".npy"), profiled.matrix)
        return profiled

    def get_fitted(
        self, config, dataset: ScenarioDataset, *, database: Database | None = None
    ):
        """Fit ``Flare(config)`` on *dataset*, cached by digest.

        Memory hits return the fitted object directly.  Disk hits go
        through :func:`repro.io.serialization.load_model`, whose
        digest-verified deterministic re-fit proves the cached entry
        still matches what fitting would produce today.
        """
        from ..core.pipeline import Flare
        from ..io.serialization import load_model, save_model

        key = f"{config_digest(config)}-{dataset_digest(dataset)}"
        cached = self._lookup(self._fitted, key)
        if cached is not None:
            self._hit()
            return cached

        if self.disk_dir is not None:
            path = self._disk_path("model", key, ".json")
            if path.exists():
                try:
                    flare = load_model(path)
                except (ValueError, KeyError):
                    path.unlink(missing_ok=True)
                else:
                    self._hit()
                    self._remember(self._fitted, key, flare)
                    return flare

        self._miss()
        flare = Flare(config, database=database).fit(dataset)
        self._remember(self._fitted, key, flare)
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            save_model(flare, self._disk_path("model", key, ".json"))
        return flare

    # ------------------------------------------------------------------
    def journal(self, run_id: str) -> "CheckpointJournal":
        """A :class:`CheckpointJournal` under this cache's disk layer.

        Checkpoints are resume state and must survive the process, so
        they require the disk layer (``disk_dir`` or
        :data:`CACHE_DIR_ENV_VAR`).
        """
        if self.disk_dir is None:
            raise ValueError(
                "checkpointing requires the disk cache layer; pass "
                f"disk_dir or set {CACHE_DIR_ENV_VAR}"
            )
        return CheckpointJournal(self.disk_dir / "checkpoints", run_id)

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are left in place)."""
        self._profiled.clear()
        self._fitted.clear()

    def __repr__(self) -> str:
        return (
            f"RuntimeCache(memory_slots={self.memory_slots}, "
            f"disk_dir={str(self.disk_dir) if self.disk_dir else None!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class CheckpointJournal:
    """Digest-keyed journal of completed executor chunks for resume.

    An executor with a journal attached records every completed chunk's
    results under ``sha256(stage, task digest, chunk index, chunk
    payload)`` — one pickle file per chunk, written atomically.  When a
    killed run restarts with the same journal (CLI ``--resume``), every
    ``map`` call restores its already-journaled chunks instead of
    re-executing them (scored on the ``checkpoint_hits_total`` counter)
    and re-runs only the rest.  Because tasks are pure functions of
    their items, the resumed run's results are bit-identical to an
    uninterrupted one.

    Chunks containing :class:`~repro.runtime.resilience.TaskFailure`
    entries are never journaled — a degraded chunk gets a fresh chance
    on resume rather than its failure becoming sticky.
    """

    def __init__(self, directory, run_id: str = "default") -> None:
        safe = "".join(
            c if c.isalnum() or c in "-_." else "-" for c in run_id
        )
        if not safe:
            raise ValueError("run_id must be non-empty")
        self.run_id = safe
        self.directory = pathlib.Path(directory) / safe

    # ------------------------------------------------------------------
    def chunk_keys(self, stage: str, fn, chunks: list) -> list[str]:
        """Content keys of one ``map`` call's chunks.

        Keys digest the stage label, the task callable and each chunk's
        pickled payload (plus its index), so a changed task or input
        set misses the journal instead of restoring stale results.
        """
        try:
            fn_digest = hashlib.sha256(
                pickle.dumps(fn, protocol=4)
            ).hexdigest()
        except Exception:  # closures etc. — identify by name instead
            fn_digest = f"{getattr(fn, '__module__', '?')}." + getattr(
                fn, "__qualname__", repr(fn)
            )
        keys = []
        for index, chunk in enumerate(chunks):
            digest = hashlib.sha256()
            digest.update(stage.encode())
            digest.update(fn_digest.encode())
            digest.update(str(index).encode())
            try:
                digest.update(pickle.dumps(chunk, protocol=4))
            except Exception:
                digest.update(repr(chunk).encode())
            keys.append(digest.hexdigest())
        return keys

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"chunk-{key[:40]}.pkl"

    def get(self, key: str):
        """Journaled results for *key*, or ``None`` (corrupt ⇒ miss)."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, results: list) -> None:
        """Journal one completed chunk (atomic; unpicklable ⇒ no-op)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(results, handle, protocol=4)
        except Exception:
            tmp.unlink(missing_ok=True)
            return
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("chunk-*.pkl"))

    def clear(self) -> None:
        """Drop every journaled chunk (a completed run's cleanup)."""
        if not self.directory.exists():
            return
        for path in self.directory.glob("chunk-*.pkl"):
            path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return (
            f"CheckpointJournal(directory={str(self.directory)!r}, "
            f"chunks={len(self)})"
        )


_DEFAULT_CACHE: RuntimeCache | None = None


def default_cache() -> RuntimeCache:
    """Process-wide cache; disk layer enabled via :data:`CACHE_DIR_ENV_VAR`."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        import os

        _DEFAULT_CACHE = RuntimeCache(
            disk_dir=os.environ.get(CACHE_DIR_ENV_VAR) or None
        )
    return _DEFAULT_CACHE
