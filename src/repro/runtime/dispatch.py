"""Zero-copy scenario dispatch for the process backend.

The process executor's historical transport pickles task payloads into
every chunk.  For scenario profiling that meant shipping the scenarios
themselves — after the batched solver made compute ~10x cheaper,
serialization dominated and the parallel backend *lost* to serial.
This module provides two payload-free transports:

``shardref``
    The input already lives in a sharded store, so workers read their
    own data: the parent ships tiny :class:`ShardRef` row-range
    descriptors and each worker memory-maps the referenced shard
    (digest-verified, cached per process) and packs solver arrays
    straight from the mapped tables.  Refs are pure content
    (path + digests + row range), so checkpoint-journal keys and
    fault-injection fates stay stable across runs and transports.

``shm``
    In-memory datasets are packed once in the parent into the store's
    columnar tables and published via ``multiprocessing.shared_memory``;
    workers attach and slice.  Segments are refcounted
    (:class:`SharedTables`) and unlinked by the owning parent when the
    count drops to zero — success, failure and pool-respawn paths all
    release through the same ``finally``.

``pickle``
    The historical transport, still the right call for serial
    execution (no copy happens anyway) and whenever payload content
    must itself be the checkpoint-journal key (in-memory sources under
    a :class:`~repro.runtime.cache.CheckpointJournal` — shared-memory
    segment names are per-run, so they would break key stability).

:func:`choose_dispatch` encodes those rules for ``dispatch="auto"``.

Python 3.11 wart, handled in :func:`_untrack`: attaching to an existing
segment (``create=False``) *also* registers it with the process's
``resource_tracker``, so a worker exiting would unlink a segment the
parent still owns (or warn about it).  Workers therefore unregister
segments they merely attach; creators keep their registration and
unlink explicitly.
"""

from __future__ import annotations

import pathlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import inc
from .config import DISPATCH_MODES

__all__ = [
    "DispatchError",
    "ShardRef",
    "SharedTableRef",
    "SharedTables",
    "shard_tables",
    "attach_shared_tables",
    "active_shared_segments",
    "choose_dispatch",
]


class DispatchError(ValueError):
    """A dispatch mode cannot apply to the given source/executor."""


def choose_dispatch(
    mode: str,
    *,
    store_backed: bool,
    parallel: bool,
    journaled: bool,
) -> str:
    """Resolve a configured dispatch *mode* to a concrete transport.

    Explicit modes are honoured (erroring when impossible); ``"auto"``
    picks the cheapest transport that preserves the checkpoint-journal
    and bit-identity guarantees — see the module docstring.
    """
    if mode not in DISPATCH_MODES:
        raise DispatchError(
            f"unknown dispatch mode {mode!r}; expected one of "
            f"{list(DISPATCH_MODES)}"
        )
    if mode == "shardref" and not store_backed:
        raise DispatchError(
            "dispatch='shardref' needs a shard-backed source "
            "(one exposing shard_refs()); use 'shm' or 'auto' for "
            "in-memory datasets"
        )
    if mode != "auto":
        return mode
    if not parallel:
        return "pickle"
    if store_backed:
        return "shardref"
    if journaled:
        return "pickle"
    return "shm"


# ----------------------------------------------------------------------
# shardref transport
@dataclass(frozen=True)
class ShardRef:
    """Row-range descriptor into one shard of a scenario store.

    Pure content: the store path, the shard's manifest identity
    (name, row/instance counts, digests) and a half-open scenario row
    range.  Pickles in ~200 bytes regardless of how many scenarios it
    covers, and two runs over the same store produce byte-identical
    refs — which keeps checkpoint keys and injected-fault fates stable.
    """

    store_path: str
    shard: str
    shard_index: int
    row_start: int
    row_stop: int
    global_row: int
    shard_rows: int
    shard_instances: int
    scenarios_digest: str
    instances_digest: str

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start


#: Worker-side cache of verified, memory-mapped shard tables.  Keyed by
#: content digest, so a store rewritten in place can never serve stale
#: maps.  A worker's refs cluster within a few shards at a time; four
#: slots cover the access pattern.
_SHARD_TABLE_CACHE: "OrderedDict[tuple, tuple[np.ndarray, np.ndarray]]" = (
    OrderedDict()
)
_SHARD_CACHE_SLOTS = 4


def shard_tables(ref: ShardRef) -> tuple[np.ndarray, np.ndarray]:
    """The (scenario table, instance table) of *ref*'s whole shard.

    Memory-mapped and digest-verified on first touch in this process,
    then served from the per-process cache — so a worker profiling many
    row ranges of one shard verifies and maps it once.
    """
    key = (ref.store_path, ref.shard, ref.scenarios_digest)
    hit = _SHARD_TABLE_CACHE.get(key)
    if hit is not None:
        _SHARD_TABLE_CACHE.move_to_end(key)
        return hit
    from ..store.format import read_shard_array

    base = pathlib.Path(ref.store_path)
    scenario_table = read_shard_array(
        base / f"{ref.shard}.scenarios.npy",
        mmap=True,
        expected_rows=ref.shard_rows,
        expected_digest=ref.scenarios_digest,
    )
    instance_table = read_shard_array(
        base / f"{ref.shard}.instances.npy",
        mmap=True,
        expected_rows=ref.shard_instances,
        expected_digest=ref.instances_digest,
    )
    while len(_SHARD_TABLE_CACHE) >= _SHARD_CACHE_SLOTS:
        _SHARD_TABLE_CACHE.popitem(last=False)
    _SHARD_TABLE_CACHE[key] = (scenario_table, instance_table)
    inc("dispatch_shard_loads_total")
    return scenario_table, instance_table


# ----------------------------------------------------------------------
# shm transport
@dataclass(frozen=True)
class SharedTableRef:
    """Picklable handle to a published pair of shared-memory tables."""

    scenarios_name: str
    instances_name: str
    n_scenarios: int
    n_instances: int


#: Segments created by this process that are not yet unlinked.  The
#: leak tests (and the bench's leak gate) assert this drains to empty.
_ACTIVE_SEGMENTS: dict[str, object] = {}


def active_shared_segments() -> tuple[str, ...]:
    """Names of shared-memory segments this process still owns."""
    return tuple(sorted(_ACTIVE_SEGMENTS))


def _untrack(segment) -> None:
    """Drop a merely-attached segment from the resource tracker.

    See the module docstring: on Python < 3.13 ``create=False`` also
    registers the segment.  That matters only in *spawn*-started
    workers, whose fresh resource tracker would unlink the parent's
    memory when the worker exits; fork-started workers and same-process
    attaches share the creator's tracker, where the duplicate
    registration collapses into the creator's own entry (and
    unregistering here would instead clobber it).
    """
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return
    try:
        if multiprocessing.get_start_method() != "spawn":
            return
    except Exception:
        pass
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class SharedTables:
    """Parent-owned shared-memory copies of one pair of packed tables.

    Refcounted: the creating scope holds the initial reference; nested
    users :meth:`acquire` / :meth:`release`, and the segments are
    unlinked exactly once, when the count reaches zero.  ``release`` in
    a ``finally`` makes success, failure and pool-respawn paths all
    converge on the same cleanup.
    """

    def __init__(
        self, scenario_table: np.ndarray, instance_table: np.ndarray
    ) -> None:
        from multiprocessing import shared_memory

        self._segments: list = []
        names: list[str] = []
        try:
            for array in (scenario_table, instance_table):
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                self._segments.append(segment)
                if array.nbytes:
                    view = np.ndarray(
                        array.shape,
                        dtype=array.dtype,
                        buffer=segment.buf[: array.nbytes],
                    )
                    view[:] = array
                    del view  # release the exported buffer before any close
                names.append(segment.name)
        except Exception:
            self._count = 1
            self.release()
            raise
        self.ref = SharedTableRef(
            scenarios_name=names[0],
            instances_name=names[1],
            n_scenarios=int(scenario_table.shape[0]),
            n_instances=int(instance_table.shape[0]),
        )
        self._count = 1
        for segment in self._segments:
            _ACTIVE_SEGMENTS[segment.name] = segment
        inc("shm_segments_created_total", len(self._segments))

    def acquire(self) -> "SharedTables":
        if self._count <= 0:
            raise RuntimeError("SharedTables already released")
        self._count += 1
        return self

    def release(self) -> None:
        self._count -= 1
        if self._count > 0:
            return
        segments, self._segments = self._segments, []
        for segment in segments:
            _ACTIVE_SEGMENTS.pop(segment.name, None)
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # already gone (double release race)
                pass
            inc("shm_segments_unlinked_total")

    def __enter__(self) -> "SharedTables":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


#: Worker-side cache of attached segments.  Entries are evicted by
#: dropping references (arrays handed to earlier tasks may still view
#: the buffer, so the mapping is closed by garbage collection, not
#: eagerly).
_ATTACHED_TABLES: "OrderedDict[str, tuple]" = OrderedDict()
_ATTACH_CACHE_SLOTS = 4


def _attach_array(name: str, dtype: np.dtype, count: int) -> np.ndarray:
    cached = _ATTACHED_TABLES.get(name)
    if cached is not None:
        _ATTACHED_TABLES.move_to_end(name)
        return cached[1]
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name, create=False)
    _untrack(segment)
    # The mapping may be page-rounded past the payload; slice to the
    # exact byte length before viewing, or the row count would be off.
    array = np.ndarray(
        (count,), dtype=dtype, buffer=segment.buf[: dtype.itemsize * count]
    )
    while len(_ATTACHED_TABLES) >= _ATTACH_CACHE_SLOTS:
        _ATTACHED_TABLES.popitem(last=False)
    _ATTACHED_TABLES[name] = (segment, array)
    return array


def attach_shared_tables(
    ref: SharedTableRef,
) -> tuple[np.ndarray, np.ndarray]:
    """Attach to a published table pair (cached per process)."""
    from ..store.format import INSTANCE_DTYPE, SCENARIO_DTYPE

    scenario_table = _attach_array(
        ref.scenarios_name, SCENARIO_DTYPE, ref.n_scenarios
    )
    instance_table = _attach_array(
        ref.instances_name, INSTANCE_DTYPE, ref.n_instances
    )
    return scenario_table, instance_table
