"""Executor abstraction: serial and process-pool task fan-out.

The three hot fan-out loops of the reproduction — sampling trials,
per-representative replays, and experiment-suite runs — all dispatch
through an :class:`Executor`.  The contract is deliberately narrow:

* ``map(fn, items)`` applies a picklable callable to every item and
  returns results **in submission order**;
* tasks must draw randomness only from their own item (see
  :mod:`repro.runtime.seeding`), which makes results bit-identical under
  any executor and any worker count;
* items are batched into chunks before dispatch so per-task pickling is
  amortised.

Executor choice is a pure performance knob: ``SerialExecutor`` and
``ProcessExecutor`` are interchangeable by construction, and the
determinism test suite holds them to it.

The executor is also the observability transport (:mod:`repro.obs`):

* every ``map`` call records a :class:`StageStats` entry and — when
  tracing is enabled — a ``dispatch:<stage>`` span carrying the same
  fields, so the span timeline subsumes ``RUNTIME_STATS``;
* process-pool chunks run under a worker-side capture: spans, metric
  increments and any nested ``StageStats`` recorded inside the worker
  are serialized back with the results and stitched under the parent
  dispatch span / merged into the parent registries.  Serial chunks
  need no capture — their spans nest and their counters land in the
  parent registries directly — which is what makes serial and process
  traces equivalent trees.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics
from ..obs.tracing import (
    NULL_TRACER,
    Tracer,
    detached_context,
    get_tracer,
    set_tracer,
)
from ..telemetry.runtime_stats import RUNTIME_STATS, StageStats

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "available_workers",
]

#: Environment variable selecting the default executor, e.g. ``serial``,
#: ``process`` or ``process:4``.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def available_workers() -> int:
    """Usable CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _apply_chunk(fn: Callable[[Any], Any], chunk: list) -> list:
    """Worker-side kernel: apply *fn* to one batch of items."""
    return [fn(item) for item in chunk]


def _apply_chunk_traced(
    fn: Callable[[Any], Any], chunk: list, label: str
) -> list:
    """Apply one chunk under a ``chunk:<stage>`` span.

    Also feeds the per-stage task-latency histogram (chunk wall divided
    by chunk size — per-task pickling and span cost amortised the same
    way the dispatch itself amortises them).
    """
    from ..obs.metrics import observe

    start = time.perf_counter()
    with get_tracer().span(f"chunk:{label}", n_items=len(chunk)):
        results = [fn(item) for item in chunk]
    if chunk:
        observe(
            f"task_latency_s:{label}",
            (time.perf_counter() - start) / len(chunk),
        )
    return results


def _apply_chunk_captured(
    fn: Callable[[Any], Any],
    chunk: list,
    label: str,
    trace_enabled: bool,
) -> tuple[list, dict]:
    """Process-pool kernel: apply one chunk under telemetry capture.

    Runs in the worker.  A fresh tracer (when tracing is on) and a fresh
    metrics registry are swapped in for the duration of the chunk, and
    whatever the chunk recorded — spans, counter/gauge/histogram
    increments, nested executor ``StageStats`` — is returned alongside
    the results as a picklable payload for the parent to merge.  Without
    this channel anything recorded inside a worker dies with it.
    """
    tracer = Tracer() if trace_enabled else NULL_TRACER
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(MetricsRegistry())
    stats_mark = len(RUNTIME_STATS.records())
    try:
        with detached_context():
            if trace_enabled:
                results = _apply_chunk_traced(fn, chunk, label)
            else:
                results = _apply_chunk(fn, chunk)
    finally:
        captured_metrics = set_metrics(previous_metrics)
        set_tracer(previous_tracer)
    payload = {
        "spans": [span.to_dict() for span in tracer.spans()],
        "metrics": captured_metrics.snapshot(),
        "stage_stats": [
            dataclasses.asdict(record)
            for record in RUNTIME_STATS.records()[stats_mark:]
        ],
    }
    return results, payload


def _chunked(items: list, chunk_size: int) -> list[list]:
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


@runtime_checkable
class Executor(Protocol):
    """Minimal task-execution contract the fan-out loops rely on."""

    name: str

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        chunk_size: int = 1,
        stage: str | None = None,
    ) -> list:
        """Apply *fn* to every item, preserving submission order."""
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class _BaseExecutor:
    """Shared chunking + stage-stats bookkeeping."""

    name = "base"

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        chunk_size: int = 1,
        stage: str | None = None,
    ) -> list:
        materialised = list(items)
        if not materialised:
            return []
        label = stage or getattr(fn, "__name__", "anonymous")
        start = time.perf_counter()
        chunks = _chunked(materialised, chunk_size)
        with get_tracer().span(
            f"dispatch:{label}",
            executor=self.name,
            n_tasks=len(materialised),
            n_chunks=len(chunks),
        ) as dispatch:
            batched = self._map_chunks(fn, chunks, label, dispatch)
        results = [result for batch in batched for result in batch]
        RUNTIME_STATS.record(
            StageStats(
                stage=label,
                executor=self.name,
                n_tasks=len(materialised),
                n_chunks=len(chunks),
                wall_s=time.perf_counter() - start,
            )
        )
        return results

    def _map_chunks(
        self, fn, chunks: list[list], label: str, dispatch
    ) -> list[list]:
        """Run the chunks; *dispatch* is the open dispatch span (or None)."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __enter__(self) -> "_BaseExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(_BaseExecutor):
    """In-process execution — the reference the parallel path must match."""

    name = "serial"

    def _map_chunks(
        self, fn, chunks: list[list], label: str, dispatch
    ) -> list[list]:
        if get_tracer().enabled:
            return [_apply_chunk_traced(fn, chunk, label) for chunk in chunks]
        return [_apply_chunk(fn, chunk) for chunk in chunks]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ProcessExecutor(_BaseExecutor):
    """``concurrent.futures.ProcessPoolExecutor``-backed execution.

    The pool is created lazily on first use and reused across ``map``
    calls, so repeated fan-outs (1000-trial baselines, per-figure
    experiment suites) pay worker start-up once.  Tasks and their
    arguments must be picklable; chunking amortises the pickling of
    shared arguments (population arrays, replayers) over ``chunk_size``
    tasks.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or available_workers()
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _map_chunks(
        self, fn, chunks: list[list], label: str, dispatch
    ) -> list[list]:
        pool = self._ensure_pool()
        tracer = get_tracer()
        futures = [
            pool.submit(
                _apply_chunk_captured, fn, chunk, label, tracer.enabled
            )
            for chunk in chunks
        ]
        batched = []
        for future in futures:
            results, payload = future.result()
            batched.append(results)
            self._merge_payload(payload, tracer, dispatch)
        return batched

    @staticmethod
    def _merge_payload(payload: dict, tracer, dispatch) -> None:
        """Fold one worker chunk's telemetry into the parent's registries."""
        if payload["spans"]:
            tracer.ingest(
                payload["spans"],
                parent_id=dispatch.span_id if dispatch is not None else None,
            )
        if any(payload["metrics"].values()):
            get_metrics().merge(payload["metrics"])
        for record in payload["stage_stats"]:
            RUNTIME_STATS.record(StageStats(**record))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ProcessExecutor(max_workers={self.max_workers})"


def resolve_executor(spec: "Executor | str | None" = None) -> Executor:
    """Turn an executor spec into an executor instance.

    Accepts an existing executor (returned unchanged), a spec string
    (``"serial"``, ``"process"``, ``"process:4"``), or ``None`` — in
    which case the :data:`EXECUTOR_ENV_VAR` environment variable is
    consulted and the serial executor is the fallback.  Serial remains
    the default so library behaviour is unchanged unless parallelism is
    asked for.
    """
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR) or "serial"
    if isinstance(spec, (SerialExecutor, ProcessExecutor)):
        return spec
    if not isinstance(spec, str) and isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"cannot resolve executor from {spec!r}")

    kind, _, arg = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "serial":
        if arg:
            raise ValueError("serial executor takes no worker count")
        return SerialExecutor()
    if kind == "process":
        workers = None
        if arg:
            try:
                workers = int(arg)
            except ValueError:
                raise ValueError(
                    f"invalid worker count {arg!r} in executor spec {spec!r}"
                ) from None
        return ProcessExecutor(max_workers=workers)
    raise ValueError(
        f"unknown executor spec {spec!r}; expected 'serial', 'process' "
        "or 'process:<workers>'"
    )
