"""Executor abstraction: serial and process-pool task fan-out.

The three hot fan-out loops of the reproduction — sampling trials,
per-representative replays, and experiment-suite runs — all dispatch
through an :class:`Executor`.  The contract is deliberately narrow:

* ``map(fn, items)`` applies a picklable callable to every item and
  returns results **in submission order**;
* tasks must draw randomness only from their own item (see
  :mod:`repro.runtime.seeding`), which makes results bit-identical under
  any executor and any worker count;
* items are batched into chunks before dispatch so per-task pickling is
  amortised.

Executor choice is a pure performance knob: ``SerialExecutor`` and
``ProcessExecutor`` are interchangeable by construction, and the
determinism test suite holds them to it.

The executor is also the observability transport (:mod:`repro.obs`):

* every ``map`` call records a :class:`StageStats` entry and — when
  tracing is enabled — a ``dispatch:<stage>`` span carrying the same
  fields, so the span timeline subsumes ``RUNTIME_STATS``;
* process-pool chunks run under a worker-side capture: spans, metric
  increments and any nested ``StageStats`` recorded inside the worker
  are serialized back with the results and stitched under the parent
  dispatch span / merged into the parent registries — **including for
  chunks that raise**, whose telemetry ships back alongside the error
  instead of dying with it.  Serial chunks need no capture — their
  spans nest and their counters land in the parent registries directly
  — which is what makes serial and process traces equivalent trees.

And the executor is the fault boundary (:mod:`repro.runtime.resilience`):

* a :class:`~repro.runtime.resilience.ResilienceConfig` attached to an
  executor adds per-task timeouts, bounded seeded-backoff retries,
  ``BrokenProcessPool`` recovery (the pool is respawned and only the
  lost chunks re-dispatched) and graceful degradation to typed
  :class:`~repro.runtime.resilience.TaskFailure` results;
* a :class:`~repro.runtime.cache.CheckpointJournal` attached to an
  executor journals every completed chunk by content digest, so a
  killed run re-executes only the chunks that never finished.

Retried chunks re-run pure tasks, so results stay bit-identical to a
fault-free serial run — resilience, like parallelism, is not a
semantics knob.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from ..obs.metrics import MetricsRegistry, get_metrics, inc, set_metrics
from ..obs.tracing import (
    NULL_TRACER,
    Tracer,
    detached_context,
    get_tracer,
    set_tracer,
)
from ..telemetry.runtime_stats import RUNTIME_STATS, StageStats
from .faultinject import wrap_faults
from .resilience import (
    ExecutorBrokenError,
    ResilienceConfig,
    TaskTimeoutError,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "available_workers",
]

#: Environment variable selecting the default executor, e.g. ``serial``,
#: ``process`` or ``process:4``.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"


def available_workers() -> int:
    """Usable CPU count (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _apply_chunk(fn: Callable[[Any], Any], chunk: list) -> list:
    """Worker-side kernel: apply *fn* to one batch of items."""
    return [fn(item) for item in chunk]


def _apply_chunk_traced(
    fn: Callable[[Any], Any], chunk: list, label: str
) -> list:
    """Apply one chunk under a ``chunk:<stage>`` span.

    Also feeds the per-stage task-latency histogram (chunk wall divided
    by chunk size — per-task pickling and span cost amortised the same
    way the dispatch itself amortises them).
    """
    from ..obs.metrics import observe

    start = time.perf_counter()
    with get_tracer().span(f"chunk:{label}", n_items=len(chunk)):
        results = [fn(item) for item in chunk]
    if chunk:
        observe(
            f"task_latency_s:{label}",
            (time.perf_counter() - start) / len(chunk),
        )
    return results


def _apply_chunk_captured(
    fn: Callable[[Any], Any],
    chunk: list,
    label: str,
    trace_enabled: bool,
) -> tuple:
    """Process-pool kernel: apply one chunk under telemetry capture.

    Runs in the worker.  A fresh tracer (when tracing is on) and a fresh
    metrics registry are swapped in for the duration of the chunk, and
    whatever the chunk recorded — spans, counter/gauge/histogram
    increments, nested executor ``StageStats`` — is returned alongside
    the results as a picklable payload for the parent to merge.  Without
    this channel anything recorded inside a worker dies with it.

    Returns ``(results, payload, error)``.  A raising chunk returns
    ``(None, payload, exc)`` instead of raising, so the telemetry it
    recorded *before* the failure still travels back — the parent merges
    the payload and then feeds ``exc`` to the retry machinery.
    """
    tracer = Tracer() if trace_enabled else NULL_TRACER
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(MetricsRegistry())
    stats_mark = len(RUNTIME_STATS.records())
    results = None
    error: Exception | None = None
    try:
        with detached_context():
            if trace_enabled:
                results = _apply_chunk_traced(fn, chunk, label)
            else:
                results = _apply_chunk(fn, chunk)
    except Exception as exc:
        error = exc
    finally:
        captured_metrics = set_metrics(previous_metrics)
        set_tracer(previous_tracer)
    payload = {
        "spans": [span.to_dict() for span in tracer.spans()],
        "metrics": captured_metrics.snapshot(),
        "stage_stats": [
            dataclasses.asdict(record)
            for record in RUNTIME_STATS.records()[stats_mark:]
        ],
    }
    if error is not None:
        import pickle

        try:
            pickle.dumps(error)
        except Exception:
            error = RuntimeError(f"{type(error).__name__}: {error}")
        return None, payload, error
    return results, payload, None


def _chunked(items: list, chunk_size: int) -> list[list]:
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


@runtime_checkable
class Executor(Protocol):
    """Minimal task-execution contract the fan-out loops rely on."""

    name: str

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        chunk_size: int = 1,
        stage: str | None = None,
    ) -> list:
        """Apply *fn* to every item, preserving submission order."""
        ...

    def close(self) -> None:
        """Release worker resources (idempotent)."""
        ...


class _BaseExecutor:
    """Shared chunking, checkpoint and stage-stats bookkeeping.

    Parameters
    ----------
    resilience:
        Failure model for every ``map`` call; ``None`` means the no-op
        default (``fail_fast``, no timeouts, no faults), which takes the
        exact pre-resilience fast path.
    checkpoint:
        Optional :class:`~repro.runtime.cache.CheckpointJournal`.  When
        attached, completed chunks are journaled under a content digest
        of ``(stage, task, chunk)`` and already-journaled chunks are
        restored instead of re-executed — the resume path a killed run
        takes via CLI ``--resume``.
    """

    name = "base"

    def __init__(self, *, resilience=None, checkpoint=None) -> None:
        self.resilience: ResilienceConfig = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self.checkpoint = checkpoint

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        chunk_size: int = 1,
        stage: str | None = None,
    ) -> list:
        materialised = list(items)
        if not materialised:
            return []
        label = stage or getattr(fn, "__name__", "anonymous")
        start = time.perf_counter()
        chunks = _chunked(materialised, chunk_size)

        journal = self.checkpoint
        keys: list[str] | None = None
        restored: dict[int, list] = {}
        if journal is not None:
            keys = journal.chunk_keys(label, fn, chunks)
        if keys is not None:
            for index, key in enumerate(keys):
                hit = journal.get(key)
                if hit is not None:
                    restored[index] = hit
            if restored:
                inc(
                    "checkpoint_hits_total",
                    sum(len(chunks[i]) for i in restored),
                )

        pending = [i for i in range(len(chunks)) if i not in restored]

        def journal_chunk(local_index: int, chunk_results: list) -> None:
            # Journal each chunk the moment it completes, so a run
            # killed mid-dispatch still resumes everything that
            # finished.  Chunks degraded to TaskFailure stand-ins are
            # never journaled — they get a fresh chance on resume.
            if keys is None:
                return
            if any(_is_task_failure(r) for r in chunk_results):
                return
            journal.put(keys[pending[local_index]], chunk_results)

        with get_tracer().span(
            f"dispatch:{label}",
            executor=self.name,
            n_tasks=len(materialised),
            n_chunks=len(chunks),
            checkpoint_chunks=len(restored),
        ) as dispatch:
            ran = self._map_chunks(
                fn,
                [chunks[i] for i in pending],
                label,
                dispatch,
                journal_chunk,
            )
        for index, chunk_results in zip(pending, ran):
            restored[index] = chunk_results

        results = [
            result
            for index in range(len(chunks))
            for result in restored[index]
        ]
        RUNTIME_STATS.record(
            StageStats(
                stage=label,
                executor=self.name,
                n_tasks=len(materialised),
                n_chunks=len(chunks),
                wall_s=time.perf_counter() - start,
            )
        )
        return results

    def _map_chunks(
        self, fn, chunks: list[list], label: str, dispatch, on_done
    ) -> list[list]:
        """Run the chunks; *dispatch* is the open dispatch span (or None).

        ``on_done(index, results)`` must be invoked as each chunk
        completes successfully (checkpoint journaling hangs off it).
        """
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __enter__(self) -> "_BaseExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _is_task_failure(result) -> bool:
    from .resilience import TaskFailure

    return isinstance(result, TaskFailure)


class SerialExecutor(_BaseExecutor):
    """In-process execution — the reference the parallel path must match.

    Timeouts are cooperative here: an injected hang raises immediately,
    but genuinely stuck user code cannot be preempted without a separate
    process — use the process backend when preemptive timeouts matter.
    """

    name = "serial"

    def _map_chunks(
        self, fn, chunks: list[list], label: str, dispatch, on_done
    ) -> list[list]:
        traced = get_tracer().enabled
        noop = self.resilience.is_noop
        out = []
        for index, chunk in enumerate(chunks):
            if noop:
                if traced:
                    chunk_results = _apply_chunk_traced(fn, chunk, label)
                else:
                    chunk_results = _apply_chunk(fn, chunk)
            else:
                chunk_results = self._run_chunk_resilient(
                    fn, chunk, index, label
                )
            on_done(index, chunk_results)
            out.append(chunk_results)
        return out

    def _run_chunk_resilient(
        self, fn, chunk: list, index: int, label: str
    ) -> list:
        config = self.resilience
        attempt = 0
        while True:
            task = wrap_faults(fn, config.faults, attempt)
            try:
                if get_tracer().enabled:
                    return _apply_chunk_traced(task, chunk, label)
                return _apply_chunk(task, chunk)
            except Exception as exc:
                action = config.on_chunk_failure(
                    stage=label,
                    chunk_index=index,
                    chunk_len=len(chunk),
                    attempt=attempt,
                    exc=exc,
                )
                if action == "skip":
                    return config.skipped_chunk(label, len(chunk), attempt, exc)
                attempt += 1

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ProcessExecutor(_BaseExecutor):
    """``concurrent.futures.ProcessPoolExecutor``-backed execution.

    The pool is created lazily on first use and reused across ``map``
    calls, so repeated fan-outs (1000-trial baselines, per-figure
    experiment suites) pay worker start-up once.  Tasks and their
    arguments must be picklable; chunking amortises the pickling of
    shared arguments (population arrays, replayers) over ``chunk_size``
    tasks.

    Fault handling (when a :class:`ResilienceConfig` is attached):

    * a chunk that exceeds ``timeout_s * len(chunk)`` has its (possibly
      hung) pool killed and respawned; the timed-out chunk is charged a
      retry, every other in-flight chunk is simply re-dispatched;
    * a ``BrokenProcessPool`` (a worker died) respawns the pool and
      re-dispatches only the lost chunks; because the dying worker
      cannot be attributed to one chunk, every lost chunk is charged an
      attempt — deterministic fault schedules make this harmless (a
      chunk only misbehaves for its first ``faults_per_task``
      executions);
    * completed chunks are never re-executed.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        resilience=None,
        checkpoint=None,
    ) -> None:
        super().__init__(resilience=resilience, checkpoint=checkpoint)
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or available_workers()
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _kill_pool(self) -> None:
        """Terminate the pool's workers (hung ones included) and drop it."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        for process in getattr(pool, "_processes", {}).values():
            try:
                process.terminate()
            except Exception:  # already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        inc("pool_respawns_total")

    def _map_chunks(
        self, fn, chunks: list[list], label: str, dispatch, on_done
    ) -> list[list]:
        from concurrent.futures.process import BrokenProcessPool

        config = self.resilience
        tracer = get_tracer()
        results: dict[int, list] = {}
        attempts = [0] * len(chunks)
        pending = list(range(len(chunks)))
        respawn_budget = max(8, 4 * (config.retry.max_retries + 1))
        respawns = 0

        def fail(index: int, exc: Exception) -> None:
            """Route one chunk failure through the policy machinery."""
            action = config.on_chunk_failure(
                stage=label,
                chunk_index=index,
                chunk_len=len(chunks[index]),
                attempt=attempts[index],
                exc=exc,
            )
            if action == "skip":
                results[index] = config.skipped_chunk(
                    label, len(chunks[index]), attempts[index], exc
                )
            else:
                attempts[index] += 1
                pending.append(index)

        while pending:
            pool = self._ensure_pool()
            round_indices, pending = pending, []
            futures = [
                (
                    i,
                    pool.submit(
                        _apply_chunk_captured,
                        wrap_faults(fn, config.faults, attempts[i]),
                        chunks[i],
                        label,
                        tracer.enabled,
                    ),
                )
                for i in round_indices
            ]
            broken = None  # None | "timeout" | "pool"
            for i, future in futures:
                if broken is not None:
                    # The pool died earlier in this round.  Salvage any
                    # chunk that finished before the breakage; requeue
                    # the rest (charging an attempt only when the
                    # breakage itself is unattributable).
                    try:
                        outcome = future.result(timeout=0)
                    except BaseException:
                        if broken == "pool":
                            attempts[i] += 1
                        pending.append(i)
                        continue
                    self._finish(
                        outcome, i, tracer, dispatch, results, fail, on_done
                    )
                    continue
                timeout = (
                    config.timeout_s * len(chunks[i])
                    if config.timeout_s is not None
                    else None
                )
                try:
                    outcome = future.result(timeout=timeout)
                except FuturesTimeoutError:
                    self._kill_pool()
                    broken = "timeout"
                    respawns += 1
                    fail(
                        i,
                        TaskTimeoutError(
                            f"stage {label!r} chunk {i} exceeded "
                            f"{timeout:.3g}s ({len(chunks[i])} tasks)"
                        ),
                    )
                    continue
                except BrokenProcessPool as exc:
                    self._kill_pool()
                    broken = "pool"
                    respawns += 1
                    fail(i, exc)
                    continue
                self._finish(
                    outcome, i, tracer, dispatch, results, fail, on_done
                )
            if respawns > respawn_budget:
                raise ExecutorBrokenError(
                    f"stage {label!r}: process pool died {respawns} times; "
                    "giving up on respawning it"
                )
        return [results[i] for i in range(len(chunks))]

    def _finish(
        self, outcome, index: int, tracer, dispatch, results, fail, on_done
    ) -> None:
        """Merge one completed future's telemetry, then settle the chunk."""
        chunk_results, payload, error = outcome
        self._merge_payload(payload, tracer, dispatch)
        if error is not None:
            fail(index, error)
        else:
            results[index] = chunk_results
            on_done(index, chunk_results)

    @staticmethod
    def _merge_payload(payload: dict, tracer, dispatch) -> None:
        """Fold one worker chunk's telemetry into the parent's registries."""
        if payload["spans"]:
            tracer.ingest(
                payload["spans"],
                parent_id=dispatch.span_id if dispatch is not None else None,
            )
        if any(payload["metrics"].values()):
            get_metrics().merge(payload["metrics"])
        for record in payload["stage_stats"]:
            RUNTIME_STATS.record(StageStats(**record))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ProcessExecutor(max_workers={self.max_workers})"


def resolve_executor(
    spec: "Executor | str | None" = None,
    *,
    resilience=None,
    checkpoint=None,
) -> Executor:
    """Turn an executor spec into an executor instance.

    Accepts an existing executor (returned unchanged), a spec string
    (``"serial"``, ``"process"``, ``"process:4"``), or ``None`` — in
    which case the :data:`EXECUTOR_ENV_VAR` environment variable is
    consulted and the serial executor is the fallback.  Serial remains
    the default so library behaviour is unchanged unless parallelism is
    asked for.

    ``resilience`` / ``checkpoint`` attach a failure model and a resume
    journal to the resolved executor (an existing instance is updated in
    place only when they are given, so passing an executor through
    without them never clobbers its configuration).
    """
    if spec is None:
        spec = os.environ.get(EXECUTOR_ENV_VAR) or "serial"
    if isinstance(spec, (SerialExecutor, ProcessExecutor)) or (
        not isinstance(spec, str) and isinstance(spec, Executor)
    ):
        if resilience is not None:
            spec.resilience = resilience
        if checkpoint is not None:
            spec.checkpoint = checkpoint
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"cannot resolve executor from {spec!r}")

    kind, _, arg = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "serial":
        if arg:
            raise ValueError("serial executor takes no worker count")
        return SerialExecutor(resilience=resilience, checkpoint=checkpoint)
    if kind == "process":
        workers = None
        if arg:
            try:
                workers = int(arg)
            except ValueError:
                raise ValueError(
                    f"invalid worker count {arg!r} in executor spec {spec!r}"
                ) from None
        return ProcessExecutor(
            max_workers=workers, resilience=resilience, checkpoint=checkpoint
        )
    raise ValueError(
        f"unknown executor spec {spec!r}; expected 'serial', 'process' "
        "or 'process:<workers>'"
    )
