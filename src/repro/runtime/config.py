"""Unified runtime configuration: one dataclass instead of six keywords.

Execution knobs accreted one keyword at a time — ``executor=``,
``chunk_size=``, ``retries=``, ``task_timeout=``, ``failure_policy=``,
``checkpoint=`` — each threaded separately through the facade, the CLI
and the experiment context.  :class:`RuntimeConfig` collapses them into
a single value that travels as one argument, persists in saved models
(like ``solver=``), and maps one-to-one onto CLI flags:

==================  ======================  =====================
legacy keyword      RuntimeConfig field     CLI flag
==================  ======================  =====================
``executor=``       ``executor``            ``--executor``
(new)               ``dispatch``            ``--dispatch``
``chunk_size=``     ``chunk_size``          ``--chunk-size``
``retries=``        ``retries``             ``--retries``
``task_timeout=``   ``task_timeout_s``      ``--task-timeout``
``failure_policy=`` ``failure_policy``      ``--failure-policy``
``checkpoint=``     ``checkpoint_dir``      ``--checkpoint``
(new)               ``resume``              ``--resume``
==================  ======================  =====================

``dispatch`` selects how scenario payloads reach process workers (see
:mod:`repro.runtime.dispatch` and docs/runtime.md): ``"auto"`` picks the
cheapest safe mode, ``"pickle"`` forces the legacy per-chunk pickling,
``"shardref"`` ships row-range descriptors into an on-disk store, and
``"shm"`` shares packed scenario tables via POSIX shared memory.

Cost-aware chunking lives here too: fan-out stages record their
measured per-item cost into a :mod:`repro.obs` histogram
(:func:`record_stage_cost`) and :func:`cost_aware_block` sizes the next
dispatch from it, replacing the fixed ``len(items) // 64`` heuristic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..obs.metrics import get_metrics, observe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import CheckpointJournal
    from .executor import Executor
    from .resilience import ResilienceConfig

__all__ = [
    "DISPATCH_MODES",
    "RuntimeConfig",
    "ResolvedRuntime",
    "resolve_runtime",
    "record_stage_cost",
    "cost_aware_block",
]

#: Recognised scenario-dispatch modes (see module docstring).
DISPATCH_MODES = ("auto", "pickle", "shardref", "shm")

#: Histogram-name prefix for measured per-item stage costs.
_COST_PREFIX = "item_cost_s:"

#: Target wall-clock of one dispatched block under cost-aware chunking —
#: large enough to amortise dispatch overhead, small enough to keep the
#: pool load-balanced and the checkpoint journal fine-grained.
_TARGET_BLOCK_SECONDS = 0.05

#: Minimum observations before the cost model is trusted over the
#: legacy divisor heuristic.
_MIN_COST_SAMPLES = 8


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything about *how* the pipeline executes, in one value.

    The default configuration reproduces historical behaviour exactly:
    executor resolution falls through to the ``REPRO_EXECUTOR``
    environment variable (serial fallback), dispatch and chunking are
    chosen automatically, and no resilience or checkpointing is
    attached.  Like everything else in the runtime, none of these knobs
    may change results — only speed and failure behaviour.
    """

    executor: "Executor | str | None" = None
    dispatch: str = "auto"
    chunk_size: "int | str" = "auto"
    retries: int | None = None
    task_timeout_s: float | None = None
    failure_policy: str | None = None
    checkpoint_dir: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {self.dispatch!r}; expected one "
                f"of {list(DISPATCH_MODES)}"
            )
        if self.chunk_size != "auto":
            if not isinstance(self.chunk_size, int) or self.chunk_size < 1:
                raise ValueError(
                    "chunk_size must be a positive int or 'auto', got "
                    f"{self.chunk_size!r}"
                )
        if self.retries is not None and self.retries < 0:
            raise ValueError("retries must be non-negative (or None)")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0.0:
            raise ValueError("task_timeout_s must be positive (or None)")
        if self.failure_policy is not None:
            from .resilience import FailurePolicy

            FailurePolicy.parse(self.failure_policy)
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume=True requires checkpoint_dir")

    # ------------------------------------------------------------------
    def resilience(self) -> "ResilienceConfig | None":
        """The failure model these knobs describe (``None`` = no-op)."""
        wants = (
            self.failure_policy is not None
            or self.retries is not None
            or self.task_timeout_s is not None
        )
        if not wants:
            return None
        from .resilience import ResilienceConfig, RetryPolicy

        retry = RetryPolicy(
            max_retries=self.retries if self.retries is not None else 3
        )
        return ResilienceConfig(
            policy=self.failure_policy or "retry_then_raise",
            retry=retry,
            timeout_s=self.task_timeout_s,
        )

    def checkpoint(self, run_key: Any = "default") -> "CheckpointJournal | None":
        """The resume journal for one logical run (``None`` = off).

        *run_key* digests into the journal's run id, so resuming only
        ever restores chunks journaled by an identical invocation.
        Without ``resume`` the journal starts clean.
        """
        if not self.checkpoint_dir:
            return None
        from .cache import CheckpointJournal

        run_id = hashlib.sha256(repr(run_key).encode()).hexdigest()[:16]
        journal = CheckpointJournal(self.checkpoint_dir, run_id)
        if not self.resume:
            journal.clear()
        return journal

    def resolve(self, run_key: Any = "default") -> "Executor":
        """Build the configured executor, resilience and journal attached."""
        from .executor import resolve_executor

        return resolve_executor(
            self.executor,
            resilience=self.resilience(),
            checkpoint=self.checkpoint(run_key),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form for model persistence (executor as its spec)."""
        executor = self.executor
        if executor is not None and not isinstance(executor, str):
            # A live executor instance is session state, not
            # configuration; persist its spec string instead.
            workers = getattr(executor, "max_workers", None)
            name = getattr(executor, "name", "serial")
            executor = f"{name}:{workers}" if workers else name
        return {
            "executor": executor,
            "dispatch": self.dispatch,
            "chunk_size": self.chunk_size,
            "retries": self.retries,
            "task_timeout_s": self.task_timeout_s,
            "failure_policy": self.failure_policy,
            "checkpoint_dir": self.checkpoint_dir,
            "resume": self.resume,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RuntimeConfig":
        return cls(
            executor=payload.get("executor"),
            dispatch=payload.get("dispatch", "auto"),
            chunk_size=payload.get("chunk_size", "auto"),
            retries=payload.get("retries"),
            task_timeout_s=payload.get("task_timeout_s"),
            failure_policy=payload.get("failure_policy"),
            checkpoint_dir=payload.get("checkpoint_dir"),
            resume=bool(payload.get("resume", False)),
        )

    def with_(self, **changes) -> "RuntimeConfig":
        """A copy with *changes* applied (convenience over ``replace``)."""
        return replace(self, **changes)


@dataclass
class ResolvedRuntime:
    """A :class:`RuntimeConfig` plus the live executor it resolved to.

    ``owned`` records whether *this* resolution created the executor —
    only owned executors are closed by :meth:`close`, so passing a
    caller-managed executor through the facade never shuts it down
    underneath them.
    """

    executor: "Executor"
    config: RuntimeConfig
    owned: bool = False

    def close(self) -> None:
        if self.owned:
            self.executor.close()
            self.owned = False


def resolve_runtime(
    value: "ResolvedRuntime | RuntimeConfig | Executor | str | None",
    run_key: Any = "default",
) -> ResolvedRuntime:
    """Normalise any accepted ``runtime=`` spelling to a resolved pair.

    Accepts an already-resolved runtime (returned unchanged, so the
    facade can resolve once and thread the result through internal
    layers), a :class:`RuntimeConfig`, a bare executor instance, a spec
    string (``"process:4"``), or ``None`` for the defaults.
    """
    if isinstance(value, ResolvedRuntime):
        return value
    from .executor import Executor

    if value is None or isinstance(value, str):
        config = RuntimeConfig(executor=value)
        return ResolvedRuntime(config.resolve(run_key), config, owned=True)
    if isinstance(value, RuntimeConfig):
        executor = value.executor
        owned = executor is None or isinstance(executor, str)
        return ResolvedRuntime(value.resolve(run_key), value, owned=owned)
    if isinstance(value, Executor):
        return ResolvedRuntime(value, RuntimeConfig(), owned=False)
    raise TypeError(f"cannot resolve a runtime from {value!r}")


# ----------------------------------------------------------------------
def record_stage_cost(stage: str, wall_s: float, n_items: int) -> None:
    """Record one fan-out's measured per-item cost for *stage*.

    Observed unconditionally (parent side, one call per fan-out), unlike
    the trace-gated ``task_latency_s`` histograms — this is the feedback
    signal :func:`cost_aware_block` sizes the *next* dispatch from.
    """
    if n_items > 0 and wall_s >= 0.0:
        observe(f"{_COST_PREFIX}{stage}", wall_s / n_items)


def cost_aware_block(
    n_items: int,
    n_workers: int,
    stage: str,
    *,
    fallback_divisor: int = 64,
) -> int:
    """Items per dispatched block, sized from measured per-item cost.

    With enough cost observations for *stage*, the block targets
    ``_TARGET_BLOCK_SECONDS`` of work; otherwise the legacy
    ``n_items // fallback_divisor`` heuristic applies.  Either way the
    block is capped so every worker sees at least ~4 blocks (load
    balancing) and floored at 1.
    """
    if n_items <= 0:
        return 1
    balance_cap = max(1, -(-n_items // (4 * max(1, n_workers))))
    hist = get_metrics().histogram(f"{_COST_PREFIX}{stage}")
    if hist is not None and hist.count >= _MIN_COST_SAMPLES and hist.mean > 0:
        ideal = max(1, int(_TARGET_BLOCK_SECONDS / hist.mean))
    else:
        ideal = max(1, n_items // fallback_divisor)
    return min(ideal, balance_cap) if n_workers > 1 else ideal
