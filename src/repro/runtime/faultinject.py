"""Deterministic fault injection for the execution runtime.

Retry, timeout and pool-recovery paths are only trustworthy if they can
be exercised *reproducibly*: a chaos test that crashes a random worker
on a random run proves nothing when it goes green.  This module injects
faults from the same seeded derivation discipline the rest of the
runtime uses (:mod:`repro.runtime.seeding`): each task's fault fate is a
pure function of ``(spec.seed, task payload)``, derived through a
``numpy.random.SeedSequence`` keyed on a content digest of the task's
item.  The schedule therefore does not depend on the executor, the
worker count, the chunking, or which attempt ran where — which is what
lets the chaos suite assert that serial and process backends produce
bit-identical results under every injected-fault mode.

Fault modes (mutually exclusive per task, selected by rate bands):

``crash``
    Kills the worker process (``os._exit``) mid-chunk; under the serial
    backend — which has no separate process to kill — it raises
    :class:`InjectedCrash` so the failure accounting is identical.
``hang``
    Sleeps ``hang_s`` inside a worker so the parent's preemptive
    timeout fires and the pool is respawned; serially it raises
    :class:`InjectedHang` (a ``TimeoutError``) at once, matching the
    post-hoc timeout semantics the serial backend documents.
``slow``
    Sleeps ``slow_s`` and then runs normally — a latency fault, not a
    failure.
``exception``
    Raises :class:`InjectedFault` — a plain flaky task error.

A faulty task misbehaves for its first ``faults_per_task`` executions
and then succeeds, so the recovery guarantee is testable: with
``max_retries >= faults_per_task`` every injected run must converge to
the fault-free result.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
    "wrap_faults",
]


class InjectedFault(RuntimeError):
    """Flaky-task exception raised by the ``exception`` fault mode."""


class InjectedCrash(RuntimeError):
    """Serial-backend stand-in for a worker process dying mid-chunk."""


class InjectedHang(TimeoutError):
    """Serial-backend stand-in for a task hanging past its timeout."""


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault-injection schedule.

    Rates are per-task probabilities and must sum to at most 1; a task
    draws one uniform variate from its spawned stream and the bands
    ``[0, crash) [crash, crash+hang) ...`` select its (fixed) fate.

    Attributes
    ----------
    crash_rate / hang_rate / slow_rate / exception_rate:
        Probability of each fault mode per task.
    faults_per_task:
        How many executions of a faulty task misbehave before it
        succeeds; retries beyond this always recover.
    slow_s:
        Added latency of the ``slow`` mode.
    hang_s:
        Worker-side sleep of the ``hang`` mode (set the executor
        timeout below this to exercise pool recovery).
    seed:
        Root entropy of the schedule.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    exception_rate: float = 0.0
    faults_per_task: int = 1
    slow_s: float = 0.005
    hang_s: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        rates = (
            self.crash_rate,
            self.hang_rate,
            self.slow_rate,
            self.exception_rate,
        )
        if any(r < 0.0 for r in rates) or sum(rates) > 1.0 + 1e-12:
            raise ValueError(
                "fault rates must be non-negative and sum to at most 1"
            )
        if self.faults_per_task < 1:
            raise ValueError("faults_per_task must be >= 1")

    @property
    def total_rate(self) -> float:
        return (
            self.crash_rate
            + self.hang_rate
            + self.slow_rate
            + self.exception_rate
        )

    # ------------------------------------------------------------------
    def mode_for(self, item: Any) -> str | None:
        """The fault mode fate of *item* (``None`` = healthy).

        The decision stream is spawned from ``SeedSequence([seed, key])``
        where ``key`` digests the item's pickled payload, so it is
        identical in the parent process, a serial run, and any worker.
        """
        if self.total_rate <= 0.0:
            return None
        seq = np.random.SeedSequence([self.seed, _item_key(item)])
        draw = float(np.random.default_rng(seq).random())
        for mode, rate in (
            ("crash", self.crash_rate),
            ("hang", self.hang_rate),
            ("slow", self.slow_rate),
            ("exception", self.exception_rate),
        ):
            if draw < rate:
                return mode
            draw -= rate
        return None


def _item_key(item: Any) -> int:
    """Stable content key of a task item (executor-independent)."""
    try:
        payload = pickle.dumps(item, protocol=4)
    except Exception:  # unpicklable items: fall back to repr
        payload = repr(item).encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class _FaultyTask:
    """Picklable wrapper injecting faults around a task callable."""

    fn: Callable[[Any], Any]
    spec: FaultSpec
    attempt: int

    def __call__(self, item: Any) -> Any:
        spec = self.spec
        mode = spec.mode_for(item)
        if mode is not None and self.attempt < spec.faults_per_task:
            if mode == "crash":
                if _in_worker_process():
                    os._exit(17)
                raise InjectedCrash(
                    f"injected worker crash (attempt {self.attempt})"
                )
            if mode == "hang":
                if _in_worker_process():
                    # Outlive the parent's timeout so the hung worker
                    # has to be killed, then fail in case it was not.
                    time.sleep(spec.hang_s)
                raise InjectedHang(
                    f"injected hang (attempt {self.attempt})"
                )
            if mode == "exception":
                raise InjectedFault(
                    f"injected flaky exception (attempt {self.attempt})"
                )
            time.sleep(spec.slow_s)  # "slow": delay, then run normally
        return self.fn(item)


def wrap_faults(
    fn: Callable[[Any], Any], spec: "FaultSpec | None", attempt: int
) -> Callable[[Any], Any]:
    """Wrap *fn* with *spec*'s schedule for one execution attempt.

    With no spec (the production path) *fn* is returned untouched, so
    fault injection costs nothing unless explicitly enabled.
    """
    if spec is None or spec.total_rate <= 0.0:
        return fn
    return _FaultyTask(fn=fn, spec=spec, attempt=attempt)
