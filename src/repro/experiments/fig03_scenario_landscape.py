"""Figure 3 — the co-location scenario landscape of the datacenter.

(a) Machine occupancy across all scenarios, sorted by total occupancy:
    step-like because jobs are fixed-size containers, with a wide HP/LP
    mix spread.
(b) Feature 1's per-scenario impact next to the HP jobs' LLC MPKI, sorted
    by impact: the impact correlates with *no* single metric — the
    motivation for systematic (PCA + clustering) behaviour extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import FEATURE_1_CACHE, Feature
from ..reporting.tables import render_table
from .context import ExperimentContext

__all__ = ["Fig03aResult", "Fig03bResult", "run_occupancy", "run_impact_vs_mpki"]


@dataclass(frozen=True)
class Fig03aResult:
    """Occupancy landscape (Figure 3a series, sorted by occupancy)."""

    total_occupancy: np.ndarray
    hp_occupancy: np.ndarray
    lp_occupancy: np.ndarray

    @property
    def n_scenarios(self) -> int:
        return self.total_occupancy.shape[0]

    @property
    def distinct_levels(self) -> int:
        """Distinct total-occupancy levels (the visible "steps")."""
        return int(np.unique(np.round(self.total_occupancy, 6)).size)

    def render(self, bins: int = 10) -> str:
        """Histogram-style text summary of the occupancy distribution."""
        edges = np.linspace(0.0, 1.0, bins + 1)
        counts, _ = np.histogram(self.total_occupancy, bins=edges)
        rows = [
            [f"{lo:.1f}-{hi:.1f}", int(count)]
            for lo, hi, count in zip(edges[:-1], edges[1:], counts)
        ]
        return render_table(
            ["occupancy", "scenarios"],
            rows,
            title="Figure 3a — machine occupancy distribution",
        )


@dataclass(frozen=True)
class Fig03bResult:
    """Per-scenario impact vs HP MPKI (Figure 3b, sorted by impact)."""

    feature: Feature
    reductions_pct: np.ndarray
    hp_llc_mpki: np.ndarray

    @property
    def pearson_r(self) -> float:
        """Correlation between impact and MPKI (the paper finds ~none)."""
        if self.reductions_pct.std() == 0.0 or self.hp_llc_mpki.std() == 0.0:
            return 0.0
        return float(
            np.corrcoef(self.reductions_pct, self.hp_llc_mpki)[0, 1]
        )

    def best_single_metric_r(
        self, context: ExperimentContext
    ) -> tuple[str, float]:
        """The single raw metric most correlated with the impact.

        Even the best metric explains the impact poorly; FLARE's point is
        that no heuristic metric selection replaces systematic analysis.
        """
        profiled = context.flare.profiled
        hp_rows = [
            i
            for i, s in enumerate(context.dataset.scenarios)
            if s.hp_instances
        ]
        matrix = profiled.matrix[hp_rows]
        best_name, best_r = "", 0.0
        for col, name in enumerate(profiled.metric_names):
            column = matrix[:, col]
            if column.std() == 0.0:
                continue
            r = float(np.corrcoef(self.reductions_pct, column)[0, 1])
            if abs(r) > abs(best_r):
                best_name, best_r = name, r
        return best_name, best_r

    def render(self) -> str:
        order = np.argsort(-self.reductions_pct)
        picks = order[:: max(1, order.size // 12)]
        rows = [
            [int(i), float(self.reductions_pct[i]), float(self.hp_llc_mpki[i])]
            for i in picks
        ]
        return render_table(
            ["scenario", "MIPS reduction %", "HP LLC MPKI"],
            rows,
            title=(
                f"Figure 3b — impact vs MPKI ({self.feature.name}), "
                f"pearson r = {self.pearson_r:.2f}"
            ),
        )


def run_occupancy(context: ExperimentContext) -> Fig03aResult:
    """Reproduce Figure 3a from the recorded scenarios."""
    shape = context.dataset.shape
    totals, hps, lps = [], [], []
    for scenario in context.dataset.scenarios:
        totals.append(scenario.occupancy(shape))
        hps.append(scenario.hp_vcpus / shape.vcpus)
        lps.append(scenario.lp_vcpus / shape.vcpus)
    order = np.argsort(totals, kind="stable")
    return Fig03aResult(
        total_occupancy=np.asarray(totals)[order],
        hp_occupancy=np.asarray(hps)[order],
        lp_occupancy=np.asarray(lps)[order],
    )


def run_impact_vs_mpki(
    context: ExperimentContext, feature: Feature = FEATURE_1_CACHE
) -> Fig03bResult:
    """Reproduce Figure 3b: impact and HP MPKI per scenario."""
    truth = context.truth(feature)
    id_to_row = {
        s.scenario_id: i for i, s in enumerate(context.dataset.scenarios)
    }
    mpki = context.flare.profiled.column("LLC-MPKI-HP")
    rows = [id_to_row[sid] for sid in truth.scenario_ids]
    return Fig03bResult(
        feature=feature,
        reductions_pct=truth.reductions_pct.copy(),
        hp_llc_mpki=mpki[rows],
    )
