"""Extension experiment: hold-out validation of the behaviour groups.

FLARE's premise is that the clustering captures *behaviours*, not the
particular scenarios that happened to be observed.  If true, a model
fitted on half the scenarios must still estimate the impact on the other
(never-seen) half accurately: classify the held-out scenarios into the
fitted groups, reweight, and compare against the held-out truth.

This is the strongest internal check of generalisation the dataset
affords — a model that merely memorised its training scenarios would fail
it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.full_datacenter import evaluate_full_datacenter
from ..cluster.features import PAPER_FEATURES, Feature
from ..cluster.scenario import Scenario, ScenarioDataset
from ..core.analyzer import AnalyzerConfig
from ..core.pipeline import Flare, FlareConfig
from ..reporting.tables import render_table
from .context import ExperimentContext

__all__ = ["HoldoutRow", "HoldoutResult", "split_dataset", "run"]


def split_dataset(
    dataset: ScenarioDataset,
) -> tuple[ScenarioDataset, ScenarioDataset]:
    """Deterministic even/odd split into train and held-out halves.

    Scenario ids are re-densified per half (the pipeline requires dense
    ids), preserving original instances, durations and order.
    """

    def rebuild(scenarios: list[Scenario]) -> ScenarioDataset:
        rebuilt = tuple(
            Scenario(
                scenario_id=index,
                key=s.key,
                instances=s.instances,
                n_occurrences=s.n_occurrences,
                total_duration_s=s.total_duration_s,
            )
            for index, s in enumerate(scenarios)
        )
        return ScenarioDataset(shape=dataset.shape, scenarios=rebuilt)

    train = [s for s in dataset.scenarios if s.scenario_id % 2 == 0]
    held = [s for s in dataset.scenarios if s.scenario_id % 2 == 1]
    return rebuild(train), rebuild(held)


@dataclass(frozen=True)
class HoldoutRow:
    """Generalisation numbers for one feature."""

    feature: Feature
    heldout_truth_pct: float
    train_estimate_pct: float
    reweighted_estimate_pct: float

    @property
    def train_error_pct(self) -> float:
        """Error of the train-fitted model used as-is."""
        return abs(self.train_estimate_pct - self.heldout_truth_pct)

    @property
    def reweighted_error_pct(self) -> float:
        """Error after classifying + reweighting to the held-out half."""
        return abs(self.reweighted_estimate_pct - self.heldout_truth_pct)


@dataclass(frozen=True)
class HoldoutResult:
    """Hold-out validation across the paper features."""

    n_train: int
    n_heldout: int
    rows: tuple[HoldoutRow, ...]

    def max_reweighted_error(self) -> float:
        return max(r.reweighted_error_pct for r in self.rows)

    def render(self) -> str:
        return render_table(
            ["feature", "held-out truth %", "train-model %",
             "reweighted %", "reweighted err"],
            [
                [
                    r.feature.name,
                    r.heldout_truth_pct,
                    r.train_estimate_pct,
                    r.reweighted_estimate_pct,
                    r.reweighted_error_pct,
                ]
                for r in self.rows
            ],
            title=(
                "Hold-out validation "
                f"(train {self.n_train}, held-out {self.n_heldout} scenarios)"
            ),
        )


def run(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
) -> HoldoutResult:
    """Fit on half the scenarios, estimate the never-seen half."""
    train, held = split_dataset(context.dataset)
    flare = Flare(
        FlareConfig(
            analyzer=AnalyzerConfig(
                n_clusters=min(context.n_clusters, max(2, len(train) // 4))
            )
        )
    ).fit(train)
    adapted = flare.reweight_by_classification(held)

    rows = []
    for feature in features:
        truth = evaluate_full_datacenter(held, feature)
        rows.append(
            HoldoutRow(
                feature=feature,
                heldout_truth_pct=truth.overall_reduction_pct,
                train_estimate_pct=flare.evaluate(feature).reduction_pct,
                reweighted_estimate_pct=adapted.evaluate(
                    feature
                ).reduction_pct,
            )
        )
    return HoldoutResult(
        n_train=len(train), n_heldout=len(held), rows=tuple(rows)
    )
