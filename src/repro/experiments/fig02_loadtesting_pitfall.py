"""Figure 2 — the pitfall of co-location-unaware load-testing.

For each HP service and Feature 1 (cache sizing), compare the MIPS
reduction predicted by a conventional single-service load-testing
benchmark against the in-datacenter truth (mean ± std over every scenario
hosting the service).  The paper's point: the two deviate substantially
because load-testing sees no interference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.full_datacenter import per_job_scenario_reductions
from ..baselines.loadtesting import load_test_job
from ..cluster.features import FEATURE_1_CACHE, Feature
from ..reporting.tables import render_table
from ..workloads import HP_JOB_NAMES, hp_job
from .context import ExperimentContext

__all__ = ["Fig02Row", "Fig02Result", "run"]


@dataclass(frozen=True)
class Fig02Row:
    """One HP service's bar pair in Figure 2."""

    job_name: str
    loadtest_reduction_pct: float
    datacenter_reduction_pct: float
    datacenter_std_pct: float

    @property
    def deviation_pct(self) -> float:
        """Absolute gap between the load-testing estimate and the truth."""
        return abs(self.loadtest_reduction_pct - self.datacenter_reduction_pct)


@dataclass(frozen=True)
class Fig02Result:
    """All Figure 2 bars for one feature."""

    feature: Feature
    rows: tuple[Fig02Row, ...]

    @property
    def mean_deviation_pct(self) -> float:
        return sum(r.deviation_pct for r in self.rows) / len(self.rows)

    @property
    def max_deviation_pct(self) -> float:
        return max(r.deviation_pct for r in self.rows)

    def render(self) -> str:
        return render_table(
            ["job", "load-testing %", "datacenter %", "dc std", "deviation"],
            [
                [
                    r.job_name,
                    r.loadtest_reduction_pct,
                    r.datacenter_reduction_pct,
                    r.datacenter_std_pct,
                    r.deviation_pct,
                ]
                for r in self.rows
            ],
            title=f"Figure 2 — load-testing vs datacenter ({self.feature.name})",
        )


def run(
    context: ExperimentContext, feature: Feature = FEATURE_1_CACHE
) -> Fig02Result:
    """Reproduce Figure 2 for *feature* (the paper uses Feature 1)."""
    shape = context.dataset.shape
    rows = []
    for job_name in HP_JOB_NAMES:
        bench = load_test_job(shape, hp_job(job_name), feature)
        truth = per_job_scenario_reductions(context.dataset, feature, job_name)
        rows.append(
            Fig02Row(
                job_name=job_name,
                loadtest_reduction_pct=bench.reduction_pct,
                datacenter_reduction_pct=truth.mean_reduction_pct,
                datacenter_std_pct=truth.std_reduction_pct,
            )
        )
    return Fig02Result(feature=feature, rows=tuple(rows))
