"""Ablations of FLARE's design choices.

The paper motivates several choices without isolating each one; these
ablations quantify them on our substrate:

* **PCA before clustering** vs clustering the standardised raw metrics;
* **whitening** the retained PCs vs using raw PC scores;
* **K-means** vs agglomerative (hierarchical) clustering — the §4.4
  "alternatives can also be applied" note;
* **nearest-to-centroid representatives** vs a random group member;
* **group-size weighting** vs uniform weighting of representatives;
* the **correlation-pruning threshold** (step 1);
* **cluster-count sensitivity** (§5.4: more clusters ≠ better).

Every variant is scored by its absolute all-job estimation error against
the full-datacenter truth, averaged (and worst-cased) over the three
Table 4 features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import PAPER_FEATURES, Feature
from ..core.analyzer import AnalysisResult, Analyzer
from ..core.estimation import estimate_all_job_impact
from ..core.refinement import refine
from ..core.representatives import (
    ClusterGroup,
    RepresentativeSet,
    extract_representatives,
)
from ..reporting.tables import render_table
from ..stats.hierarchy import AgglomerativeClustering
from ..stats.kmeans import KMeans, KMeansResult
from ..stats.preprocessing import StandardScaler
from .context import ExperimentContext

__all__ = [
    "AblationRow",
    "AblationReport",
    "run_pipeline_variants",
    "run_threshold_sweep",
    "run_k_sensitivity",
]


@dataclass(frozen=True)
class AblationRow:
    """One pipeline variant's estimation quality."""

    variant: str
    errors_pct: dict[str, float]

    @property
    def mean_error_pct(self) -> float:
        return sum(self.errors_pct.values()) / len(self.errors_pct)

    @property
    def max_error_pct(self) -> float:
        return max(self.errors_pct.values())


@dataclass(frozen=True)
class AblationReport:
    """A set of ablation rows plus rendering."""

    title: str
    rows: tuple[AblationRow, ...]

    def row(self, variant: str) -> AblationRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(f"no variant {variant!r}")

    def render(self) -> str:
        features = sorted(self.rows[0].errors_pct)
        headers = ["variant"] + features + ["mean", "max"]
        body = [
            [row.variant]
            + [row.errors_pct[f] for f in features]
            + [row.mean_error_pct, row.max_error_pct]
            for row in self.rows
        ]
        return render_table(headers, body, title=self.title)


def _score_representatives(
    context: ExperimentContext,
    representatives: RepresentativeSet,
    features: tuple[Feature, ...],
) -> dict[str, float]:
    """Absolute all-job estimation error per feature for a variant."""
    replayer = context.flare.replayer
    errors = {}
    for feature in features:
        truth = context.truth(feature).overall_reduction_pct
        estimate = estimate_all_job_impact(representatives, replayer, feature)
        errors[feature.name] = abs(estimate.reduction_pct - truth)
    return errors


def _analysis_with(
    base: AnalysisResult,
    *,
    scores: np.ndarray | None = None,
    kmeans: KMeansResult | None = None,
    cluster_weights: np.ndarray | None = None,
) -> AnalysisResult:
    """Copy an analysis, overriding the clustering-relevant pieces."""
    return AnalysisResult(
        refined=base.refined,
        scaler=base.scaler,
        pca=base.pca,
        n_components=base.n_components,
        scores=scores if scores is not None else base.scores,
        score_mean=base.score_mean,
        score_std=base.score_std,
        sweep=None,
        kmeans=kmeans if kmeans is not None else base.kmeans,
        cluster_weights=(
            cluster_weights
            if cluster_weights is not None
            else base.cluster_weights
        ),
    )


def _cluster_and_extract(
    context: ExperimentContext, scores: np.ndarray, *, seed: int = 0
) -> RepresentativeSet:
    """K-means + weight + extract on an alternative score space."""
    base = context.flare.analysis
    kmeans = KMeans(
        base.n_clusters, n_init=8, seed=np.random.default_rng(seed)
    ).fit(scores)
    weights = kmeans.cluster_weights(
        sample_weight=context.dataset.weights()
    )
    analysis = _analysis_with(
        base, scores=scores, kmeans=kmeans, cluster_weights=weights
    )
    return extract_representatives(analysis, context.dataset)


def run_pipeline_variants(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
    *,
    seed: int = 0,
) -> AblationReport:
    """Score the paper pipeline against its ablated variants."""
    flare = context.flare
    base_analysis = flare.analysis
    refined = flare.refined
    rows = []

    # 1. The paper's pipeline as fitted.
    rows.append(
        AblationRow(
            "paper (PCA+whiten+kmeans)",
            _score_representatives(context, flare.representatives, features),
        )
    )

    # 2. No PCA: cluster the standardised refined metrics directly.
    standardised = StandardScaler().fit_transform(refined.matrix)
    reps = _cluster_and_extract(context, standardised, seed=seed)
    rows.append(
        AblationRow(
            "no-pca (standardised raw metrics)",
            _score_representatives(context, reps, features),
        )
    )

    # 3. No whitening: raw PC scores keep their variance imbalance.
    raw_scores = (
        base_analysis.scaler.transform(refined.matrix)
        @ base_analysis.pca.components[: base_analysis.n_components].T
    )
    reps = _cluster_and_extract(context, raw_scores, seed=seed)
    rows.append(
        AblationRow(
            "no-whiten (raw PC scores)",
            _score_representatives(context, reps, features),
        )
    )

    # 4. Hierarchical clustering instead of K-means.
    agg = AgglomerativeClustering(
        base_analysis.n_clusters, linkage="average"
    ).fit(base_analysis.scores)
    agg_kmeans = KMeansResult(
        centroids=agg.centroids,
        labels=agg.labels,
        inertia=agg.inertia,
        n_iter=0,
        converged=True,
    )
    weights = agg_kmeans.cluster_weights(
        sample_weight=context.dataset.weights()
    )
    analysis = _analysis_with(
        base_analysis, kmeans=agg_kmeans, cluster_weights=weights
    )
    reps = extract_representatives(analysis, context.dataset)
    rows.append(
        AblationRow(
            "hierarchical (average linkage)",
            _score_representatives(context, reps, features),
        )
    )

    # 5. Random member instead of nearest-to-centroid representative.
    rng = np.random.default_rng(seed)
    shuffled_groups = []
    for group in flare.representatives.groups:
        order = list(group.ranked_members)
        rng.shuffle(order)
        shuffled_groups.append(
            ClusterGroup(
                cluster_id=group.cluster_id,
                weight=group.weight,
                centroid=group.centroid,
                ranked_members=tuple(order),
            )
        )
    reps = RepresentativeSet(
        dataset=context.dataset, groups=tuple(shuffled_groups)
    )
    rows.append(
        AblationRow(
            "random-representative",
            _score_representatives(context, reps, features),
        )
    )

    # 6. Uniform group weights instead of observation-time weights.
    n = len(flare.representatives)
    uniform_groups = tuple(
        ClusterGroup(
            cluster_id=g.cluster_id,
            weight=1.0 / n,
            centroid=g.centroid,
            ranked_members=g.ranked_members,
        )
        for g in flare.representatives.groups
    )
    reps = RepresentativeSet(dataset=context.dataset, groups=uniform_groups)
    rows.append(
        AblationRow(
            "uniform-weights",
            _score_representatives(context, reps, features),
        )
    )

    return AblationReport(
        title="Ablation — pipeline variants (abs. all-job error, pp)",
        rows=tuple(rows),
    )


def run_threshold_sweep(
    context: ExperimentContext,
    thresholds: tuple[float, ...] = (0.999, 0.98, 0.9, 0.8),
    features: tuple[Feature, ...] = PAPER_FEATURES,
) -> list[tuple[float, int, float]]:
    """Correlation-pruning threshold vs kept metrics vs mean error.

    Returns ``(threshold, kept_metric_count, mean_error_pct)`` rows.
    """
    config = context.flare.config
    rows = []
    for threshold in thresholds:
        refined = refine(context.flare.profiled, threshold=threshold)
        analysis = Analyzer(config.analyzer).analyze(refined)
        reps = extract_representatives(analysis, context.dataset)
        errors = _score_representatives(context, reps, features)
        rows.append(
            (
                threshold,
                refined.n_metrics,
                sum(errors.values()) / len(errors),
            )
        )
    return rows


def run_k_sensitivity(
    context: ExperimentContext,
    cluster_counts: tuple[int, ...] = (6, 12, 18, 24, 36),
    features: tuple[Feature, ...] = PAPER_FEATURES,
) -> list[tuple[int, float]]:
    """Cluster count vs mean estimation error (paper §5.4).

    Returns ``(k, mean_error_pct)`` rows; the paper observes that raising
    k beyond the knee does not materially improve estimates.
    """
    base = context.flare.analysis
    rows = []
    for k in cluster_counts:
        kmeans = KMeans(k, n_init=8, seed=np.random.default_rng(1)).fit(
            base.scores
        )
        weights = kmeans.cluster_weights(
            sample_weight=context.dataset.weights()
        )
        analysis = _analysis_with(
            base, kmeans=kmeans, cluster_weights=weights
        )
        reps = extract_representatives(analysis, context.dataset)
        errors = _score_representatives(context, reps, features)
        rows.append((k, sum(errors.values()) / len(errors)))
    return rows
