"""Figure 8 — interpreting the high-level metrics.

For every retained PC, list the dominant raw metrics with their signs and
the auto-generated interpretation label.  The paper highlights that both
machine-scope and HP-scope counters contribute — a trait unique to
two-level co-location profiling — which this experiment also verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.interpretation import ComponentInterpretation
from ..telemetry.metrics import MetricLevel
from .context import ExperimentContext

__all__ = ["Fig08Result", "run"]


@dataclass(frozen=True)
class Fig08Result:
    """The labelled high-level metrics of the fitted pipeline."""

    interpretations: tuple[ComponentInterpretation, ...]

    @property
    def n_components(self) -> int:
        return len(self.interpretations)

    def components_mixing_scopes(self) -> tuple[int, ...]:
        """PCs whose dominant loadings span machine and HP scopes.

        These are the paper's "interesting traits unique to co-location
        environments" (e.g. PC10: HP memory-bound on a machine that is
        not backend-bound overall).
        """
        mixed = []
        for interp in self.interpretations:
            levels = {
                entry.spec.level
                for entry in interp.top_loadings
                if entry.spec.level is not None
            }
            if {MetricLevel.MACHINE, MetricLevel.HP} <= levels:
                mixed.append(interp.index)
        return tuple(mixed)

    def render(self) -> str:
        lines = ["Figure 8 — high-level metric interpretations"]
        lines.extend(interp.describe() for interp in self.interpretations)
        mixed = self.components_mixing_scopes()
        lines.append(
            f"{len(mixed)}/{self.n_components} PCs mix machine- and "
            f"HP-scope metrics: {list(mixed)}"
        )
        return "\n".join(lines)


def run(context: ExperimentContext) -> Fig08Result:
    """Reproduce Figure 8 from the fitted pipeline."""
    return Fig08Result(interpretations=context.flare.interpretations)
