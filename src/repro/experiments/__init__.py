"""Paper-experiment regeneration: one module per evaluation figure.

Every module exposes ``run(context, ...)`` returning a typed result with a
``render()`` method that prints the same rows/series the paper reports.
Build a context with :func:`get_context` (``scale="paper"`` for the full
895-scenario / 18-cluster setup).
"""

from . import (
    ablations,
    fig01_landscape,
    fig02_loadtesting_pitfall,
    fig03_scenario_landscape,
    fig07_pca_variance,
    fig08_pc_interpretation,
    fig09_cluster_selection,
    fig10_cluster_radar,
    fig11_cluster_impacts,
    fig12_accuracy,
    fig13_cost_accuracy,
    fig14_heterogeneous,
    holdout,
    sampling_strategies,
    sec56_scheduler_change,
    stability,
)
from .context import ExperimentContext, get_context

__all__ = [
    "ExperimentContext",
    "get_context",
    "ablations",
    "fig01_landscape",
    "fig02_loadtesting_pitfall",
    "fig03_scenario_landscape",
    "fig07_pca_variance",
    "fig08_pc_interpretation",
    "fig09_cluster_selection",
    "fig10_cluster_radar",
    "fig11_cluster_impacts",
    "fig12_accuracy",
    "fig13_cost_accuracy",
    "fig14_heterogeneous",
    "holdout",
    "sampling_strategies",
    "stability",
    "sec56_scheduler_change",
]
