"""Figure 12 — estimation accuracy: datacenter truth vs sampling vs FLARE.

(a) All-job impact: the truth, 1,000 random-sampling trials at FLARE's
    cost (one sample per representative), and FLARE's single estimate.
(b) Per-job impact: truth, sampling 95 % confidence interval, and FLARE's
    per-job estimate (with the next-nearest-scenario fallback).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.sampling import evaluate_by_sampling, evaluate_job_by_sampling
from ..cluster.features import PAPER_FEATURES, Feature
from ..reporting.tables import render_table
from ..stats.sampling import DistributionSummary, percentile_interval
from ..workloads import HP_JOB_NAMES
from .context import ExperimentContext

__all__ = [
    "Fig12aRow",
    "Fig12bRow",
    "Fig12Result",
    "run_all_job",
    "run_per_job",
    "run",
]


@dataclass(frozen=True)
class Fig12aRow:
    """One feature's violin/box/FLARE triple in Figure 12a."""

    feature: Feature
    truth_pct: float
    flare_pct: float
    sampling: DistributionSummary
    sampling_ci95: tuple[float, float]

    @property
    def flare_error_pct(self) -> float:
        return abs(self.flare_pct - self.truth_pct)

    @property
    def sampling_max_error_pct(self) -> float:
        return max(
            abs(self.sampling.minimum - self.truth_pct),
            abs(self.sampling.maximum - self.truth_pct),
        )


@dataclass(frozen=True)
class Fig12bRow:
    """One (feature, job) cell in Figure 12b."""

    feature: Feature
    job_name: str
    truth_pct: float
    flare_pct: float
    sampling_mean_pct: float
    sampling_ci95: tuple[float, float]

    @property
    def flare_error_pct(self) -> float:
        return abs(self.flare_pct - self.truth_pct)


@dataclass(frozen=True)
class Fig12Result:
    """Both panels of Figure 12."""

    all_job: tuple[Fig12aRow, ...]
    per_job: tuple[Fig12bRow, ...]

    def max_flare_all_job_error(self) -> float:
        return max(r.flare_error_pct for r in self.all_job)

    def render(self) -> str:
        a = render_table(
            ["feature", "truth %", "FLARE %", "FLARE err",
             "samp q1", "samp q3", "samp max err"],
            [
                [
                    r.feature.name,
                    r.truth_pct,
                    r.flare_pct,
                    r.flare_error_pct,
                    r.sampling.q1,
                    r.sampling.q3,
                    r.sampling_max_error_pct,
                ]
                for r in self.all_job
            ],
            title="Figure 12a — all-job impact",
        )
        b = render_table(
            ["feature", "job", "truth %", "FLARE %", "samp mean %",
             "samp CI low", "samp CI high"],
            [
                [
                    r.feature.name,
                    r.job_name,
                    r.truth_pct,
                    r.flare_pct,
                    r.sampling_mean_pct,
                    r.sampling_ci95[0],
                    r.sampling_ci95[1],
                ]
                for r in self.per_job
            ],
            title="Figure 12b — per-job impact",
        )
        return a + "\n\n" + b


def run_all_job(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
    *,
    n_trials: int = 1000,
    seed: int = 0,
) -> tuple[Fig12aRow, ...]:
    """Reproduce Figure 12a (sampling cost = FLARE's cluster count)."""
    sample_size = context.n_clusters
    rows = []
    for feature in features:
        truth = context.truth(feature)
        flare_estimate = context.flare.evaluate(
            feature, executor=context.executor
        )
        sampling = evaluate_by_sampling(
            context.dataset,
            feature,
            sample_size=sample_size,
            n_trials=n_trials,
            seed=seed,
            truth=truth,
            executor=context.executor,
        )
        rows.append(
            Fig12aRow(
                feature=feature,
                truth_pct=truth.overall_reduction_pct,
                flare_pct=flare_estimate.reduction_pct,
                sampling=sampling.trials.summary(),
                sampling_ci95=percentile_interval(
                    sampling.trials.estimates, confidence=0.95
                ),
            )
        )
    return tuple(rows)


def run_per_job(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
    jobs: tuple[str, ...] = HP_JOB_NAMES,
    *,
    n_trials: int = 1000,
    seed: int = 0,
) -> tuple[Fig12bRow, ...]:
    """Reproduce Figure 12b."""
    sample_size = context.n_clusters
    rows = []
    for feature in features:
        truth = context.truth(feature)
        for job_name in jobs:
            if job_name not in truth.per_job:
                continue
            flare_estimate = context.flare.evaluate_job(
                feature, job_name, executor=context.executor
            )
            sampling = evaluate_job_by_sampling(
                context.dataset,
                feature,
                job_name,
                sample_size=sample_size,
                n_trials=n_trials,
                seed=seed,
                executor=context.executor,
            )
            rows.append(
                Fig12bRow(
                    feature=feature,
                    job_name=job_name,
                    truth_pct=truth.per_job[job_name],
                    flare_pct=flare_estimate.reduction_pct,
                    sampling_mean_pct=sampling.mean_estimate,
                    sampling_ci95=percentile_interval(
                        sampling.trials.estimates, confidence=0.95
                    ),
                )
            )
    return tuple(rows)


def run(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
    *,
    n_trials: int = 1000,
    seed: int = 0,
) -> Fig12Result:
    """Reproduce both panels of Figure 12."""
    return Fig12Result(
        all_job=run_all_job(context, features, n_trials=n_trials, seed=seed),
        per_job=run_per_job(context, features, n_trials=n_trials, seed=seed),
    )
