"""Shared experiment context: one datacenter run + one fitted FLARE model.

Every figure of the evaluation section is derived from the same collected
dataset and fitted pipeline, so experiments share an
:class:`ExperimentContext`.  Contexts are memoised per (scale, seed): the
``"paper"`` scale reproduces the paper's 895-scenario / 18-cluster setup;
the ``"small"`` scale is a fast variant for tests and quick iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..baselines.full_datacenter import DatacenterTruth, evaluate_full_datacenter
from ..cluster.features import Feature
from ..cluster.scenario import ScenarioDataset
from ..cluster.simulation import DatacenterConfig, SimulationResult, run_simulation
from ..core.analyzer import AnalyzerConfig
from ..core.pipeline import Flare, FlareConfig
from ..runtime.cache import default_cache
from ..runtime.executor import Executor, resolve_executor

__all__ = ["ExperimentScale", "ExperimentContext", "get_context"]

#: Named experiment scales: (target scenarios, clusters, k-sweep grid).
_SCALES: dict[str, tuple[int, int, tuple[int, ...]]] = {
    "paper": (895, 18, tuple(range(2, 41, 2))),
    "small": (160, 8, tuple(range(2, 17, 2))),
}

ExperimentScale = str


@dataclass
class ExperimentContext:
    """A datacenter run, its fitted FLARE model, and cached truths.

    ``executor`` is the shared execution backend every experiment module
    dispatches its fan-out work (sampling trials, replays) on.  It
    defaults to the environment-selected executor (``REPRO_EXECUTOR``)
    and is a pure performance knob — figures are identical under any
    executor.
    """

    scale: str
    seed: int
    simulation: SimulationResult
    flare: Flare
    executor: Executor = field(default_factory=resolve_executor)

    def __post_init__(self) -> None:
        self._truths: dict[tuple[str, int], DatacenterTruth] = {}

    def use_executor(
        self,
        spec: "Executor | str | None",
        *,
        resilience=None,
        checkpoint=None,
    ) -> "ExperimentContext":
        """Switch the shared executor (accepts specs like ``process:4``).

        ``resilience`` attaches a
        :class:`~repro.runtime.resilience.ResilienceConfig` (timeouts,
        retries, failure policy) and ``checkpoint`` a
        :class:`~repro.runtime.cache.CheckpointJournal` — the resume
        state behind CLI ``--resume`` — to the shared executor, so every
        experiment fan-out in this context runs under the same failure
        model.
        """
        self.executor = resolve_executor(
            spec, resilience=resilience, checkpoint=checkpoint
        )
        return self

    @property
    def dataset(self) -> ScenarioDataset:
        return self.simulation.dataset

    @property
    def n_clusters(self) -> int:
        return self.flare.analysis.n_clusters

    def truth(self, feature: Feature) -> DatacenterTruth:
        """Full-datacenter evaluation of *feature* (memoised)."""
        from ..obs import span

        key = (feature.name, id(self.dataset))
        if key not in self._truths:
            with span(
                "experiment.truth",
                feature=feature.name,
                n_scenarios=len(self.dataset),
            ):
                self._truths[key] = evaluate_full_datacenter(
                    self.dataset, feature
                )
        return self._truths[key]


@lru_cache(maxsize=8)
def get_context(scale: str = "paper", seed: int = 2023) -> ExperimentContext:
    """Build (or fetch) the memoised context for *scale* and *seed*."""
    try:
        target, n_clusters, sweep = _SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(_SCALES)}"
        ) from None

    from ..obs import span

    with span("experiment.context", scale=scale, seed=seed):
        config = DatacenterConfig(seed=seed, target_unique_scenarios=target)
        with span("experiment.simulate", n_scenarios=target):
            simulation = run_simulation(config)
        flare_config = FlareConfig(
            analyzer=AnalyzerConfig(n_clusters=n_clusters, cluster_counts=sweep)
        )
        # Digest-keyed cache: repeated contexts (and other callers fitting the
        # same config on the same dataset) share one deterministic fit, and a
        # REPRO_CACHE_DIR-backed disk layer survives across processes.
        flare = default_cache().get_fitted(flare_config, simulation.dataset)
    return ExperimentContext(
        scale=scale, seed=seed, simulation=simulation, flare=flare
    )
