"""Figure 14 / §5.5 — handling a new machine shape.

(a) Representatives do not transfer across shapes: many co-locations
    recorded on the default machine (48 vCPUs) simply do not fit the
    Small machine (32 vCPUs), and those that fit occupy it differently.
(b) Deriving a *new* representative set on the Small-shape datacenter
    restores accuracy: per-job Feature 2 estimates from FLARE-on-small
    track the small-datacenter truth, while single-service load-testing
    still deviates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.full_datacenter import per_job_scenario_reductions
from ..baselines.loadtesting import load_test_job
from ..cluster.features import FEATURE_2_DVFS, Feature
from ..cluster.machine import SMALL_SHAPE, MachineShape
from ..cluster.simulation import DatacenterConfig, run_simulation
from ..core.analyzer import AnalyzerConfig
from ..core.pipeline import Flare, FlareConfig
from ..reporting.tables import render_table
from ..workloads import HP_JOB_NAMES, hp_job
from .context import ExperimentContext

__all__ = ["Fig14aResult", "Fig14bRow", "Fig14bResult", "run_transfer", "run"]


@dataclass(frozen=True)
class Fig14aResult:
    """How the default shape's scenarios map onto the Small shape."""

    n_scenarios: int
    n_infeasible: int
    mean_occupancy_default: float
    mean_occupancy_small_feasible: float

    @property
    def infeasible_fraction(self) -> float:
        return self.n_infeasible / self.n_scenarios

    def render(self) -> str:
        return (
            "Figure 14a — default-shape scenarios on the Small shape: "
            f"{self.n_infeasible}/{self.n_scenarios} "
            f"({self.infeasible_fraction:.0%}) do not fit; feasible ones "
            f"shift from {self.mean_occupancy_default:.0%} to "
            f"{self.mean_occupancy_small_feasible:.0%} mean occupancy"
        )


@dataclass(frozen=True)
class Fig14bRow:
    """One job's bars in Figure 14b."""

    job_name: str
    datacenter_pct: float
    flare_pct: float
    loadtest_pct: float

    @property
    def flare_error_pct(self) -> float:
        return abs(self.flare_pct - self.datacenter_pct)

    @property
    def loadtest_error_pct(self) -> float:
        return abs(self.loadtest_pct - self.datacenter_pct)


@dataclass(frozen=True)
class Fig14bResult:
    """Per-job Feature 2 estimates on the Small shape."""

    feature: Feature
    shape: MachineShape
    rows: tuple[Fig14bRow, ...]

    def mean_flare_error(self) -> float:
        return sum(r.flare_error_pct for r in self.rows) / len(self.rows)

    def mean_loadtest_error(self) -> float:
        return sum(r.loadtest_error_pct for r in self.rows) / len(self.rows)

    def render(self) -> str:
        return render_table(
            ["job", "datacenter %", "FLARE %", "load-testing %"],
            [
                [r.job_name, r.datacenter_pct, r.flare_pct, r.loadtest_pct]
                for r in self.rows
            ],
            title=(
                f"Figure 14b — per-job {self.feature.name} on the "
                f"{self.shape.name} shape"
            ),
        )


def run_transfer(context: ExperimentContext) -> Fig14aResult:
    """Reproduce Figure 14a: feasibility of default scenarios on Small."""
    default_shape = context.dataset.shape
    small = SMALL_SHAPE
    infeasible = 0
    occ_default, occ_small = [], []
    for scenario in context.dataset.scenarios:
        vcpus = scenario.total_vcpus
        dram = sum(inst.signature.dram_gb for inst in scenario.instances)
        occ_default.append(vcpus / default_shape.vcpus)
        if vcpus > small.vcpus or dram > small.dram_gb:
            infeasible += 1
        else:
            occ_small.append(vcpus / small.vcpus)
    return Fig14aResult(
        n_scenarios=len(context.dataset),
        n_infeasible=infeasible,
        mean_occupancy_default=sum(occ_default) / len(occ_default),
        mean_occupancy_small_feasible=(
            sum(occ_small) / len(occ_small) if occ_small else 0.0
        ),
    )


def run(
    context: ExperimentContext,
    feature: Feature = FEATURE_2_DVFS,
    *,
    seed_offset: int = 17,
) -> Fig14bResult:
    """Reproduce Figure 14b: re-derive representatives on the Small shape.

    Runs a fresh Small-shape datacenter (same user behaviour, new shape),
    fits FLARE on it, and compares per-job estimates against the small
    datacenter's truth and against load-testing.
    """
    target = {"paper": 895, "small": 160}.get(context.scale, 160)
    n_clusters = context.n_clusters
    config = DatacenterConfig(
        shape=SMALL_SHAPE,
        seed=context.seed + seed_offset,
        target_unique_scenarios=target,
    )
    simulation = run_simulation(config)
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=n_clusters))
    ).fit(simulation.dataset)

    rows = []
    for job_name in HP_JOB_NAMES:
        truth = per_job_scenario_reductions(
            simulation.dataset, feature, job_name
        )
        estimate = flare.evaluate_job(feature, job_name)
        bench = load_test_job(SMALL_SHAPE, hp_job(job_name), feature)
        rows.append(
            Fig14bRow(
                job_name=job_name,
                datacenter_pct=truth.mean_reduction_pct,
                flare_pct=estimate.reduction_pct,
                loadtest_pct=bench.reduction_pct,
            )
        )
    return Fig14bResult(feature=feature, shape=SMALL_SHAPE, rows=tuple(rows))
