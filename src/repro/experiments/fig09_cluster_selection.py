"""Figure 9 — selecting the cluster count.

Sweeps candidate k values, recording SSE (lower better) and silhouette
score (higher better), and reports the SSE-knee suggestion.  The paper
inspects this curve and picks 18 clusters as the quality/cost balance.

As an extension, the Tibshirani gap statistic can be computed alongside
(``run(..., with_gap=True)``) — a more principled criterion comparing the
observed dispersion against a uniform reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.analyzer import Analyzer, AnalyzerConfig
from ..reporting.tables import render_table
from ..stats.comparison import GapResult, gap_statistic
from ..stats.silhouette import ClusterQualitySweep, knee_point
from .context import ExperimentContext

__all__ = ["Fig09Result", "run"]


@dataclass(frozen=True)
class Fig09Result:
    """The k-sweep data plus the knee suggestion and the chosen k."""

    sweep: ClusterQualitySweep
    knee_k: int
    chosen_k: int
    gap: GapResult | None = None

    def sse_at(self, k: int) -> float:
        idx = int(np.flatnonzero(self.sweep.cluster_counts == k)[0])
        return float(self.sweep.sse[idx])

    def silhouette_at(self, k: int) -> float:
        idx = int(np.flatnonzero(self.sweep.cluster_counts == k)[0])
        return float(self.sweep.silhouette[idx])

    def render(self) -> str:
        rows = [
            [int(k), float(sse), float(sil)]
            for k, sse, sil in self.sweep.as_rows()
        ]
        suffix = ""
        if self.gap is not None:
            suffix = f", gap-statistic suggests k={self.gap.suggested_k()}"
        return render_table(
            ["k", "SSE", "silhouette"],
            rows,
            title=(
                f"Figure 9 — cluster quality sweep "
                f"(knee at k={self.knee_k}, chosen k={self.chosen_k}"
                f"{suffix})"
            ),
        )


def run(
    context: ExperimentContext,
    cluster_counts: tuple[int, ...] | None = None,
    *,
    with_gap: bool = False,
    gap_counts: tuple[int, ...] = (2, 6, 10, 14, 18, 24, 30),
    gap_references: int = 5,
) -> Fig09Result:
    """Reproduce Figure 9, re-running the sweep when the fitted pipeline
    skipped it (fixed-k configs)."""
    analysis = context.flare.analysis
    counts = (
        cluster_counts
        if cluster_counts is not None
        else context.flare.config.analyzer.cluster_counts
    )
    sweep = analysis.sweep
    if sweep is None or cluster_counts is not None:
        sweep_config = AnalyzerConfig(
            n_components=analysis.n_components,
            cluster_counts=counts,
            n_clusters=None,
            kmeans_restarts=context.flare.config.analyzer.kmeans_restarts,
            seed=context.flare.config.analyzer.seed,
        )
        sweep_analysis = Analyzer(sweep_config).analyze(context.flare.refined)
        sweep = sweep_analysis.sweep
        assert sweep is not None
    knee = knee_point(sweep.cluster_counts.astype(float), sweep.sse)
    gap = None
    if with_gap:
        gap = gap_statistic(
            analysis.scores,
            gap_counts,
            n_references=gap_references,
            seed=context.seed,
            kmeans_restarts=2,
        )
    return Fig09Result(
        sweep=sweep,
        knee_k=int(sweep.cluster_counts[knee]),
        chosen_k=analysis.n_clusters,
        gap=gap,
    )
