"""Extension experiment: stability of the behaviour groups.

FLARE's groups must reflect structure in the datacenter's behaviour, not
artefacts of the k-means seed or of measurement noise.  This experiment
quantifies both with the adjusted Rand index (ARI):

* **seed stability** — recluster the same whitened scores under different
  k-means seeds and compare partitions;
* **noise stability** — re-profile the same scenarios under a different
  measurement-noise draw, rerun the full analysis, and compare;
* **estimate stability** — the spread of the all-job estimate across the
  perturbed models (the number a deployment decision actually consumes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import FEATURE_2_DVFS, Feature
from ..core.analyzer import Analyzer
from ..core.estimation import estimate_all_job_impact
from ..core.pipeline import FlareConfig
from ..core.refinement import refine
from ..core.representatives import extract_representatives
from ..reporting.tables import render_table
from ..stats.comparison import adjusted_rand_index
from ..stats.kmeans import KMeans
from ..telemetry.profiler import Profiler
from .context import ExperimentContext

__all__ = ["StabilityResult", "run"]


@dataclass(frozen=True)
class StabilityResult:
    """Stability metrics for one fitted pipeline.

    Attributes
    ----------
    seed_ari:
        Pairwise ARI of clusterings under different k-means seeds.
    noise_ari:
        ARI between the fitted clustering and one from an independent
        measurement-noise draw.
    estimate_spread_pct:
        Max − min all-job estimate (for *feature*) across all perturbed
        models, including the original.
    feature:
        The feature used for estimate stability.
    """

    seed_ari: tuple[float, ...]
    noise_ari: float
    estimate_spread_pct: float
    feature: Feature

    @property
    def min_seed_ari(self) -> float:
        return min(self.seed_ari)

    def render(self) -> str:
        rows = [
            ["min seed ARI", self.min_seed_ari],
            ["mean seed ARI", sum(self.seed_ari) / len(self.seed_ari)],
            ["noise ARI", self.noise_ari],
            [
                f"estimate spread ({self.feature.name})",
                self.estimate_spread_pct,
            ],
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title="Clustering stability (ARI; 1.0 = identical partitions)",
        )


def run(
    context: ExperimentContext,
    feature: Feature = FEATURE_2_DVFS,
    *,
    n_seeds: int = 4,
) -> StabilityResult:
    """Measure seed / noise / estimate stability of the fitted model."""
    if n_seeds < 2:
        raise ValueError("n_seeds must be >= 2")
    flare = context.flare
    analysis = flare.analysis
    scores = analysis.scores
    k = analysis.n_clusters
    truth_free_estimates = [flare.evaluate(feature).reduction_pct]

    # --- seed stability -------------------------------------------------
    labelings = [analysis.labels]
    for seed in range(1, n_seeds):
        result = KMeans(
            k, n_init=flare.config.analyzer.kmeans_restarts,
            seed=np.random.default_rng(1000 + seed),
        ).fit(scores)
        labelings.append(result.labels)
        weights = result.cluster_weights(
            sample_weight=context.dataset.weights()
        )
        perturbed = _replace_kmeans(analysis, result, weights)
        reps = extract_representatives(perturbed, context.dataset)
        truth_free_estimates.append(
            estimate_all_job_impact(
                reps, flare.replayer, feature
            ).reduction_pct
        )
    seed_ari = tuple(
        adjusted_rand_index(labelings[0], other) for other in labelings[1:]
    )

    # --- noise stability ------------------------------------------------
    noisy_config = FlareConfig(
        refinement_threshold=flare.config.refinement_threshold,
        analyzer=flare.config.analyzer,
        noise_sigma=flare.config.noise_sigma,
        profiler_seed=flare.config.profiler_seed + 10_000,
    )
    profiled = Profiler(
        noise_sigma=noisy_config.noise_sigma, seed=noisy_config.profiler_seed
    ).profile(context.dataset)
    refined = refine(profiled, threshold=noisy_config.refinement_threshold)
    reanalysed = Analyzer(noisy_config.analyzer).analyze(refined)
    noise_ari = adjusted_rand_index(analysis.labels, reanalysed.labels)
    reps = extract_representatives(reanalysed, context.dataset)
    truth_free_estimates.append(
        estimate_all_job_impact(reps, flare.replayer, feature).reduction_pct
    )

    return StabilityResult(
        seed_ari=seed_ari,
        noise_ari=float(noise_ari),
        estimate_spread_pct=float(
            max(truth_free_estimates) - min(truth_free_estimates)
        ),
        feature=feature,
    )


def _replace_kmeans(analysis, kmeans, cluster_weights):
    from ..core.analyzer import AnalysisResult

    return AnalysisResult(
        refined=analysis.refined,
        scaler=analysis.scaler,
        pca=analysis.pca,
        n_components=analysis.n_components,
        scores=analysis.scores,
        score_mean=analysis.score_mean,
        score_std=analysis.score_std,
        sweep=None,
        kmeans=kmeans,
        cluster_weights=cluster_weights,
    )
