"""Extension experiment: how far can smarter *sampling* get?

The paper compares FLARE against naive random sampling; a natural
objection is "just stratify your samples".  This experiment pits, at
identical evaluation cost:

* naive random sampling,
* occupancy-stratified sampling,
* HP-cache-pressure-stratified sampling,
* FLARE,

against the full-datacenter truth.  Per §3.2's no-single-metric finding,
stratifying on one intuitive metric narrows the spread only modestly —
FLARE's multi-metric behaviour grouping remains necessary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.sampling import evaluate_by_sampling
from ..baselines.stratified import evaluate_by_stratified_sampling
from ..cluster.features import FEATURE_2_DVFS, Feature
from ..reporting.tables import render_table
from .context import ExperimentContext

__all__ = ["StrategyRow", "SamplingStrategiesResult", "run"]


@dataclass(frozen=True)
class StrategyRow:
    """One estimation strategy's quality at fixed cost."""

    strategy: str
    mean_abs_error_pct: float
    max_error_at_95_pct: float


@dataclass(frozen=True)
class SamplingStrategiesResult:
    """All strategies, one feature, equal cost."""

    feature: Feature
    evaluation_cost: int
    rows: tuple[StrategyRow, ...]

    def row(self, strategy: str) -> StrategyRow:
        for row in self.rows:
            if row.strategy == strategy:
                return row
        raise KeyError(f"no strategy {strategy!r}")

    def render(self) -> str:
        return render_table(
            ["strategy", "mean |err| %", "err@95 %"],
            [
                [r.strategy, r.mean_abs_error_pct, r.max_error_at_95_pct]
                for r in self.rows
            ],
            title=(
                f"Sampling strategies vs FLARE ({self.feature.name}, "
                f"cost = {self.evaluation_cost} scenarios)"
            ),
        )


def run(
    context: ExperimentContext,
    feature: Feature = FEATURE_2_DVFS,
    *,
    n_trials: int = 1000,
    seed: int = 0,
) -> SamplingStrategiesResult:
    """Compare sampling strategies against FLARE at equal cost."""
    cost = context.n_clusters
    truth = context.truth(feature)
    executor = context.executor

    naive = evaluate_by_sampling(
        context.dataset,
        feature,
        sample_size=cost,
        n_trials=n_trials,
        seed=seed,
        truth=truth,
        executor=executor,
    )
    by_occupancy = evaluate_by_stratified_sampling(
        context.dataset,
        feature,
        sample_size=cost,
        n_trials=n_trials,
        seed=seed,
        stratify_on="occupancy",
        truth=truth,
        executor=executor,
    )
    by_mpki = evaluate_by_stratified_sampling(
        context.dataset,
        feature,
        sample_size=cost,
        n_trials=n_trials,
        seed=seed,
        stratify_on="hp_mpki",
        truth=truth,
        executor=executor,
    )
    flare_error = abs(
        context.flare.evaluate(feature, executor=executor).reduction_pct
        - truth.overall_reduction_pct
    )

    rows = [
        StrategyRow(
            "random sampling",
            float(naive.trials.errors().mean()),
            naive.trials.max_error_at_confidence(0.95),
        ),
        StrategyRow(
            "stratified (occupancy)",
            float(by_occupancy.trials.errors().mean()),
            by_occupancy.trials.max_error_at_confidence(0.95),
        ),
        StrategyRow(
            "stratified (HP cache pressure)",
            float(by_mpki.trials.errors().mean()),
            by_mpki.trials.max_error_at_confidence(0.95),
        ),
        StrategyRow("FLARE", flare_error, flare_error),
    ]
    return SamplingStrategiesResult(
        feature=feature, evaluation_cost=cost, rows=tuple(rows)
    )
