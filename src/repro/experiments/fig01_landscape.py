"""Figure 1 — the evaluation-methodology landscape.

The paper's opening figure positions the methodologies on an
accuracy-vs-overhead plane: conventional load-testing (cheap,
co-location-blind), sampling-based evaluation (costlier, still
imprecise), live/full-datacenter evaluation (accurate, prohibitive), and
FLARE (accurate at load-testing-like cost).  This experiment regenerates
that landscape as measured data: one (evaluation cost, worst-case error)
point per methodology, aggregated over the Table 4 features.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.loadtesting import load_test_job
from ..baselines.sampling import evaluate_by_sampling
from ..cluster.features import PAPER_FEATURES, Feature
from ..reporting.tables import render_table
from ..workloads import HP_JOB_NAMES, hp_job
from .context import ExperimentContext

__all__ = ["MethodPoint", "Fig01Result", "run"]


@dataclass(frozen=True)
class MethodPoint:
    """One methodology's position on the Figure 1 plane.

    Attributes
    ----------
    method:
        Methodology name.
    cost_scenarios:
        Evaluation overhead in scenario-evaluations per feature (the
        paper's cost unit; load-testing's per-service runs are counted as
        scenario-equivalents).
    worst_error_pct:
        Worst absolute error across the Table 4 features (for sampling:
        the 95th-percentile trial error).
    """

    method: str
    cost_scenarios: int
    worst_error_pct: float


@dataclass(frozen=True)
class Fig01Result:
    """The measured Figure 1 landscape."""

    points: tuple[MethodPoint, ...]

    def point(self, method: str) -> MethodPoint:
        for point in self.points:
            if point.method == method:
                return point
        raise KeyError(f"no method {method!r}")

    def render(self) -> str:
        return render_table(
            ["method", "cost (scenario evals)", "worst error %"],
            [
                [p.method, p.cost_scenarios, p.worst_error_pct]
                for p in self.points
            ],
            title="Figure 1 — accuracy vs overhead of evaluation methods",
        )


def run(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
    *,
    n_trials: int = 500,
    seed: int = 0,
) -> Fig01Result:
    """Regenerate Figure 1 from measured costs and errors."""
    flare_cost = context.n_clusters

    # Load-testing: one single-service run per HP job; its "estimate" of
    # the datacenter-wide impact is the inherent-MIPS-weighted mean of the
    # per-service impacts — the best a co-location-blind method can do.
    loadtest_worst = 0.0
    for feature in features:
        truth = context.truth(feature)
        results = [
            load_test_job(context.dataset.shape, hp_job(name), feature)
            for name in HP_JOB_NAMES
        ]
        estimate = sum(r.reduction_pct for r in results) / len(results)
        loadtest_worst = max(
            loadtest_worst, abs(estimate - truth.overall_reduction_pct)
        )

    # Sampling at FLARE's cost: 95th-percentile trial error.
    sampling_worst = 0.0
    for feature in features:
        truth = context.truth(feature)
        trials = evaluate_by_sampling(
            context.dataset,
            feature,
            sample_size=flare_cost,
            n_trials=n_trials,
            seed=seed,
            truth=truth,
        ).trials
        sampling_worst = max(
            sampling_worst, trials.max_error_at_confidence(0.95)
        )

    # FLARE.
    flare_worst = max(
        abs(
            context.flare.evaluate(feature).reduction_pct
            - context.truth(feature).overall_reduction_pct
        )
        for feature in features
    )

    datacenter_cost = len(context.truth(features[0]).scenario_ids)
    points = (
        MethodPoint("load-testing benchmarks", len(HP_JOB_NAMES), loadtest_worst),
        MethodPoint("sampling-based", flare_cost, sampling_worst),
        MethodPoint("FLARE", flare_cost, flare_worst),
        MethodPoint("full datacenter (truth)", datacenter_cost, 0.0),
    )
    return Fig01Result(points=points)
