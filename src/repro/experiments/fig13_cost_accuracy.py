"""Figure 13 — evaluation cost vs estimation fidelity.

FLARE's cost is fixed (one replay per cluster).  Sampling improves with
cost as ~1/√n, so the experiment sweeps sampling budgets expressed as
multiples of FLARE's cost and reports the expected max estimation error
(95 % confidence) at each, next to FLARE's actual error.  The paper's
headline numbers fall out: sampling cannot match FLARE even at ~10× the
cost, and FLARE evaluates 895 scenarios' worth of behaviour at 18
scenarios' cost (≈ 50× reduction over full-datacenter evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.sampling import sampling_cost_curve
from ..cluster.features import PAPER_FEATURES, Feature
from ..reporting.tables import render_table
from .context import ExperimentContext

__all__ = ["Fig13Result", "run"]


@dataclass(frozen=True)
class Fig13Result:
    """Cost/accuracy curve data for one feature set.

    Attributes
    ----------
    features:
        Features the errors are aggregated over (worst case is reported,
        matching the "expected max" framing).
    cost_multipliers:
        Sampling budgets as multiples of FLARE's cost.
    sampling_expected_max_error_pct:
        Expected max error (95 % CI half-width, worst feature) per budget.
    flare_cost:
        FLARE's evaluation cost in scenarios (= cluster count).
    flare_max_error_pct:
        FLARE's worst actual estimation error across *features*.
    datacenter_cost:
        Scenarios a full-datacenter evaluation must cover.
    """

    features: tuple[Feature, ...]
    cost_multipliers: tuple[float, ...]
    sampling_expected_max_error_pct: np.ndarray
    flare_cost: int
    flare_max_error_pct: float
    datacenter_cost: int

    @property
    def cost_reduction_vs_datacenter(self) -> float:
        """The paper's 50× headline: full cost over FLARE cost."""
        return self.datacenter_cost / self.flare_cost

    def sampling_multiplier_to_match_flare(self) -> float | None:
        """Smallest swept budget at which sampling matches FLARE's error.

        None when no swept budget reaches it (the paper's case at ≤ 10×).
        """
        for mult, err in zip(
            self.cost_multipliers, self.sampling_expected_max_error_pct
        ):
            if err <= self.flare_max_error_pct:
                return float(mult)
        return None

    def render(self) -> str:
        rows = [
            [float(mult), int(round(mult * self.flare_cost)), float(err)]
            for mult, err in zip(
                self.cost_multipliers, self.sampling_expected_max_error_pct
            )
        ]
        table = render_table(
            ["cost xFLARE", "scenarios", "expected max err %"],
            rows,
            title=(
                "Figure 13 — sampling cost vs error "
                f"(FLARE: cost {self.flare_cost}, "
                f"max err {self.flare_max_error_pct:.2f}%, "
                f"{self.cost_reduction_vs_datacenter:.0f}x cheaper than "
                "full datacenter)"
            ),
        )
        return table


def run(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
    cost_multipliers: tuple[float, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
) -> Fig13Result:
    """Reproduce Figure 13."""
    flare_cost = context.n_clusters
    worst_flare_error = 0.0
    worst_curve = np.zeros(len(cost_multipliers))
    for feature in features:
        truth = context.truth(feature)
        estimate = context.flare.evaluate(feature)
        worst_flare_error = max(
            worst_flare_error,
            abs(estimate.reduction_pct - truth.overall_reduction_pct),
        )
        sizes = tuple(
            max(1, int(round(mult * flare_cost))) for mult in cost_multipliers
        )
        curve = sampling_cost_curve(truth, sizes)
        worst_curve = np.maximum(worst_curve, [err for _, err in curve])
    return Fig13Result(
        features=tuple(features),
        cost_multipliers=tuple(float(m) for m in cost_multipliers),
        sampling_expected_max_error_pct=worst_curve,
        flare_cost=flare_cost,
        flare_max_error_pct=worst_flare_error,
        datacenter_cost=len(context.truth(features[0]).scenario_ids),
    )
