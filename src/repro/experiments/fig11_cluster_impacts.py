"""Figure 11 — per-cluster representative impact of each feature.

Replays every group's representative scenario under Features 1–3 and
reports the per-cluster MIPS reductions.  The paper's observation — groups
respond differently to the same feature — is exposed as the spread of each
feature's per-cluster series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import PAPER_FEATURES, Feature
from ..reporting.tables import render_table
from .context import ExperimentContext

__all__ = ["Fig11Result", "run"]


@dataclass(frozen=True)
class Fig11Result:
    """Per-cluster reductions for each evaluated feature.

    Attributes
    ----------
    features:
        Features in column order.
    cluster_ids:
        Clusters in row order.
    reductions_pct:
        ``(n_clusters, n_features)``; NaN when a cluster hosts no HP job
        under that feature (LP-only groups).
    weights:
        Cluster weights.
    """

    features: tuple[Feature, ...]
    cluster_ids: tuple[int, ...]
    reductions_pct: np.ndarray
    weights: np.ndarray

    def spread_of(self, feature_index: int) -> float:
        """Max − min per-cluster reduction for one feature."""
        col = self.reductions_pct[:, feature_index]
        live = col[~np.isnan(col)]
        return float(live.max() - live.min())

    def most_impacted_cluster(self, feature_index: int) -> int:
        col = self.reductions_pct[:, feature_index].copy()
        col[np.isnan(col)] = -np.inf
        return int(self.cluster_ids[int(np.argmax(col))])

    def render(self) -> str:
        headers = ["cluster", "weight %"] + [f.name for f in self.features]
        rows = []
        for i, cid in enumerate(self.cluster_ids):
            row = [cid, float(self.weights[i]) * 100.0]
            for j in range(len(self.features)):
                value = self.reductions_pct[i, j]
                row.append(float(value) if not np.isnan(value) else float("nan"))
            rows.append(row)
        return render_table(
            headers, rows, title="Figure 11 — per-cluster feature impacts (%)"
        )


def run(
    context: ExperimentContext,
    features: tuple[Feature, ...] = PAPER_FEATURES,
) -> Fig11Result:
    """Reproduce Figure 11 for *features*."""
    flare = context.flare
    cluster_ids = tuple(g.cluster_id for g in flare.representatives.groups)
    weights = np.array([g.weight for g in flare.representatives.groups])

    matrix = np.full((len(cluster_ids), len(features)), np.nan)
    for j, feature in enumerate(features):
        estimate = flare.evaluate(feature)
        by_cluster = estimate.cluster_reductions()
        for i, cid in enumerate(cluster_ids):
            if cid in by_cluster:
                matrix[i, j] = by_cluster[cid]
    return Fig11Result(
        features=tuple(features),
        cluster_ids=cluster_ids,
        reductions_pct=matrix,
        weights=weights,
    )
