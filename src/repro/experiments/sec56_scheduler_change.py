"""§5.6 — handling datacenter scheduler changes.

A new scheduler does not invent unseen machine behaviours; it shifts which
co-locations occur and how often.  FLARE therefore restarts from step 3:
the new scheduler's scenarios are *classified* into the existing behaviour
groups (through the fitted standardise → PCA → whiten → nearest-centroid
path), group weights are recomputed from the new population's observation
times, and the already-selected representatives are replayed as before —
no new metric collection, no new clustering.

The experiment runs the same user behaviour under an alternative scheduler
(best-fit packing, which concentrates load instead of spreading it), and
checks that the reweighted estimate tracks the new datacenter truth better
than the stale (old-weights) estimate does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.full_datacenter import evaluate_full_datacenter
from ..cluster.features import FEATURE_2_DVFS, Feature
from ..cluster.scheduler import BestFitPackingScheduler, Scheduler
from ..cluster.simulation import DatacenterConfig, run_simulation
from ..reporting.tables import render_table
from .context import ExperimentContext

__all__ = ["Sec56Result", "run"]


@dataclass(frozen=True)
class Sec56Result:
    """Scheduler-change evaluation for one feature.

    Attributes
    ----------
    feature:
        The feature evaluated under the new scheduler.
    scheduler_name:
        The new scheduler.
    exact_key_coverage:
        Fraction of the new scheduler's observation time spent in
        co-locations whose exact job mix was already profiled — typically
        tiny, which is why reweighting classifies behaviours instead of
        matching keys.
    new_truth_pct:
        Full-datacenter truth over the new scheduler's scenarios.
    stale_estimate_pct:
        FLARE estimate still using the old scheduler's group weights.
    reweighted_estimate_pct:
        FLARE estimate after classification-based reweighting (steps 3–4
        only; no re-profiling of representatives).
    """

    feature: Feature
    scheduler_name: str
    exact_key_coverage: float
    new_truth_pct: float
    stale_estimate_pct: float
    reweighted_estimate_pct: float

    @property
    def stale_error_pct(self) -> float:
        return abs(self.stale_estimate_pct - self.new_truth_pct)

    @property
    def reweighted_error_pct(self) -> float:
        return abs(self.reweighted_estimate_pct - self.new_truth_pct)

    @property
    def improved(self) -> bool:
        """Did reweighting move the estimate toward the new truth?"""
        return self.reweighted_error_pct <= self.stale_error_pct

    def render(self) -> str:
        return render_table(
            ["quantity", "value"],
            [
                ["scheduler", self.scheduler_name],
                ["exact-key coverage", f"{self.exact_key_coverage:.1%}"],
                ["new datacenter truth %", self.new_truth_pct],
                ["stale FLARE estimate %", self.stale_estimate_pct],
                ["reweighted FLARE estimate %", self.reweighted_estimate_pct],
                ["stale error", self.stale_error_pct],
                ["reweighted error", self.reweighted_error_pct],
            ],
            title=f"§5.6 — scheduler change ({self.feature.name})",
        )


def run(
    context: ExperimentContext,
    feature: Feature = FEATURE_2_DVFS,
    *,
    scheduler: Scheduler | None = None,
) -> Sec56Result:
    """Reproduce the §5.6 scheduler-change flow."""
    new_scheduler = scheduler if scheduler is not None else (
        BestFitPackingScheduler()
    )
    config = DatacenterConfig(
        shape=context.dataset.shape,
        seed=context.seed,
        target_unique_scenarios=context.simulation.config.target_unique_scenarios,
        max_days=context.simulation.config.max_days,
        submission=context.simulation.config.submission,
    )
    new_run = run_simulation(config, scheduler=new_scheduler)

    known_keys = {s.key for s in context.dataset.scenarios}
    total_time = sum(s.total_duration_s for s in new_run.dataset.scenarios)
    covered_time = sum(
        s.total_duration_s
        for s in new_run.dataset.scenarios
        if s.key in known_keys
    )
    coverage = covered_time / total_time if total_time > 0 else 0.0

    stale = context.flare.evaluate(feature)
    reweighted_flare = context.flare.reweight_by_classification(
        new_run.dataset
    )
    reweighted = reweighted_flare.evaluate(feature)
    truth = evaluate_full_datacenter(new_run.dataset, feature)

    return Sec56Result(
        feature=feature,
        scheduler_name=new_scheduler.name,
        exact_key_coverage=coverage,
        new_truth_pct=truth.overall_reduction_pct,
        stale_estimate_pct=stale.reduction_pct,
        reweighted_estimate_pct=reweighted.reduction_pct,
    )
