"""Figure 7 — choosing the number of principal components.

Plots (as data) the cumulative explained-variance ratio of the PCA over
the refined metric matrix and reports the smallest PC count reaching the
95 % target, which the paper selects (18 PCs in their datacenter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reporting.tables import render_table
from .context import ExperimentContext

__all__ = ["Fig07Result", "run"]


@dataclass(frozen=True)
class Fig07Result:
    """Explained-variance curve and the selected PC count."""

    explained_variance_ratio: np.ndarray
    cumulative_ratio: np.ndarray
    variance_target: float
    selected_components: int

    @property
    def n_available(self) -> int:
        return self.explained_variance_ratio.shape[0]

    def components_for(self, target: float) -> int:
        """PC count needed for an arbitrary variance target."""
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        reachable = min(target, float(self.cumulative_ratio[-1]))
        return int(np.searchsorted(self.cumulative_ratio, reachable - 1e-12) + 1)

    def render(self) -> str:
        rows = [
            [
                pc + 1,
                float(self.explained_variance_ratio[pc]) * 100.0,
                float(self.cumulative_ratio[pc]) * 100.0,
            ]
            for pc in range(min(self.n_available, self.selected_components + 4))
        ]
        return render_table(
            ["# PCs", "variance %", "cumulative %"],
            rows,
            title=(
                f"Figure 7 — {self.selected_components} PCs explain "
                f"{self.cumulative_ratio[self.selected_components - 1]:.1%} "
                f"(target {self.variance_target:.0%})"
            ),
        )


def run(context: ExperimentContext) -> Fig07Result:
    """Reproduce Figure 7 from the fitted pipeline."""
    analysis = context.flare.analysis
    ratio = analysis.pca.explained_variance_ratio
    return Fig07Result(
        explained_variance_ratio=ratio.copy(),
        cumulative_ratio=np.cumsum(ratio),
        variance_target=context.flare.config.analyzer.variance_target,
        selected_components=analysis.n_components,
    )
