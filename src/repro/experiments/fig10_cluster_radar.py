"""Figure 10 — radar profiles of the scenario groups.

For every cluster: its weight, its centre in whitened PC space, and the
per-PC standard deviation of its members.  The paper's observations are
checked as data: groups have distinct profiles (pairwise centre distances
are large relative to their spreads) and no single group dominates the
weight distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..reporting.radar import render_radar_report
from .context import ExperimentContext

__all__ = ["Fig10Result", "run"]


@dataclass(frozen=True)
class Fig10Result:
    """Cluster radar data: centres, spreads, weights."""

    centroids: np.ndarray
    spreads: np.ndarray
    weights: np.ndarray

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]

    @property
    def n_components(self) -> int:
        return self.centroids.shape[1]

    def max_weight(self) -> float:
        return float(self.weights.max())

    def pairwise_center_distances(self) -> np.ndarray:
        """Distances between all cluster-centre pairs (distinctness)."""
        diff = self.centroids[:, None, :] - self.centroids[None, :, :]
        return np.sqrt((diff**2).sum(axis=2))

    def min_center_separation(self) -> float:
        dist = self.pairwise_center_distances()
        mask = ~np.eye(self.n_clusters, dtype=bool)
        return float(dist[mask].min())

    def differing_pcs(
        self, cluster_a: int, cluster_b: int, threshold: float = 0.5
    ) -> tuple[int, ...]:
        """PCs on which two (possibly similar-looking) clusters differ.

        Mirrors the paper's note that e.g. Cluster 0 and 1 look alike but
        have major differences in a handful of PCs.
        """
        delta = np.abs(self.centroids[cluster_a] - self.centroids[cluster_b])
        return tuple(int(i) for i in np.flatnonzero(delta > threshold))

    def render(self) -> str:
        return (
            "Figure 10 — cluster radar profiles\n"
            + render_radar_report(self.centroids, self.weights, self.spreads)
        )


def run(context: ExperimentContext) -> Fig10Result:
    """Reproduce Figure 10 from the fitted pipeline."""
    analysis = context.flare.analysis
    scores = analysis.scores
    spreads = np.zeros_like(analysis.kmeans.centroids)
    for cid in range(analysis.n_clusters):
        members = analysis.members_of(cid)
        if members.size:
            spreads[cid] = scores[members].std(axis=0)
    return Fig10Result(
        centroids=analysis.kmeans.centroids.copy(),
        spreads=spreads,
        weights=analysis.cluster_weights.copy(),
    )
