"""From-scratch statistics / ML substrate used by the FLARE pipeline.

Everything here is implemented directly on numpy (no sklearn): feature
standardisation and whitening, PCA by SVD, k-means++ clustering, SSE and
silhouette cluster-quality metrics, correlation-based metric pruning, and
the random-sampling trial machinery used by the baseline comparisons.
"""

from .comparison import GapResult, adjusted_rand_index, gap_statistic
from .correlation import (
    PruneReport,
    correlation_matrix,
    prune_correlated,
    prune_from_correlation,
)
from .distance import nearest_indices, pairwise_euclidean, pairwise_sq_euclidean
from .hierarchy import AgglomerativeClustering, AgglomerativeResult
from .kmeans import (
    KMeans,
    KMeansResult,
    StreamingKMeans,
    assigned_sq_distances,
    kmeans_plus_plus_init,
)
from .pca import PCA, PCAResult, IncrementalPCA, components_for_variance
from .preprocessing import StandardScaler, whiten
from .streaming import ReservoirSampler, RunningMoments
from .sampling import (
    DistributionSummary,
    SamplingTrialResult,
    expected_max_error,
    percentile_interval,
    run_sampling_trials,
    summarize_distribution,
)
from .silhouette import (
    ClusterQualitySweep,
    knee_point,
    silhouette_samples,
    silhouette_score,
    sum_squared_error,
    sweep_cluster_counts,
)
from .validation import check_random_state

__all__ = [
    "PCA",
    "PCAResult",
    "IncrementalPCA",
    "components_for_variance",
    "StandardScaler",
    "whiten",
    "AgglomerativeClustering",
    "AgglomerativeResult",
    "KMeans",
    "KMeansResult",
    "StreamingKMeans",
    "assigned_sq_distances",
    "kmeans_plus_plus_init",
    "RunningMoments",
    "ReservoirSampler",
    "ClusterQualitySweep",
    "knee_point",
    "silhouette_samples",
    "silhouette_score",
    "sum_squared_error",
    "sweep_cluster_counts",
    "correlation_matrix",
    "adjusted_rand_index",
    "gap_statistic",
    "GapResult",
    "prune_correlated",
    "prune_from_correlation",
    "PruneReport",
    "pairwise_euclidean",
    "pairwise_sq_euclidean",
    "nearest_indices",
    "DistributionSummary",
    "SamplingTrialResult",
    "summarize_distribution",
    "run_sampling_trials",
    "percentile_interval",
    "expected_max_error",
    "check_random_state",
]
