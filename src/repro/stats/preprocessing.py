"""Feature standardisation and whitening.

FLARE normalises every raw metric to zero mean and unit variance before PCA
(eliminating magnitude bias between e.g. MIPS ~ 1e3 and miss ratios ~ 1e-2),
and then *whitens* the selected principal components so each PC carries the
same weight during clustering (paper §4.3–4.4).
"""

from __future__ import annotations

import numpy as np

from .validation import as_matrix

__all__ = ["StandardScaler", "whiten"]


class StandardScaler:
    """Zero-mean / unit-variance standardisation with an invertible API.

    Constant columns (zero variance) are centred but left unscaled, which
    matches the behaviour datacenter metric pipelines need: a counter that
    never moves must not explode into NaNs.

    Examples
    --------
    >>> scaler = StandardScaler()
    >>> z = scaler.fit_transform([[1.0, 2.0], [3.0, 2.0]])
    >>> z.mean(axis=0).tolist()
    [0.0, 0.0]
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None
        self.n_samples_: int = 0

    # ------------------------------------------------------------------
    def fit(self, data) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        matrix = as_matrix(data, name="data")
        return self._set_statistics(
            matrix.mean(axis=0), matrix.std(axis=0, ddof=0), matrix.shape[0]
        )

    @classmethod
    def from_moments(
        cls, mean: np.ndarray, std: np.ndarray, n_samples: int
    ) -> "StandardScaler":
        """Scaler from externally accumulated statistics.

        The out-of-core fit derives mean/std from streamed
        :class:`~repro.stats.streaming.RunningMoments` rather than a
        resident matrix; this applies the same constant-column guard as
        :meth:`fit` so both paths share one tolerance rule.
        """
        return cls()._set_statistics(
            np.asarray(mean, dtype=np.float64),
            np.asarray(std, dtype=np.float64),
            n_samples,
        )

    def _set_statistics(
        self, mean: np.ndarray, std: np.ndarray, n_samples: int
    ) -> "StandardScaler":
        self.mean_ = mean
        # Constant columns carry no information; dividing by 1 keeps them
        # at ~zero after centring instead of producing NaN.  The threshold
        # is relative to the column magnitude: a column of identical large
        # values has a tiny but non-zero float std that must not be used
        # as a divisor.
        tolerance = 1e-12 * np.maximum(1.0, np.abs(mean))
        self.scale_ = np.where(std > tolerance, std, 1.0)
        self.n_samples_ = n_samples
        return self

    def transform(self, data) -> np.ndarray:
        """Standardise *data* with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        matrix = as_matrix(data, name="data")
        if matrix.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"data has {matrix.shape[1]} columns, scaler was fitted "
                f"with {self.mean_.shape[0]}"
            )
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, data) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data) -> np.ndarray:
        """Map standardised values back to the original units."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse")
        matrix = as_matrix(data, name="data")
        return matrix * self.scale_ + self.mean_


def whiten(components: np.ndarray, *, epsilon: float = 1e-12) -> np.ndarray:
    """Rescale each column of *components* to unit variance.

    The paper whitens the selected PCs so that every high-level metric
    "retains the same amount of information" before K-means (§4.4).  PCA
    scores already have zero mean, so whitening is a per-column division by
    the standard deviation.

    Columns whose variance is below *epsilon* are returned as zeros: a PC
    with no spread cannot contribute to distances and dividing by ~0 would
    amplify numeric noise into fake structure.
    """
    matrix = as_matrix(components, name="components")
    mean = matrix.mean(axis=0)
    centered = matrix - mean
    std = centered.std(axis=0, ddof=0)
    out = np.zeros_like(centered)
    # Relative threshold: a column of identical large values has a tiny
    # non-zero float std that must not be amplified into fake structure.
    live = std > epsilon * np.maximum(1.0, np.abs(mean))
    out[:, live] = centered[:, live] / std[live]
    return out
