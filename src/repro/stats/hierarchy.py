"""Agglomerative (hierarchical) clustering.

The paper uses K-means but notes that "alternatives (e.g., hierarchical
clustering of [74, 80]) can also be applied" (§4.4) — those citations are
the SPEC-characterisation studies that cluster workloads agglomeratively.
This module provides average/complete/single-linkage agglomerative
clustering with the same (labels, centroids) surface as
:class:`repro.stats.KMeans`, so the Analyzer can swap it in for ablation.

Implemented with the classic O(n²)-memory distance-matrix algorithm using
Lance–Williams updates — fine for the few-thousand-scenario scale FLARE
operates at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import pairwise_euclidean
from .validation import as_matrix

__all__ = ["AgglomerativeClustering", "AgglomerativeResult"]

_LINKAGES = ("average", "complete", "single")


@dataclass(frozen=True)
class AgglomerativeResult:
    """Outcome of one agglomerative clustering run.

    Attributes
    ----------
    labels:
        Cluster index per input row (0 … n_clusters-1, relabelled densely).
    centroids:
        Mean point of each cluster — provided for API parity with
        K-means (used for representative selection).
    merge_heights:
        Linkage distance at each of the ``n - n_clusters`` merges
        performed, in merge order (monotone for complete/average linkage).
    linkage:
        Linkage criterion used.
    """

    labels: np.ndarray
    centroids: np.ndarray
    merge_heights: tuple[float, ...]
    linkage: str

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]

    @property
    def inertia(self) -> float:
        """Sum of squared distances to assigned centroids (for SSE
        comparison against K-means)."""
        # centroids are ordered by cluster id
        return float(
            sum(
                ((point - self.centroids[label]) ** 2).sum()
                for point, label in zip(self._points, self.labels)
            )
        )

    # _points is attached post-construction (not part of equality).
    @property
    def _points(self) -> np.ndarray:
        return object.__getattribute__(self, "_points_array")


class AgglomerativeClustering:
    """Bottom-up clustering by repeated nearest-pair merging.

    Parameters
    ----------
    n_clusters:
        Number of clusters to stop at.
    linkage:
        ``"average"`` (UPGMA), ``"complete"`` (max) or ``"single"`` (min).
    """

    def __init__(self, n_clusters: int, *, linkage: str = "average") -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if linkage not in _LINKAGES:
            raise ValueError(
                f"unknown linkage {linkage!r}; expected one of {_LINKAGES}"
            )
        self.n_clusters = n_clusters
        self.linkage = linkage

    def fit(self, data) -> AgglomerativeResult:
        """Cluster *data* ``(n_samples, n_features)``."""
        matrix = as_matrix(data, name="data")
        n = matrix.shape[0]
        if self.n_clusters > n:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n}"
            )

        dist = pairwise_euclidean(matrix, matrix)
        np.fill_diagonal(dist, np.inf)
        active = np.ones(n, dtype=bool)
        sizes = np.ones(n)
        # member lists per active cluster slot
        members: list[list[int]] = [[i] for i in range(n)]
        heights: list[float] = []

        for _ in range(n - self.n_clusters):
            # Find the closest active pair.
            masked = np.where(
                active[:, None] & active[None, :], dist, np.inf
            )
            flat = int(np.argmin(masked))
            a, b = divmod(flat, n)
            if a > b:
                a, b = b, a
            heights.append(float(masked[a, b]))

            # Lance-Williams update of distances to the merged cluster a.
            d_a, d_b = dist[a], dist[b]
            if self.linkage == "single":
                merged = np.minimum(d_a, d_b)
            elif self.linkage == "complete":
                merged = np.maximum(d_a, d_b)
            else:  # average
                merged = (sizes[a] * d_a + sizes[b] * d_b) / (
                    sizes[a] + sizes[b]
                )
            dist[a, :] = merged
            dist[:, a] = merged
            dist[a, a] = np.inf
            active[b] = False
            sizes[a] += sizes[b]
            members[a].extend(members[b])
            members[b] = []

        labels = np.empty(n, dtype=np.intp)
        centroids = []
        cluster_id = 0
        for slot in range(n):
            if not active[slot]:
                continue
            for idx in members[slot]:
                labels[idx] = cluster_id
            centroids.append(matrix[members[slot]].mean(axis=0))
            cluster_id += 1

        result = AgglomerativeResult(
            labels=labels,
            centroids=np.asarray(centroids),
            merge_heights=tuple(heights),
            linkage=self.linkage,
        )
        object.__setattr__(result, "_points_array", matrix)
        return result
