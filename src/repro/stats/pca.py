"""Principal Component Analysis via singular value decomposition.

FLARE constructs its high-level metrics (the paper's Figure 8) as principal
components of the standardised raw-metric matrix.  PCA is chosen over
non-linear reducers for interpretability: every PC is a *linear* combination
of raw counters, so its loadings can be read off and labelled
("CPU-intensive + frontend-bandwidth-bound + ALU-heavy", §4.3).

Implemented from scratch on :func:`numpy.linalg.svd`; no sklearn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .streaming import RunningMoments
from .validation import as_matrix

__all__ = [
    "PCA",
    "PCAResult",
    "IncrementalPCA",
    "components_for_variance",
]


@dataclass(frozen=True)
class PCAResult:
    """Immutable summary of a fitted PCA decomposition.

    Attributes
    ----------
    components:
        Array of shape ``(n_components, n_features)``; row *i* holds the
        loadings of PC *i* on the original features.
    explained_variance:
        Variance of the data along each PC (descending).
    explained_variance_ratio:
        ``explained_variance`` normalised to sum to 1 over *all* possible
        components (not just the retained ones).
    mean:
        Per-feature mean removed before decomposition.
    singular_values:
        Singular values corresponding to the retained components.
    """

    components: np.ndarray
    explained_variance: np.ndarray
    explained_variance_ratio: np.ndarray
    mean: np.ndarray
    singular_values: np.ndarray

    @property
    def n_components(self) -> int:
        return self.components.shape[0]

    def cumulative_variance_ratio(self) -> np.ndarray:
        """Cumulative explained-variance ratio over the retained PCs."""
        return np.cumsum(self.explained_variance_ratio)


class PCA:
    """PCA estimator with an sklearn-like fit/transform surface.

    Parameters
    ----------
    n_components:
        Number of components to keep.  ``None`` keeps
        ``min(n_samples, n_features)`` components.

    Notes
    -----
    Deterministic sign convention: each component is flipped so that the
    loading with the largest absolute value is positive.  This keeps PC
    interpretations (Figure 8 labels) stable across runs and platforms.
    """

    def __init__(self, n_components: int | None = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be a positive integer or None")
        self.n_components = n_components
        self.result_: PCAResult | None = None

    # ------------------------------------------------------------------
    def fit(self, data) -> "PCA":
        """Fit the decomposition on *data* ``(n_samples, n_features)``."""
        matrix = as_matrix(data, name="data", min_rows=2)
        n_samples, n_features = matrix.shape
        max_rank = min(n_samples, n_features)
        keep = self.n_components if self.n_components is not None else max_rank
        if keep > max_rank:
            raise ValueError(
                f"n_components={keep} exceeds min(n_samples, n_features)={max_rank}"
            )

        mean = matrix.mean(axis=0)
        centered = matrix - mean
        # full_matrices=False: thin SVD, O(min(n,p)^2 * max(n,p)).
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)

        total_variance = (singular**2).sum() / (n_samples - 1)
        explained = singular**2 / (n_samples - 1)
        if total_variance > 0.0:
            ratio = explained / total_variance
        else:
            ratio = np.zeros_like(explained)

        components = vt[:keep]
        components = _stable_signs(components)

        self.result_ = PCAResult(
            components=components,
            explained_variance=explained[:keep],
            explained_variance_ratio=ratio[:keep],
            mean=mean,
            singular_values=singular[:keep],
        )
        return self

    def transform(self, data) -> np.ndarray:
        """Project *data* onto the fitted components (PC scores)."""
        result = self._require_fitted()
        matrix = as_matrix(data, name="data")
        if matrix.shape[1] != result.mean.shape[0]:
            raise ValueError(
                f"data has {matrix.shape[1]} features, PCA was fitted "
                f"with {result.mean.shape[0]}"
            )
        return (matrix - result.mean) @ result.components.T

    def fit_transform(self, data) -> np.ndarray:
        """Fit on *data* and return its PC scores."""
        return self.fit(data).transform(data)

    def inverse_transform(self, scores) -> np.ndarray:
        """Reconstruct (approximately) the original features from scores."""
        result = self._require_fitted()
        matrix = as_matrix(scores, name="scores")
        if matrix.shape[1] != result.n_components:
            raise ValueError(
                f"scores has {matrix.shape[1]} columns, expected "
                f"{result.n_components}"
            )
        return matrix @ result.components + result.mean

    # ------------------------------------------------------------------
    @property
    def components_(self) -> np.ndarray:
        return self._require_fitted().components

    @property
    def explained_variance_ratio_(self) -> np.ndarray:
        return self._require_fitted().explained_variance_ratio

    def _require_fitted(self) -> PCAResult:
        if self.result_ is None:
            raise RuntimeError("PCA must be fitted before use")
        return self.result_


class IncrementalPCA:
    """PCA over streamed row batches, for the out-of-core fit path.

    Accumulates the exact sample covariance with mergeable moments
    (:class:`RunningMoments`) and eigendecomposes it at
    :meth:`finalize`.  The eigendecomposition of ``XᵀX/(n-1)`` spans the
    same subspace as :class:`PCA`'s SVD of the centred matrix with the
    same variances, so on identical data the two agree up to float
    rounding (relative ~1e-9 on well-conditioned spectra — the
    documented tolerance of the streaming fit).  The result is
    independent of how rows were batched, which is what makes the
    serial and process streaming paths bit-identical.

    Sign convention matches :class:`PCA`: each component is flipped so
    its largest-magnitude loading is positive.
    """

    def __init__(self, n_components: int | None = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be a positive integer or None")
        self.n_components = n_components
        self._moments = RunningMoments()
        self.result_: PCAResult | None = None

    @property
    def n_samples_seen(self) -> int:
        return self._moments.n

    # ------------------------------------------------------------------
    def partial_fit(self, batch) -> "IncrementalPCA":
        """Fold a ``(rows, n_features)`` batch into the covariance."""
        self._moments.update(batch)
        return self

    def finalize(self) -> PCAResult:
        """Eigendecompose the accumulated covariance into a PCAResult."""
        if self._moments.n < 2:
            raise RuntimeError(
                "IncrementalPCA needs at least 2 rows before finalize"
            )
        covariance = self._moments.covariance(ddof=1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues, kind="stable")[::-1]
        explained = np.clip(eigenvalues[order], 0.0, None)
        components = eigenvectors.T[order]

        total_variance = explained.sum()
        if total_variance > 0.0:
            ratio = explained / total_variance
        else:
            ratio = np.zeros_like(explained)

        n_features = covariance.shape[0]
        keep = (
            min(self.n_components, n_features)
            if self.n_components is not None
            else n_features
        )
        singular = np.sqrt(explained[:keep] * (self._moments.n - 1))
        self.result_ = PCAResult(
            components=_stable_signs(components[:keep]),
            explained_variance=explained[:keep],
            explained_variance_ratio=ratio[:keep],
            mean=self._moments.mean.copy(),
            singular_values=singular,
        )
        return self.result_

    def transform(self, data) -> np.ndarray:
        """Project *data* onto the finalized components (PC scores)."""
        if self.result_ is None:
            raise RuntimeError("IncrementalPCA must be finalized before use")
        result = self.result_
        matrix = as_matrix(data, name="data")
        if matrix.shape[1] != result.mean.shape[0]:
            raise ValueError(
                f"data has {matrix.shape[1]} features, PCA was fitted "
                f"with {result.mean.shape[0]}"
            )
        return (matrix - result.mean) @ result.components.T


def components_for_variance(data, target_ratio: float) -> int:
    """Smallest number of PCs whose cumulative variance ≥ *target_ratio*.

    This is the paper's Figure 7 procedure: FLARE keeps enough PCs to
    explain 95 % of the variance of the standardised metric matrix
    (18 PCs in the authors' datacenter).
    """
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError("target_ratio must be in (0, 1]")
    pca = PCA().fit(data)
    cumulative = pca.result_.cumulative_variance_ratio()
    # Guard against float round-off keeping the last step below 1.0.
    reachable = min(target_ratio, float(cumulative[-1]))
    return int(np.searchsorted(cumulative, reachable - 1e-12) + 1)


def _stable_signs(components: np.ndarray) -> np.ndarray:
    """Flip component signs so the dominant loading of each is positive."""
    flipped = components.copy()
    for i, row in enumerate(flipped):
        pivot = np.argmax(np.abs(row))
        if row[pivot] < 0:
            flipped[i] = -row
    return flipped
