"""Sampling-based estimation machinery for the baseline comparisons.

The paper compares FLARE against random sampling: pick N co-location
scenarios at random, evaluate the feature on just those, and extrapolate
(§5.3, Figures 12–13).  This module provides the trial harness, the
distribution summaries shown as violin/box plots, and confidence-interval
helpers for the cost/accuracy curve.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from .._deprecations import resolve_positional_kwarg
from ..runtime.executor import Executor, resolve_executor
from ..runtime.resilience import partition_failures
from ..runtime.seeding import spawn_seed_sequences
from .validation import as_vector

__all__ = [
    "DistributionSummary",
    "summarize_distribution",
    "SamplingTrialResult",
    "run_sampling_trials",
    "percentile_interval",
    "expected_max_error",
]


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary + mean/std for a trial distribution.

    This is the data behind the paper's violin-and-box plots (Fig. 12a).
    """

    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n: int

    def iqr(self) -> float:
        """Interquartile range (box height)."""
        return self.q3 - self.q1

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "n": float(self.n),
        }


def summarize_distribution(values) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` for *values*."""
    arr = as_vector(values, name="values")
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    q1, median, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return DistributionSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
        n=int(arr.size),
    )


@dataclass(frozen=True)
class SamplingTrialResult:
    """Estimates from repeated random-sampling trials.

    Attributes
    ----------
    estimates:
        One population-mean estimate per trial.
    sample_size:
        Scenarios drawn per trial (the evaluation cost).
    truth:
        The full-population value the estimates target.
    """

    estimates: np.ndarray
    sample_size: int
    truth: float

    def errors(self) -> np.ndarray:
        """Absolute estimation error of each trial."""
        return np.abs(self.estimates - self.truth)

    def summary(self) -> DistributionSummary:
        return summarize_distribution(self.estimates)

    def max_error_at_confidence(self, confidence: float = 0.95) -> float:
        """Error magnitude not exceeded in *confidence* of trials."""
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        return float(np.percentile(self.errors(), confidence * 100.0))


#: Trials batched per pickled work unit when dispatching to an executor.
TRIAL_CHUNK_SIZE = 32


def _sampling_trial(
    values: np.ndarray,
    prob,
    sample_size: int,
    replace: bool,
    seed_seq: np.random.SeedSequence,
) -> float:
    """One trial: draw a subsample with the trial's own stream.

    Module-level (and fed shared arguments via ``functools.partial``) so
    process-pool executors can pickle it; the stream depends only on the
    spawned *seed_seq*, never on the executing worker.
    """
    rng = np.random.default_rng(seed_seq)
    idx = rng.choice(values.size, size=sample_size, replace=replace, p=prob)
    return float(values[idx].mean())


def run_sampling_trials(
    population,
    *,
    sample_size: int,
    n_trials: int,
    seed=None,
    weights=None,
    replace: bool = False,
    executor: "Executor | str | None" = None,
) -> SamplingTrialResult:
    """Estimate a population mean from repeated random subsamples.

    Parameters
    ----------
    population:
        Per-scenario values (e.g. MIPS-reduction percent of each scenario).
    sample_size:
        Number of scenarios per trial — the cost knob of Figure 13.
    n_trials:
        Number of independent trials (the paper uses 1,000).
    weights:
        Optional occurrence weights; the truth and the trial estimates are
        then occurrence-weighted means.
    replace:
        Sample with replacement (needed when sample_size approaches the
        population size under weighting).
    executor:
        Executor (or spec string) the trials are dispatched on.  Each
        trial draws from its own ``SeedSequence.spawn`` child stream, so
        serial and parallel execution produce bit-identical estimates.
    """
    values = as_vector(population, name="population")
    if values.size == 0:
        raise ValueError("population must be non-empty")
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    if not replace and sample_size > values.size:
        raise ValueError(
            f"sample_size={sample_size} exceeds population {values.size} "
            "without replacement"
        )
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")

    prob = None
    if weights is not None:
        w = as_vector(weights, name="weights")
        if w.shape != values.shape:
            raise ValueError("weights must match population length")
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        prob = w / w.sum()
        truth = float(values @ prob)
    else:
        truth = float(values.mean())

    from ..obs import inc, span

    trial = functools.partial(_sampling_trial, values, prob, sample_size, replace)
    with span(
        "sampling.trials", n_trials=n_trials, sample_size=sample_size
    ):
        raw = resolve_executor(executor).map(
            trial,
            spawn_seed_sequences(seed, n_trials),
            chunk_size=TRIAL_CHUNK_SIZE,
            stage="sampling-trials",
        )
    # Trials degraded to TaskFailure under retry_then_skip are dropped:
    # each trial is an independent estimate, so survivors remain a valid
    # (smaller) sample of the estimator's distribution.
    survivors, failures = partition_failures(raw)
    if failures and not survivors:
        raise RuntimeError(
            f"all {n_trials} sampling trials failed: {failures[0].error}"
        )
    estimates = np.asarray(survivors)
    inc("sampling_trials_total", n_trials)
    return SamplingTrialResult(
        estimates=estimates, sample_size=sample_size, truth=truth
    )


def percentile_interval(
    values, *args, confidence: float = 0.95
) -> tuple[float, float]:
    """Central percentile interval of *values* (e.g. 95 % CI of trials).

    ``confidence`` is keyword-only; passing it positionally is deprecated.
    """
    confidence = resolve_positional_kwarg(
        args, confidence, owner="percentile_interval", name="confidence"
    )
    arr = as_vector(values, name="values")
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    tail = (1.0 - confidence) / 2.0 * 100.0
    low, high = np.percentile(arr, [tail, 100.0 - tail])
    return float(low), float(high)


def expected_max_error(
    population,
    *,
    sample_size: int,
    confidence: float = 0.95,
) -> float:
    """Analytic expected-max sampling error for a given cost.

    Uses the normal approximation of the sampling distribution of the mean
    with finite-population correction: the half-width of the *confidence*
    interval.  This mirrors the paper's Figure 13 "expected max performance
    estimation error (95 % confidence interval)" curve.
    """
    values = as_vector(population, name="population")
    n_pop = values.size
    if n_pop < 2:
        raise ValueError("population needs at least 2 values")
    if not 1 <= sample_size <= n_pop:
        raise ValueError("sample_size must be in [1, population size]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")

    from scipy.stats import norm

    sigma = values.std(ddof=1)
    fpc = np.sqrt((n_pop - sample_size) / max(n_pop - 1, 1))
    stderr = sigma / np.sqrt(sample_size) * fpc
    z = norm.ppf(0.5 + confidence / 2.0)
    return float(z * stderr)
