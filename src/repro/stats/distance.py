"""Distance kernels shared by clustering and silhouette scoring."""

from __future__ import annotations

import numpy as np

from .validation import as_matrix

__all__ = ["pairwise_sq_euclidean", "pairwise_euclidean", "nearest_indices"]


def pairwise_sq_euclidean(a, b) -> np.ndarray:
    """Squared Euclidean distances between rows of *a* and rows of *b*.

    Uses the expansion ``|x-y|^2 = |x|^2 - 2 x.y + |y|^2`` for an
    O(n·m·d) BLAS-backed computation, clamping tiny negatives produced by
    floating-point cancellation back to zero.
    """
    mat_a = as_matrix(a, name="a")
    mat_b = as_matrix(b, name="b")
    if mat_a.shape[1] != mat_b.shape[1]:
        raise ValueError(
            f"dimension mismatch: a has {mat_a.shape[1]} columns, "
            f"b has {mat_b.shape[1]}"
        )
    sq_a = np.einsum("ij,ij->i", mat_a, mat_a)[:, None]
    sq_b = np.einsum("ij,ij->i", mat_b, mat_b)[None, :]
    dist = sq_a - 2.0 * (mat_a @ mat_b.T) + sq_b
    np.maximum(dist, 0.0, out=dist)
    return dist


def pairwise_euclidean(a, b) -> np.ndarray:
    """Euclidean distances between rows of *a* and rows of *b*."""
    return np.sqrt(pairwise_sq_euclidean(a, b))


def nearest_indices(points, targets) -> np.ndarray:
    """For each row of *targets*, index of the nearest row in *points*.

    Used to pick representative scenarios: the scenario closest to each
    cluster centroid (paper §4.4).
    """
    dist = pairwise_sq_euclidean(points, targets)
    return np.argmin(dist, axis=0)
