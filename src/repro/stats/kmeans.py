"""K-means clustering (k-means++ initialisation + Lloyd iterations).

FLARE groups job co-location scenarios in whitened PC space with K-means
(paper §4.4).  This implementation supports:

* k-means++ seeding (D² sampling) for robust initialisation,
* multiple random restarts, keeping the lowest-inertia solution,
* sample weights, so scenarios can be weighted by how often they occur,
* empty-cluster repair (an empty cluster is re-seeded on the point
  farthest from its assigned centroid).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import pairwise_sq_euclidean
from .validation import as_matrix, check_random_state

__all__ = [
    "KMeans",
    "KMeansResult",
    "StreamingKMeans",
    "assigned_sq_distances",
    "kmeans_plus_plus_init",
]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one K-means fit.

    Attributes
    ----------
    centroids:
        ``(n_clusters, n_features)`` cluster centres.
    labels:
        Cluster index assigned to each input row.
    inertia:
        Sum of squared distances from each point to its centroid — the
        paper's SSE quality metric (Figure 9).
    n_iter:
        Lloyd iterations executed by the winning restart.
    converged:
        Whether assignments stabilised before ``max_iter``.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    converged: bool

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.n_clusters)

    def cluster_weights(self, sample_weight=None) -> np.ndarray:
        """Fraction of (weighted) points per cluster.

        These are the weights FLARE uses when averaging representative
        impacts (§4.5): the probability of observing a scenario from each
        group.
        """
        if sample_weight is None:
            counts = self.cluster_sizes().astype(np.float64)
        else:
            weight = np.asarray(sample_weight, dtype=np.float64)
            counts = np.bincount(
                self.labels, weights=weight, minlength=self.n_clusters
            )
        total = counts.sum()
        if total <= 0.0:
            raise ValueError("total sample weight must be positive")
        return counts / total


def kmeans_plus_plus_init(
    data: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    sample_weight: np.ndarray | None = None,
) -> np.ndarray:
    """Select initial centroids by D² weighted sampling (k-means++)."""
    n_samples = data.shape[0]
    weight = (
        np.ones(n_samples)
        if sample_weight is None
        else np.asarray(sample_weight, dtype=np.float64)
    )
    prob = weight / weight.sum()
    centroids = np.empty((n_clusters, data.shape[1]), dtype=np.float64)

    first = rng.choice(n_samples, p=prob)
    centroids[0] = data[first]
    closest_sq = pairwise_sq_euclidean(data, centroids[:1]).ravel()

    for k in range(1, n_clusters):
        scores = closest_sq * weight
        total = scores.sum()
        if total <= 0.0:
            # All remaining mass sits on already-chosen points (fewer
            # distinct points than clusters); fall back to uniform draw.
            idx = rng.choice(n_samples, p=prob)
        else:
            idx = rng.choice(n_samples, p=scores / total)
        centroids[k] = data[idx]
        new_sq = pairwise_sq_euclidean(data, centroids[k : k + 1]).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centroids


class KMeans:
    """Lloyd's K-means with k-means++ restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters *k*.
    n_init:
        Independent restarts; the lowest-inertia run wins.
    max_iter:
        Iteration cap per restart.
    tol:
        Convergence threshold on total centroid movement (squared).
    seed:
        Integer seed or :class:`numpy.random.Generator` for determinism.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-8,
        seed=None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.result_: KMeansResult | None = None

    # ------------------------------------------------------------------
    def fit(self, data, sample_weight=None, *, init=None) -> KMeansResult:
        """Cluster *data*; returns (and stores) the best restart.

        ``init`` warm-starts Lloyd from explicit ``(k, n_features)``
        centroids: a single run, no k-means++ seeding, no restarts.
        Starting from a converged solution of the same data is a fixed
        point — one stable iteration reproduces the input centroids
        bit-for-bit — which is what makes incremental refit provable.
        """
        matrix = as_matrix(data, name="data")
        n_samples = matrix.shape[0]
        if self.n_clusters > n_samples:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_samples}"
            )
        weight = None
        if sample_weight is not None:
            weight = np.asarray(sample_weight, dtype=np.float64)
            if weight.shape != (n_samples,):
                raise ValueError("sample_weight must have one entry per row")
            if (weight < 0).any() or weight.sum() <= 0:
                raise ValueError("sample_weight must be non-negative, sum > 0")

        rng = check_random_state(self.seed)
        if init is not None:
            init = np.ascontiguousarray(init, dtype=np.float64)
            if init.shape != (self.n_clusters, matrix.shape[1]):
                raise ValueError(
                    f"init must have shape ({self.n_clusters}, "
                    f"{matrix.shape[1]}), got {init.shape}"
                )
            best = self._single_run(matrix, weight, rng, init=init)
            self.result_ = best
            return best
        best: KMeansResult | None = None
        for _ in range(self.n_init):
            candidate = self._single_run(matrix, weight, rng)
            if best is None or candidate.inertia < best.inertia:
                best = candidate
        assert best is not None
        self.result_ = best
        return best

    def predict(self, data) -> np.ndarray:
        """Assign each row of *data* to the nearest fitted centroid."""
        if self.result_ is None:
            raise RuntimeError("KMeans must be fitted before predict")
        matrix = as_matrix(data, name="data")
        dist = pairwise_sq_euclidean(matrix, self.result_.centroids)
        return np.argmin(dist, axis=1)

    # ------------------------------------------------------------------
    def _single_run(
        self,
        data: np.ndarray,
        weight: np.ndarray | None,
        rng: np.random.Generator,
        init: np.ndarray | None = None,
    ) -> KMeansResult:
        if init is not None:
            centroids = init.copy()
        else:
            centroids = kmeans_plus_plus_init(
                data, self.n_clusters, rng, weight
            )
        eff_weight = np.ones(data.shape[0]) if weight is None else weight
        labels = np.full(data.shape[0], -1, dtype=np.intp)
        converged = False
        n_iter = 0

        for n_iter in range(1, self.max_iter + 1):
            dist = pairwise_sq_euclidean(data, centroids)
            new_labels = np.argmin(dist, axis=1)
            new_centroids = _update_centroids(
                data, new_labels, eff_weight, centroids, dist, self.n_clusters
            )
            shift = float(((new_centroids - centroids) ** 2).sum())
            stable = bool((new_labels == labels).all())
            centroids, labels = new_centroids, new_labels
            if stable or shift <= self.tol:
                converged = True
                break

        final_dist = pairwise_sq_euclidean(data, centroids)
        labels = np.argmin(final_dist, axis=1)
        point_sq = final_dist[np.arange(data.shape[0]), labels]
        inertia = float((point_sq * eff_weight).sum())
        return KMeansResult(
            centroids=centroids,
            labels=labels,
            inertia=inertia,
            n_iter=n_iter,
            converged=converged,
        )


class StreamingKMeans:
    """Lloyd's k-means over streamed row batches (out-of-core fit).

    Exact-equivalence contract: while the whole dataset fits in the
    initialisation *sample* (``len(sample) == n_total``), fitting
    delegates to the in-memory :class:`KMeans` on that sample, so the
    result is bit-identical to the in-memory path.  Beyond that, the
    centroids are seeded by an in-memory k-means++ fit on the uniform
    sample and refined with full-data Lloyd passes over the batch
    stream — the documented out-of-core approximation.  Empty clusters
    are repaired the same way as in-memory: re-seeded on the points
    currently farthest from their assigned centroid.

    ``batches`` is a zero-argument callable returning a fresh iterator
    of ``(rows, n_features)`` arrays; it is consumed once per Lloyd
    pass plus once for the final labelling pass.  Results depend only
    on the row stream, not on how it is batched.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-8,
        seed=None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.result_: KMeansResult | None = None
        #: Squared distance from each row to its assigned centroid, in
        #: stream order — kept so representative extraction does not
        #: need the full score matrix in memory.
        self.point_sq_distances_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        batches,
        *,
        n_total: int,
        sample,
        sample_weight=None,
        init=None,
    ) -> KMeansResult:
        """Cluster the streamed rows (see class docstring).

        ``init`` warm-starts from explicit centroids: the exact path
        becomes a single in-memory Lloyd run from them, the streaming
        path skips the sample-seeded k-means++ fit and refines *init*
        directly with full-data passes.  Either way, results depend
        only on (row stream, init), never on restarts or the seed.
        """
        sample = as_matrix(sample, name="sample")
        if self.n_clusters > n_total:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_total}"
            )
        if init is not None:
            init = np.ascontiguousarray(init, dtype=np.float64)
            if init.shape != (self.n_clusters, sample.shape[1]):
                raise ValueError(
                    f"init must have shape ({self.n_clusters}, "
                    f"{sample.shape[1]}), got {init.shape}"
                )
        if sample.shape[0] >= n_total:
            return self._fit_exact(sample, sample_weight, init)
        if sample_weight is not None:
            raise ValueError(
                "sample_weight requires the full dataset inside the "
                "initialisation sample; raise the sample capacity or use "
                "the in-memory fit"
            )
        return self._fit_streaming(batches, n_total, sample, init)

    # ------------------------------------------------------------------
    def _fit_exact(self, sample, sample_weight, init=None) -> KMeansResult:
        base = KMeans(
            self.n_clusters,
            n_init=self.n_init,
            max_iter=self.max_iter,
            tol=self.tol,
            seed=self.seed,
        ).fit(sample, sample_weight, init=init)
        self.point_sq_distances_ = _assigned_sq_distances(
            sample, base.centroids, base.labels
        )
        self.result_ = base
        return base

    def _fit_streaming(self, batches, n_total, sample, init=None) -> KMeansResult:
        if init is not None:
            centroids = init.copy()
        else:
            seed_fit = KMeans(
                self.n_clusters,
                n_init=self.n_init,
                max_iter=self.max_iter,
                tol=self.tol,
                seed=self.seed,
            ).fit(sample)
            centroids = seed_fit.centroids.copy()
        k = self.n_clusters
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            sums = np.zeros_like(centroids)
            counts = np.zeros(k, dtype=np.float64)
            far_vals = np.full(k, -np.inf)
            far_rows = np.zeros_like(centroids)
            for batch in batches():
                matrix = as_matrix(batch, name="batch")
                dist = pairwise_sq_euclidean(matrix, centroids)
                labels = np.argmin(dist, axis=1)
                point_sq = dist[np.arange(matrix.shape[0]), labels]
                counts += np.bincount(labels, minlength=k)
                np.add.at(sums, labels, matrix)
                # Track the k globally farthest points for empty-cluster
                # repair without a second pass.
                top = np.argsort(point_sq, kind="stable")[::-1][:k]
                merged_vals = np.concatenate([far_vals, point_sq[top]])
                merged_rows = np.concatenate([far_rows, matrix[top]])
                keep = np.argsort(merged_vals, kind="stable")[::-1][:k]
                far_vals = merged_vals[keep]
                far_rows = merged_rows[keep]
            new_centroids = centroids.copy()
            live = counts > 0
            new_centroids[live] = sums[live] / counts[live, None]
            empty = np.flatnonzero(~live)
            for slot, cluster in enumerate(empty):
                if np.isfinite(far_vals[slot % k]):
                    new_centroids[cluster] = far_rows[slot % k]
            shift = float(((new_centroids - centroids) ** 2).sum())
            centroids = new_centroids
            if shift <= self.tol:
                converged = True
                break

        labels = np.empty(n_total, dtype=np.intp)
        point_sq = np.empty(n_total, dtype=np.float64)
        position = 0
        for batch in batches():
            matrix = as_matrix(batch, name="batch")
            dist = pairwise_sq_euclidean(matrix, centroids)
            batch_labels = np.argmin(dist, axis=1)
            rows = matrix.shape[0]
            labels[position : position + rows] = batch_labels
            point_sq[position : position + rows] = _assigned_sq_distances(
                matrix, centroids, batch_labels
            )
            position += rows
        if position != n_total:
            raise ValueError(
                f"batch stream yielded {position} rows, expected {n_total}"
            )
        result = KMeansResult(
            centroids=centroids,
            labels=labels,
            inertia=float(point_sq.sum()),
            n_iter=n_iter,
            converged=converged,
        )
        self.point_sq_distances_ = point_sq
        self.result_ = result
        return result


def _assigned_sq_distances(
    data: np.ndarray, centroids: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Squared distance of each row to its assigned centroid.

    Computed by direct differencing, not the expanded
    ``||x||² - 2x·c + ||c||²`` form of :func:`pairwise_sq_euclidean`:
    the direct form preserves exact distance ties (e.g. the two members
    of a 2-point cluster are *exactly* equidistant from their mean), so
    representative ranking breaks those ties by index — identically to
    the in-memory path, which ranks by ``np.linalg.norm`` differences.
    """
    diff = data - centroids[labels]
    return np.einsum("ij,ij->i", diff, diff)


def assigned_sq_distances(
    data: np.ndarray, centroids: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Squared distance of each row to its assigned centroid.

    Public form of the direct-differencing kernel both fit paths use,
    so fit-time drift baselines and the drift monitor
    (:mod:`repro.obs.monitor`) score distances with bit-identical
    association order to clustering itself.
    """
    return _assigned_sq_distances(data, centroids, labels)


def _update_centroids(
    data: np.ndarray,
    labels: np.ndarray,
    weight: np.ndarray,
    old_centroids: np.ndarray,
    dist: np.ndarray,
    n_clusters: int,
) -> np.ndarray:
    """Weighted centroid update with empty-cluster repair."""
    centroids = old_centroids.copy()
    mass = np.bincount(labels, weights=weight, minlength=n_clusters)
    for dim in range(data.shape[1]):
        sums = np.bincount(
            labels, weights=weight * data[:, dim], minlength=n_clusters
        )
        live = mass > 0
        centroids[live, dim] = sums[live] / mass[live]

    empty = np.flatnonzero(mass == 0)
    if empty.size:
        # Re-seed each empty cluster on the point currently farthest from
        # its assigned centroid — a standard repair that keeps k constant.
        point_sq = dist[np.arange(data.shape[0]), labels]
        order = np.argsort(point_sq)[::-1]
        for slot, cluster in enumerate(empty):
            centroids[cluster] = data[order[slot % order.size]]
    return centroids
