"""Comparing clusterings: Rand indices and the gap statistic.

Used by the stability analysis (are FLARE's scenario groups an artefact
of the k-means seed or of measurement noise?) and as a second, more
principled cluster-count criterion next to the SSE knee:

* :func:`adjusted_rand_index` — chance-corrected agreement between two
  label vectors (1 = identical partitions, ≈0 = random relabelling);
* :func:`gap_statistic` — Tibshirani et al.'s comparison of the observed
  within-cluster dispersion against a uniform reference distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import comb

from .kmeans import KMeans
from .validation import as_matrix, check_labels, check_random_state

__all__ = ["adjusted_rand_index", "GapResult", "gap_statistic"]


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Adjusted Rand index between two partitions of the same samples.

    Returns 1.0 for identical partitions (up to relabelling), ~0.0 for
    independent random partitions, and can be negative for adversarial
    disagreement.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("label vectors must be 1-D with equal length")
    n = a.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples")
    a = check_labels(a, n)
    b = check_labels(b, n)

    # Contingency table.
    a_ids, a_inv = np.unique(a, return_inverse=True)
    b_ids, b_inv = np.unique(b, return_inverse=True)
    table = np.zeros((a_ids.size, b_ids.size), dtype=np.int64)
    np.add.at(table, (a_inv, b_inv), 1)

    sum_comb_cells = comb(table, 2).sum()
    sum_comb_a = comb(table.sum(axis=1), 2).sum()
    sum_comb_b = comb(table.sum(axis=0), 2).sum()
    total_pairs = comb(n, 2)

    expected = sum_comb_a * sum_comb_b / total_pairs
    maximum = 0.5 * (sum_comb_a + sum_comb_b)
    if maximum == expected:
        # Degenerate: both partitions trivial (all-one-cluster etc.).
        return 1.0 if sum_comb_cells == maximum else 0.0
    return float((sum_comb_cells - expected) / (maximum - expected))


@dataclass(frozen=True)
class GapResult:
    """Gap-statistic curve over candidate cluster counts.

    Attributes
    ----------
    cluster_counts:
        The k values evaluated.
    gaps:
        Gap(k) = E*[log W_k] − log W_k (higher = more structure than the
        uniform reference).
    std_errors:
        Reference-simulation standard errors s_k.
    """

    cluster_counts: np.ndarray
    gaps: np.ndarray
    std_errors: np.ndarray

    def suggested_k(self) -> int:
        """Smallest k with Gap(k) ≥ Gap(k+1) − s_{k+1} (Tibshirani rule);
        the largest evaluated k when the criterion never fires."""
        for i in range(self.gaps.size - 1):
            if self.gaps[i] >= self.gaps[i + 1] - self.std_errors[i + 1]:
                return int(self.cluster_counts[i])
        return int(self.cluster_counts[-1])


def gap_statistic(
    data,
    cluster_counts,
    *,
    n_references: int = 10,
    seed=None,
    kmeans_restarts: int = 4,
) -> GapResult:
    """Compute the gap statistic of k-means clusterings of *data*.

    The reference distribution is uniform over the data's bounding box
    (the standard choice).  Deterministic for a given *seed*.
    """
    matrix = as_matrix(data, name="data", min_rows=2)
    counts = [int(k) for k in cluster_counts]
    if not counts or min(counts) < 1:
        raise ValueError("cluster_counts must be positive and non-empty")
    if n_references < 2:
        raise ValueError("n_references must be >= 2")
    rng = check_random_state(seed)

    lows = matrix.min(axis=0)
    highs = matrix.max(axis=0)

    def log_dispersion(points: np.ndarray, k: int) -> float:
        result = KMeans(
            k, n_init=kmeans_restarts, seed=rng
        ).fit(points)
        return float(np.log(max(result.inertia, 1e-12)))

    gaps = np.empty(len(counts))
    errors = np.empty(len(counts))
    for i, k in enumerate(counts):
        observed = log_dispersion(matrix, k)
        reference_logs = np.empty(n_references)
        for r in range(n_references):
            reference = rng.uniform(
                lows, highs, size=matrix.shape
            )
            reference_logs[r] = log_dispersion(reference, k)
        gaps[i] = reference_logs.mean() - observed
        errors[i] = reference_logs.std(ddof=0) * np.sqrt(
            1.0 + 1.0 / n_references
        )
    return GapResult(
        cluster_counts=np.asarray(counts),
        gaps=gaps,
        std_errors=errors,
    )
