"""Correlation analysis for metric refinement.

FLARE's first analysis step prunes near-duplicate counters — e.g. a
"memory bandwidth" metric that is just LLC-miss-count × payload size —
reducing 100+ raw metrics to ~85 weakly correlated ones (paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .validation import as_matrix

__all__ = [
    "correlation_matrix",
    "prune_correlated",
    "prune_from_correlation",
    "PruneReport",
]


def correlation_matrix(data) -> np.ndarray:
    """Pearson correlation between the columns of *data*.

    Constant columns get correlation 0 with everything (including
    themselves) rather than NaN, so downstream thresholding never trips on
    dead counters.
    """
    matrix = as_matrix(data, name="data", min_rows=2)
    centered = matrix - matrix.mean(axis=0)
    std = centered.std(axis=0, ddof=0)
    live = std > 0.0
    scaled = np.zeros_like(centered)
    scaled[:, live] = centered[:, live] / std[live]
    corr = (scaled.T @ scaled) / matrix.shape[0]
    np.clip(corr, -1.0, 1.0, out=corr)
    return corr


@dataclass(frozen=True)
class PruneReport:
    """Outcome of correlation-based metric pruning.

    Attributes
    ----------
    kept:
        Column indices retained, in original order.
    dropped:
        Mapping ``dropped_index -> surviving_index`` recording which kept
        metric made each dropped one redundant.
    threshold:
        Absolute-correlation threshold used.
    """

    kept: tuple[int, ...]
    dropped: dict[int, int] = field(default_factory=dict)
    threshold: float = 0.95

    @property
    def n_kept(self) -> int:
        return len(self.kept)

    @property
    def n_dropped(self) -> int:
        return len(self.dropped)

    def kept_names(self, names) -> list[str]:
        """Surviving metric names given the full name list."""
        return [names[i] for i in self.kept]

    def describe_drops(self, names) -> list[str]:
        """Human-readable lines, one per pruned metric."""
        return [
            f"{names[drop]} (|r| > {self.threshold:.2f} with {names[keep]})"
            for drop, keep in sorted(self.dropped.items())
        ]


def prune_correlated(data, *, threshold: float = 0.95) -> PruneReport:
    """Greedily drop columns whose |correlation| with a kept column exceeds
    *threshold*.

    Columns are scanned in order of decreasing variance-explained (sum of
    squared correlations with all other columns), so the most "central"
    member of each correlated family survives — e.g. LLC-miss count
    survives and its derived bandwidth duplicate is dropped.
    """
    matrix = as_matrix(data, name="data", min_rows=2)
    return prune_from_correlation(
        correlation_matrix(matrix), threshold=threshold
    )


def prune_from_correlation(
    correlation, *, threshold: float = 0.95
) -> PruneReport:
    """:func:`prune_correlated` on a precomputed correlation matrix.

    The out-of-core fit accumulates the correlation matrix from shard
    batches (``RunningMoments.correlation``) and prunes from it with the
    same centrality-greedy scan, so streaming and in-memory refinement
    select the same surviving metric set.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    corr = np.abs(np.asarray(correlation, dtype=np.float64))
    if corr.ndim != 2 or corr.shape[0] != corr.shape[1]:
        raise ValueError("correlation must be a square matrix")

    # Quantise centrality before ranking: exactly-duplicate metric
    # families tie here, and the ~1e-12 float noise between the exact
    # and the streamed correlation computation must not decide which
    # family member survives.  Ties fall back to column order.
    centrality = np.round(corr.sum(axis=1), 6)
    order = np.argsort(-centrality, kind="stable")

    kept: list[int] = []
    dropped: dict[int, int] = {}
    for idx in order:
        redundant_with = None
        for keeper in kept:
            if corr[idx, keeper] > threshold:
                redundant_with = keeper
                break
        if redundant_with is None:
            kept.append(int(idx))
        else:
            dropped[int(idx)] = int(redundant_with)
    kept.sort()
    return PruneReport(kept=tuple(kept), dropped=dropped, threshold=threshold)
