"""Mergeable streaming statistics for out-of-core fitting.

The sharded scenario store (``repro.store``) lets FLARE profile and fit
datasets far larger than RAM, which requires every global statistic the
in-memory pipeline computes in one shot — per-metric mean/variance for
standardisation, the metric correlation matrix for pruning, the
covariance matrix behind PCA — to be accumulated batch-by-batch instead.

:class:`RunningMoments` does that with the pairwise/batched update of
Chan, Golub & LeVeque: each batch contributes its own exact moments,
merged into the running total with the cross-term correction, so the
result is independent of how rows were split into batches (up to float
rounding ~1e-12 relative, the documented tolerance of the out-of-core
fit).  :class:`ReservoirSampler` provides the deterministic uniform row
sample used to seed streaming k-means; below its capacity it retains
*every* row in order, which is what makes the small-dataset streaming
fit collapse to the exact in-memory computation.
"""

from __future__ import annotations

import numpy as np

from .validation import as_matrix, check_random_state

__all__ = ["RunningMoments", "ReservoirSampler"]


class RunningMoments:
    """Streaming mean / covariance over row batches (Chan et al. merge).

    Accumulates ``n``, the per-column mean, and the comoment matrix
    ``M = sum_i (x_i - mean)(x_i - mean)^T``; variance, covariance and
    Pearson correlation are derived from those on demand.  Batches may
    arrive in any sizes; the totals depend only on the multiset of rows.
    """

    def __init__(self, n_features: int | None = None) -> None:
        self.n = 0
        self.mean: np.ndarray | None = None
        self.comoment: np.ndarray | None = None
        if n_features is not None:
            self.mean = np.zeros(n_features, dtype=np.float64)
            self.comoment = np.zeros(
                (n_features, n_features), dtype=np.float64
            )

    @property
    def n_features(self) -> int:
        if self.mean is None:
            raise RuntimeError("RunningMoments has seen no data")
        return self.mean.shape[0]

    # ------------------------------------------------------------------
    def update(self, batch) -> "RunningMoments":
        """Fold a ``(rows, n_features)`` batch into the running totals."""
        matrix = as_matrix(batch, name="batch")
        b_n = matrix.shape[0]
        if b_n == 0:
            return self
        b_mean = matrix.mean(axis=0)
        centered = matrix - b_mean
        b_comoment = centered.T @ centered
        return self._merge_raw(b_n, b_mean, b_comoment)

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Fold another accumulator into this one (associative)."""
        if other.n == 0 or other.mean is None or other.comoment is None:
            return self
        return self._merge_raw(other.n, other.mean, other.comoment)

    def _merge_raw(
        self, b_n: int, b_mean: np.ndarray, b_comoment: np.ndarray
    ) -> "RunningMoments":
        if self.mean is None or self.comoment is None:
            self.mean = np.zeros(b_mean.shape[0], dtype=np.float64)
            self.comoment = np.zeros(
                (b_mean.shape[0], b_mean.shape[0]), dtype=np.float64
            )
        if b_mean.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"batch has {b_mean.shape[0]} features, accumulator "
                f"has {self.mean.shape[0]}"
            )
        total = self.n + b_n
        delta = b_mean - self.mean
        # Cross-term correction: between-group variance of the two means.
        self.comoment += b_comoment + np.outer(delta, delta) * (
            self.n * b_n / total
        )
        self.mean = self.mean + delta * (b_n / total)
        self.n = total
        return self

    # ------------------------------------------------------------------
    def variance(self, ddof: int = 0) -> np.ndarray:
        """Per-column variance with *ddof* degrees-of-freedom correction."""
        self._require_data(min_n=ddof + 1)
        return np.diag(self.comoment) / (self.n - ddof)

    def std(self, ddof: int = 0) -> np.ndarray:
        return np.sqrt(np.maximum(self.variance(ddof=ddof), 0.0))

    def covariance(self, ddof: int = 1) -> np.ndarray:
        """Covariance matrix with *ddof* correction (default sample cov)."""
        self._require_data(min_n=ddof + 1)
        return self.comoment / (self.n - ddof)

    def correlation(self) -> np.ndarray:
        """Pearson correlation, matching :func:`correlation_matrix`.

        Constant columns get correlation 0 with everything (including
        themselves), and values are clipped to ``[-1, 1]``.  Unlike the
        exact in-memory computation — where a constant column centres to
        exactly zero — streamed accumulation leaves float noise of order
        ``eps * |mean|`` on dead columns, so liveness uses the same
        relative tolerance as ``StandardScaler``.
        """
        self._require_data(min_n=2)
        std = self.std(ddof=0)
        live = std > 1e-12 * np.maximum(1.0, np.abs(self.mean))
        denom = np.where(live, std, 1.0)
        corr = self.comoment / (self.n * np.outer(denom, denom))
        corr[~live, :] = 0.0
        corr[:, ~live] = 0.0
        np.clip(corr, -1.0, 1.0, out=corr)
        return corr

    def _require_data(self, *, min_n: int) -> None:
        if self.mean is None or self.comoment is None or self.n < min_n:
            raise RuntimeError(
                f"RunningMoments needs at least {min_n} rows, has {self.n}"
            )


class ReservoirSampler:
    """Deterministic uniform sample of streamed rows (Algorithm R).

    While the stream fits within *capacity* the sampler simply retains
    every row **in arrival order** — the exact-equivalence hook the
    streaming fit relies on.  Past capacity, each new row ``i`` (0-based)
    replaces a uniformly chosen slot with probability ``capacity/(i+1)``,
    giving a uniform sample of all rows seen.  Fully seeded: the same
    stream and seed always yield the same sample.
    """

    def __init__(self, capacity: int, *, seed=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._rng = check_random_state(seed)
        self._rows: np.ndarray | None = None
        self._filled = 0
        self.n_seen = 0

    @property
    def saturated(self) -> bool:
        """True once more rows were seen than the reservoir holds."""
        return self.n_seen > self.capacity

    # ------------------------------------------------------------------
    def update(self, batch) -> "ReservoirSampler":
        matrix = as_matrix(batch, name="batch")
        if self._rows is None:
            self._rows = np.empty(
                (self.capacity, matrix.shape[1]), dtype=np.float64
            )
        if matrix.shape[1] != self._rows.shape[1]:
            raise ValueError(
                f"batch has {matrix.shape[1]} features, sampler "
                f"has {self._rows.shape[1]}"
            )
        start = 0
        if self._filled < self.capacity:
            take = min(self.capacity - self._filled, matrix.shape[0])
            self._rows[self._filled : self._filled + take] = matrix[:take]
            self._filled += take
            self.n_seen += take
            start = take
        remainder = matrix.shape[0] - start
        if remainder > 0:
            # Vectorised replacement draws: row with global index i keeps
            # slot floor(u * (i+1)), a uniform draw over 0..i; it lands in
            # the reservoir iff that slot is < capacity.
            indices = np.arange(
                self.n_seen, self.n_seen + remainder, dtype=np.int64
            )
            slots = np.floor(
                self._rng.random(remainder) * (indices + 1)
            ).astype(np.int64)
            hits = np.flatnonzero(slots < self.capacity)
            for offset in hits:
                self._rows[slots[offset]] = matrix[start + offset]
            self.n_seen += remainder
        return self

    def sample(self) -> np.ndarray:
        """The retained rows (arrival order until saturation)."""
        if self._rows is None:
            raise RuntimeError("ReservoirSampler has seen no data")
        return self._rows[: self._filled].copy()
