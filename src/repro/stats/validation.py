"""Shared array-validation helpers for the statistics substrate.

Every public entry point in :mod:`repro.stats` funnels its array inputs
through these helpers so that error messages are uniform and the numeric
kernels can assume clean, 2-D, finite ``float64`` data.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_matrix",
    "as_vector",
    "check_finite",
    "check_labels",
    "check_random_state",
]


def as_matrix(data, *, name: str = "data", min_rows: int = 1) -> np.ndarray:
    """Coerce *data* to a 2-D ``float64`` array and validate it.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  One-dimensional input is rejected
        (callers should reshape explicitly — implicit promotion hides bugs).
    name:
        Name used in error messages.
    min_rows:
        Minimum number of rows required.

    Returns
    -------
    numpy.ndarray
        A ``float64`` array of shape ``(n_samples, n_features)``.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.shape[0] < min_rows:
        raise ValueError(
            f"{name} needs at least {min_rows} row(s), got {arr.shape[0]}"
        )
    if arr.shape[1] == 0:
        raise ValueError(f"{name} must have at least one column")
    check_finite(arr, name=name)
    return arr


def as_vector(data, *, name: str = "data") -> np.ndarray:
    """Coerce *data* to a 1-D ``float64`` array and validate finiteness."""
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    check_finite(arr, name=name)
    return arr


def check_finite(arr: np.ndarray, *, name: str = "data") -> None:
    """Raise ``ValueError`` if *arr* contains NaN or infinity."""
    if not np.isfinite(arr).all():
        bad = int(np.size(arr) - np.isfinite(arr).sum())
        raise ValueError(f"{name} contains {bad} non-finite value(s)")


def check_labels(labels, n_samples: int) -> np.ndarray:
    """Validate a cluster-label vector against the sample count."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {arr.shape}")
    if arr.shape[0] != n_samples:
        raise ValueError(
            f"labels length {arr.shape[0]} does not match n_samples {n_samples}"
        )
    if arr.size and arr.min() < 0:
        raise ValueError("labels must be non-negative integers")
    return arr.astype(np.intp)


def check_random_state(seed) -> np.random.Generator:
    """Normalise *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
