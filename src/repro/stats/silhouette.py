"""Clustering-quality metrics: SSE and silhouette score.

With no ground-truth labels for job co-location scenarios, FLARE selects the
cluster count from unsupervised quality metrics (paper Figure 9): Sum of
Squared Errors (lower is better) and Silhouette Score (higher is better),
picking the point of diminishing returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import pairwise_euclidean
from .validation import as_matrix, check_labels

__all__ = [
    "sum_squared_error",
    "silhouette_samples",
    "silhouette_score",
    "ClusterQualitySweep",
    "sweep_cluster_counts",
    "knee_point",
]


def sum_squared_error(data, centroids, labels) -> float:
    """SSE of *data* against assigned *centroids* (K-means inertia)."""
    matrix = as_matrix(data, name="data")
    centres = as_matrix(centroids, name="centroids")
    lab = check_labels(labels, matrix.shape[0])
    if lab.size and lab.max() >= centres.shape[0]:
        raise ValueError("label refers to a centroid that does not exist")
    diff = matrix - centres[lab]
    return float(np.einsum("ij,ij->", diff, diff))


def silhouette_samples(data, labels) -> np.ndarray:
    """Per-sample silhouette coefficients in ``[-1, 1]``.

    For sample *i* with mean intra-cluster distance ``a`` and smallest mean
    distance to another cluster ``b``: ``s = (b - a) / max(a, b)``.
    Samples in singleton clusters score 0 by convention (Rousseeuw 1987).
    """
    matrix = as_matrix(data, name="data", min_rows=2)
    lab = check_labels(labels, matrix.shape[0])
    unique = np.unique(lab)
    if unique.size < 2:
        raise ValueError("silhouette requires at least 2 clusters")

    dist = pairwise_euclidean(matrix, matrix)
    n = matrix.shape[0]
    sizes = {int(c): int((lab == c).sum()) for c in unique}

    # Mean distance from every sample to every cluster, in one pass.
    mean_to_cluster = np.empty((n, unique.size))
    for j, cluster in enumerate(unique):
        members = lab == cluster
        mean_to_cluster[:, j] = dist[:, members].mean(axis=1)

    scores = np.zeros(n)
    cluster_pos = {int(c): j for j, c in enumerate(unique)}
    for i in range(n):
        own = int(lab[i])
        size = sizes[own]
        if size == 1:
            scores[i] = 0.0
            continue
        own_col = cluster_pos[own]
        # Exclude self from the intra-cluster mean.
        a = mean_to_cluster[i, own_col] * size / (size - 1)
        others = [
            mean_to_cluster[i, j]
            for j in range(unique.size)
            if j != own_col
        ]
        b = min(others)
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0.0 else (b - a) / denom
    return scores


def silhouette_score(data, labels) -> float:
    """Mean silhouette coefficient over all samples."""
    return float(silhouette_samples(data, labels).mean())


@dataclass(frozen=True)
class ClusterQualitySweep:
    """SSE / silhouette across candidate cluster counts (Figure 9 data)."""

    cluster_counts: np.ndarray
    sse: np.ndarray
    silhouette: np.ndarray

    def as_rows(self) -> list[tuple[int, float, float]]:
        """(k, SSE, silhouette) rows, for table rendering."""
        return [
            (int(k), float(s), float(sil))
            for k, s, sil in zip(self.cluster_counts, self.sse, self.silhouette)
        ]


def sweep_cluster_counts(
    data,
    cluster_counts,
    *,
    kmeans_factory,
    sample_weight=None,
) -> ClusterQualitySweep:
    """Fit K-means at each candidate *k* and record SSE + silhouette.

    Parameters
    ----------
    kmeans_factory:
        Callable ``k -> KMeans`` so callers control seeding and restarts.
    """
    matrix = as_matrix(data, name="data", min_rows=2)
    counts = [int(k) for k in cluster_counts]
    if not counts:
        raise ValueError("cluster_counts must be non-empty")
    if min(counts) < 2:
        raise ValueError("cluster counts must be >= 2 for silhouette")

    sse = np.empty(len(counts))
    sil = np.empty(len(counts))
    for i, k in enumerate(counts):
        result = kmeans_factory(k).fit(matrix, sample_weight=sample_weight)
        sse[i] = result.inertia
        if np.unique(result.labels).size < 2:
            sil[i] = 0.0
        else:
            sil[i] = silhouette_score(matrix, result.labels)
    return ClusterQualitySweep(
        cluster_counts=np.asarray(counts), sse=sse, silhouette=sil
    )


def knee_point(x, y) -> int:
    """Index of the knee of a decreasing curve (max distance to chord).

    Standard "kneedle-style" geometric criterion: normalise the curve to the
    unit square and return the point farthest from the straight line joining
    the endpoints.  Used to suggest the cluster count where SSE returns
    start to diminish (the paper picks 18 this way, balancing quality
    against replay cost).
    """
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if xs.size < 3:
        raise ValueError("knee detection needs at least 3 points")
    span_x = xs[-1] - xs[0]
    span_y = ys[-1] - ys[0]
    if span_x == 0:
        raise ValueError("x values must not be constant")
    nx = (xs - xs[0]) / span_x
    ny = (ys - ys[0]) / span_y if span_y != 0 else np.zeros_like(ys)
    # Distance from each point to the chord y = x (after normalisation).
    distance = np.abs(ny - nx)
    return int(np.argmax(distance))
