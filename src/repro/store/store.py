"""Sharded scenario store: writer, reader, compaction.

The store is a directory::

    store/
      manifest.json            # written last; no manifest -> no store
      shard-00000.scenarios.npy
      shard-00000.instances.npy
      shard-00001.scenarios.npy
      ...

:class:`StoreWriter` is the streaming sink — ``append`` buffers at most
one shard of scenarios and flushes it to disk when full, so a
simulation can stream millions of scenarios through it at shard-bounded
memory.  :class:`ShardedScenarioStore` is the reader; it satisfies the
:class:`~repro.cluster.ScenarioSource` protocol (len / getitem /
iter_batches / weights / schema / digest) with shards memory-mapped and
decoded one at a time.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from ..cluster.machine import MachineShape
from ..cluster.scenario import (
    Scenario,
    ScenarioDataset,
    normalized_weights,
)
from ..cluster.source import (
    ScenarioContentHasher,
    ScenarioSource,
    scenario_schema,
)
from ..io.serialization import (
    _shape_from_dict,
    _shape_to_dict,
    _signature_from_dict,
    _signature_to_dict,
)
from ..obs import inc, span
from ..perfmodel.signatures import JobSignature
from .format import (
    DEFAULT_SHARD_SIZE,
    SHARD_COMPRESSIONS,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
    StoreCorruptionError,
    StoreError,
    array_digest,
    decode_shard,
    encode_shard,
    fsync_path,
    read_shard_array,
    write_array_atomic,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.scenario import ScenarioKey

__all__ = [
    "StoreWriter",
    "ShardedScenarioStore",
    "open_store",
    "write_store",
    "compact_store",
]

MANIFEST_NAME = "manifest.json"
#: Decoded-shard cache depth for random access (``__getitem__``): the
#: representative-extraction access pattern is runs of hits within one
#: group's shard with occasional jumps back, so two slots suffice.
_DECODE_CACHE_SLOTS = 2


class StoreWriter:
    """Streaming scenario sink that shards to disk as it fills.

    Usable as a context manager — the store is finalised (manifest
    written) on clean exit only, so an exception mid-stream leaves no
    manifest and therefore no readable store::

        with StoreWriter(path, shape, shard_size=4096) as writer:
            run_simulation(config, sink=writer)
        store = writer.store
    """

    def __init__(
        self,
        path,
        shape: MachineShape,
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        overwrite: bool = False,
        compression: str | None = None,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if compression not in SHARD_COMPRESSIONS:
            raise StoreError(
                f"unknown shard compression {compression!r} "
                f"(expected one of {SHARD_COMPRESSIONS})"
            )
        self.path = pathlib.Path(path)
        self.shape = shape
        self.shard_size = shard_size
        self.compression = compression
        self.path.mkdir(parents=True, exist_ok=True)
        manifest = self.path / MANIFEST_NAME
        if manifest.exists() and not overwrite:
            raise StoreError(
                f"{self.path} already contains a store "
                "(pass overwrite=True to replace it)"
            )
        self._hasher = ScenarioContentHasher(shape)
        self._job_index: dict[str, int] = {}
        self._buffer: list[Scenario] = []
        self._shards: list[dict[str, Any]] = []
        self._written_files: list[pathlib.Path] = []
        self._total_rows = 0
        self._total_instances = 0
        self._finalized = False
        self.store: ShardedScenarioStore | None = None

    # ------------------------------------------------------------------
    def append(self, scenario: Scenario) -> None:
        """Buffer one scenario, flushing a shard when the buffer fills.

        Deliberately just a list push: content hashing, signature
        interning and columnar packing all happen per *shard* in
        :meth:`_flush_shard`, not per append — the per-row Python
        overhead here is what capped write throughput at ~1 MB/s.
        """
        if self._finalized:
            raise StoreError("StoreWriter is already finalized")
        self._buffer.append(scenario)
        if len(self._buffer) >= self.shard_size:
            self._flush_shard()

    def extend(self, scenarios) -> None:
        for scenario in scenarios:
            self.append(scenario)

    def finalize(self) -> "ShardedScenarioStore":
        """Flush the tail shard, write the manifest, open the store.

        Shard writes skip their per-file fsync; durability is settled
        here instead — one batched fsync pass over every written shard
        file plus the directory, *before* the manifest rename that
        makes them reachable.  The "no manifest, no store" contract
        keeps the deferral safe: a crash before this point loses only
        an unfinished store that never existed to readers.
        """
        if self._finalized:
            assert self.store is not None
            return self.store
        if self._buffer:
            self._flush_shard()
        self._sync_pending()
        manifest = self._manifest()
        self._write_manifest(manifest)
        self._finalized = True
        self.store = ShardedScenarioStore(self.path, manifest)
        return self.store

    def _sync_pending(self) -> None:
        """Batched fsync of every shard file written since the last sync."""
        with span("store.fsync", files=len(self._written_files)):
            for path in self._written_files:
                fsync_path(path)
            fsync_path(self.path)
        self._written_files.clear()

    def _manifest(self, *, extra: dict[str, Any] | None = None) -> dict:
        """Build the manifest for everything flushed so far.

        *extra* lets callers (the live store) ride additional fields —
        generation counters, watermarks — on top of the base layout
        without forking the format.
        """
        signatures = self._hasher.signature_objects()
        manifest = {
            "format": STORE_FORMAT,
            "format_version": STORE_FORMAT_VERSION,
            "schema_version": scenario_schema()["version"],
            "shape": _shape_to_dict(self.shape),
            "signatures": {
                name: _signature_to_dict(signatures[name])
                for name in sorted(signatures)
            },
            "job_names": [
                name
                for name, _ in sorted(
                    self._job_index.items(), key=lambda item: item[1]
                )
            ],
            "shard_size": self.shard_size,
            "compression": self.compression,
            "total_rows": self._total_rows,
            "total_instances": self._total_instances,
            "content_digest": self._hasher.hexdigest(),
            "shards": list(self._shards),
        }
        if extra:
            manifest.update(extra)
        return manifest

    def _write_manifest(self, manifest: dict[str, Any]) -> None:
        """Atomically publish *manifest* (tmp + fsync + rename)."""
        manifest_path = self.path / MANIFEST_NAME
        temporary = manifest_path.with_name(f".tmp-{MANIFEST_NAME}")
        try:
            with temporary.open("w") as handle:
                json.dump(manifest, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, manifest_path)
        finally:
            temporary.unlink(missing_ok=True)

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()

    # ------------------------------------------------------------------
    def _flush_shard(self) -> None:
        name = f"shard-{len(self._shards):05d}"
        with span(
            "store.write_shard", shard=name, rows=len(self._buffer)
        ):
            # One hash update per shard — same byte stream and conflict
            # detection as hashing per append (the buffer preserves
            # append order), an order of magnitude fewer Python calls.
            self._hasher.update_many(self._buffer)
            scenario_table, instance_table = encode_shard(
                self._buffer, self._job_index
            )
            scenario_bytes = write_array_atomic(
                self.path / f"{name}.scenarios.npy",
                scenario_table,
                fsync=False,
                compression=self.compression,
            )
            instance_bytes = write_array_atomic(
                self.path / f"{name}.instances.npy",
                instance_table,
                fsync=False,
                compression=self.compression,
            )
            self._written_files.append(self.path / f"{name}.scenarios.npy")
            self._written_files.append(self.path / f"{name}.instances.npy")
            entry: dict[str, Any] = {
                "name": name,
                "rows": int(scenario_table.shape[0]),
                "instances": int(instance_table.shape[0]),
                "scenarios_digest": array_digest(scenario_table),
                "instances_digest": array_digest(instance_table),
                "scenarios_bytes": scenario_bytes,
                "instances_bytes": instance_bytes,
            }
            if self.compression is not None:
                entry["compression"] = self.compression
            self._shards.append(entry)
            self._total_rows += int(scenario_table.shape[0])
            self._total_instances += int(instance_table.shape[0])
            inc("store_rows_written_total", scenario_table.shape[0])
            inc(
                "store_bytes_written_total",
                scenario_bytes + instance_bytes,
            )
        self._buffer.clear()


class ShardedScenarioStore:
    """Read side of the store; a disk-backed :class:`ScenarioSource`.

    Batches come out shard-by-shard (memory-mapped, decoded on demand);
    scalar columns needed globally — the observation durations behind
    ``weights()`` — are assembled straight from the mapped structured
    arrays without decoding scenarios.  Random access via ``__getitem__``
    decodes the owning shard and keeps the last few decoded shards
    cached.
    """

    def __init__(self, path, manifest: dict[str, Any]) -> None:
        self.path = pathlib.Path(path)
        self._validate_manifest(manifest)
        self.manifest = manifest
        self.shape = _shape_from_dict(manifest["shape"])
        self.signatures: dict[str, JobSignature] = {
            name: _signature_from_dict(raw)
            for name, raw in manifest["signatures"].items()
        }
        self.job_names: list[str] = list(manifest["job_names"])
        self.shard_size: int = int(manifest["shard_size"])
        self._shards: list[dict[str, Any]] = list(manifest["shards"])
        self._row_offsets = np.concatenate(
            [[0], np.cumsum([entry["rows"] for entry in self._shards])]
        ).astype(np.int64)
        self._decoded: dict[int, ScenarioDataset] = {}
        self._weights_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path) -> "ShardedScenarioStore":
        path = pathlib.Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no store manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise StoreCorruptionError(
                f"unreadable store manifest {manifest_path}: {error}"
            ) from error
        return cls(path, manifest)

    @staticmethod
    def _validate_manifest(manifest: dict[str, Any]) -> None:
        if manifest.get("format") != STORE_FORMAT:
            raise StoreError(
                f"not a scenario store (format {manifest.get('format')!r})"
            )
        if manifest.get("format_version") != STORE_FORMAT_VERSION:
            raise StoreError(
                "unsupported store format version "
                f"{manifest.get('format_version')!r} "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        declared = sum(entry["rows"] for entry in manifest["shards"])
        if declared != manifest["total_rows"]:
            raise StoreCorruptionError(
                f"manifest total_rows={manifest['total_rows']} but "
                f"shards sum to {declared}"
            )

    def refresh(self) -> int:
        """Re-read the manifest, picking up newly appended generations.

        Returns the number of scenario rows gained.  The manifest is
        replaced atomically by writers, so a reader only ever sees a
        complete old or complete new manifest — never a torn one.  The
        already-known shard prefix must be byte-identical (same names
        and digests); anything else means the store was rewritten in
        place and the reader must reopen from scratch
        (:class:`StoreCorruptionError`).  Decoded-shard cache entries
        survive a refresh: committed shards are immutable.
        """
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise StoreCorruptionError(
                f"unreadable store manifest {manifest_path}: {error}"
            ) from error
        self._validate_manifest(manifest)
        fresh = list(manifest["shards"])
        if len(fresh) < len(self._shards):
            raise StoreCorruptionError(
                f"store at {self.path} lost shards across refresh "
                f"({len(self._shards)} -> {len(fresh)}); reopen it"
            )
        for known, seen in zip(self._shards, fresh):
            if (
                known["name"] != seen["name"]
                or known["scenarios_digest"] != seen["scenarios_digest"]
                or known["instances_digest"] != seen["instances_digest"]
            ):
                raise StoreCorruptionError(
                    f"shard {known['name']} changed across refresh; the "
                    "store was rewritten in place — reopen it"
                )
        gained = sum(int(e["rows"]) for e in fresh[len(self._shards):])
        self.manifest = manifest
        self.signatures = {
            name: _signature_from_dict(raw)
            for name, raw in manifest["signatures"].items()
        }
        self.job_names = list(manifest["job_names"])
        self._shards = fresh
        self._row_offsets = np.concatenate(
            [[0], np.cumsum([entry["rows"] for entry in self._shards])]
        ).astype(np.int64)
        if gained:
            self._weights_cache = None
        return gained

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_entries(self) -> list[dict[str, Any]]:
        return list(self._shards)

    @property
    def bytes_total(self) -> int:
        return sum(
            entry["scenarios_bytes"] + entry["instances_bytes"]
            for entry in self._shards
        )

    def __len__(self) -> int:
        return int(self._row_offsets[-1])

    def __getitem__(self, index: int) -> Scenario:
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"scenario index {index} out of range")
        shard = int(
            np.searchsorted(self._row_offsets, index, side="right") - 1
        )
        local = index - int(self._row_offsets[shard])
        return self._shard_dataset(shard).scenarios[local]

    # ------------------------------------------------------------------
    def load_shard_arrays(
        self, shard: int, *, mmap: bool = True, verify: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """The raw (scenario table, instance table) of one shard."""
        entry = self._shards[shard]
        compression = entry.get("compression")
        with span(
            "store.read_shard", shard=entry["name"], rows=entry["rows"]
        ):
            scenario_table = read_shard_array(
                self.path / f"{entry['name']}.scenarios.npy",
                mmap=mmap,
                expected_rows=entry["rows"],
                expected_digest=(
                    entry["scenarios_digest"] if verify else None
                ),
                compression=compression,
            )
            instance_table = read_shard_array(
                self.path / f"{entry['name']}.instances.npy",
                mmap=mmap,
                expected_rows=entry["instances"],
                expected_digest=(
                    entry["instances_digest"] if verify else None
                ),
                compression=compression,
            )
            inc("store_rows_read_total", entry["rows"])
            inc(
                "store_bytes_read_total",
                entry["scenarios_bytes"] + entry["instances_bytes"],
            )
        return scenario_table, instance_table

    def _shard_dataset(self, shard: int) -> ScenarioDataset:
        cached = self._decoded.get(shard)
        if cached is not None:
            return cached
        scenario_table, instance_table = self.load_shard_arrays(shard)
        dataset = decode_shard(
            scenario_table,
            instance_table,
            self.job_names,
            self.signatures,
            self.shape,
        )
        while len(self._decoded) >= _DECODE_CACHE_SLOTS:
            self._decoded.pop(next(iter(self._decoded)))
        self._decoded[shard] = dataset
        return dataset

    @property
    def supports_shard_refs(self) -> bool:
        """Whether shards can be memory-mapped in place by workers.

        Compressed shards cannot — :class:`~repro.runtime.dispatch`'s
        shard-ref workers mmap the raw ``.npy`` files directly, so
        zero-copy dispatch is only offered for uncompressed stores.
        """
        return all(
            entry.get("compression") is None for entry in self._shards
        )

    def shard_refs(self, *, rows_per_ref: int | None = None) -> list:
        """Row-range descriptors for zero-copy executor dispatch.

        Each :class:`~repro.runtime.dispatch.ShardRef` names a shard by
        manifest identity (path, digests, row counts) plus a half-open
        scenario row range, so workers can memory-map and verify their
        own slice without the parent shipping any scenario data.  With
        ``rows_per_ref=None`` each shard is one ref (the store's
        natural granularity); otherwise each shard is split into the
        number of evenly-sized ranges that best matches the target —
        ranges never span shards, and a target close to the shard size
        keeps the shard whole rather than shaving off a tiny remainder
        ref that would pay a full shard load for a handful of rows.
        """
        from ..runtime.dispatch import ShardRef

        if rows_per_ref is not None and rows_per_ref < 1:
            raise ValueError("rows_per_ref must be >= 1 (or None)")
        if not self.supports_shard_refs:
            raise StoreError(
                "compressed shards cannot be dispatched as shard refs "
                "(workers mmap the raw .npy files); rewrite the store "
                "uncompressed via compact_store to use zero-copy dispatch"
            )
        refs: list[ShardRef] = []
        for index, entry in enumerate(self._shards):
            rows = int(entry["rows"])
            pieces = (
                1 if rows_per_ref is None else max(1, round(rows / rows_per_ref))
            )
            step = -(-rows // pieces)
            shard_base = int(self._row_offsets[index])
            for start in range(0, rows, max(1, step)):
                stop = min(start + step, rows)
                refs.append(
                    ShardRef(
                        store_path=str(self.path),
                        shard=entry["name"],
                        shard_index=index,
                        row_start=start,
                        row_stop=stop,
                        global_row=shard_base + start,
                        shard_rows=rows,
                        shard_instances=int(entry["instances"]),
                        scenarios_digest=entry["scenarios_digest"],
                        instances_digest=entry["instances_digest"],
                    )
                )
        return refs

    # ------------------------------------------------------------------
    # ScenarioSource protocol
    def iter_batches(
        self, batch_size: int | None = None
    ) -> Iterator[ScenarioDataset]:
        """Decode and yield shards in order (optionally re-sliced).

        ``None`` yields one batch per shard — the store's natural
        granularity.  An explicit *batch_size* re-slices within each
        shard; the concatenated row stream is identical either way.
        """
        for shard in range(self.n_shards):
            dataset = self._shard_dataset(shard)
            if batch_size is None:
                yield dataset
            else:
                yield from dataset.iter_batches(batch_size)

    def weights(self) -> np.ndarray:
        """Normalised observation-time weights, from the raw columns."""
        if self._weights_cache is None:
            self._weights_cache = normalized_weights(self.durations())
        return self._weights_cache

    def durations(self) -> np.ndarray:
        """Raw per-scenario observed durations, in scenario order."""
        if len(self) == 0:
            return np.zeros(0, dtype=np.float64)
        columns = [
            np.asarray(
                self.load_shard_arrays(shard)[0]["total_duration_s"],
                dtype=np.float64,
            )
            for shard in range(self.n_shards)
        ]
        return np.concatenate(columns)

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard summary statistics, streamed shard-by-shard.

        Reads only the columnar scenario tables (memory-mapped, one
        shard resident at a time) — scenarios are never decoded — so
        the pass stays cheap enough for the drift monitor and the
        ``repro store`` CLI to run it routinely against live stores.
        """
        stats: list[dict[str, Any]] = []
        for index, entry in enumerate(self._shards):
            table = self.load_shard_arrays(index)[0]
            durations = np.asarray(
                table["total_duration_s"], dtype=np.float64
            )
            stats.append(
                {
                    "shard": entry["name"],
                    "rows": int(entry["rows"]),
                    "instances": int(entry["instances"]),
                    "bytes": int(
                        entry["scenarios_bytes"] + entry["instances_bytes"]
                    ),
                    "duration_mass_s": float(durations.sum()),
                    "duration_min_s": (
                        float(durations.min()) if durations.size else 0.0
                    ),
                    "duration_max_s": (
                        float(durations.max()) if durations.size else 0.0
                    ),
                }
            )
        return stats

    def schema(self) -> dict[str, Any]:
        return scenario_schema()

    def digest(self) -> str:
        """Logical content digest recorded at write time."""
        return self.manifest["content_digest"]

    # ------------------------------------------------------------------
    def to_dataset(self) -> ScenarioDataset:
        """Materialise the full store in memory (use deliberately)."""
        scenarios: list[Scenario] = []
        for batch in self.iter_batches():
            scenarios.extend(batch.scenarios)
        return ScenarioDataset(shape=self.shape, scenarios=tuple(scenarios))

    def with_weights_from(
        self, durations: "dict[ScenarioKey, float]"
    ) -> ScenarioDataset:
        """Materialised copy re-weighted by external observation times.

        Mirrors :meth:`ScenarioDataset.with_weights_from`; reweighting
        feeds clustering, which needs the scenarios resident anyway.
        """
        return self.to_dataset().with_weights_from(durations)

    def verify(self) -> dict[str, Any]:
        """Re-read every shard, checking digests; returns a summary.

        Raises :class:`StoreCorruptionError` on the first bad shard.
        """
        rows = 0
        for shard in range(self.n_shards):
            scenario_table, _ = self.load_shard_arrays(shard, verify=True)
            rows += int(scenario_table.shape[0])
        hasher = ScenarioContentHasher(self.shape)
        for batch in self.iter_batches():
            for scenario in batch.scenarios:
                hasher.update(scenario)
        digest = hasher.hexdigest()
        if digest != self.digest():
            raise StoreCorruptionError(
                "store content digest mismatch "
                f"(manifest {self.digest()[:12]}…, decoded {digest[:12]}…)"
            )
        return {
            "n_shards": self.n_shards,
            "rows": rows,
            "content_digest": digest,
        }


def open_store(path) -> ShardedScenarioStore:
    """Open an existing scenario store directory."""
    return ShardedScenarioStore.open(path)


def write_store(
    source: ScenarioSource,
    path,
    *,
    shard_size: int = DEFAULT_SHARD_SIZE,
    overwrite: bool = False,
    compression: str | None = None,
) -> ShardedScenarioStore:
    """Write any :class:`ScenarioSource` out as a sharded store."""
    writer = StoreWriter(
        path,
        source.shape,
        shard_size=shard_size,
        overwrite=overwrite,
        compression=compression,
    )
    for batch in source.iter_batches():
        writer.extend(batch.scenarios)
    return writer.finalize()


def compact_store(
    store: ShardedScenarioStore,
    path,
    *,
    shard_size: int | None = None,
    overwrite: bool = False,
    compression: str | None = None,
) -> ShardedScenarioStore:
    """Rewrite *store* at *path* with a new shard size (and/or codec).

    The logical content digest is preserved and checked — compaction
    changes the physical layout, never the data.  Digests cover the
    uncompressed array bytes, so compressing or decompressing during
    compaction cannot change the digest either.
    """
    target_size = shard_size if shard_size is not None else store.shard_size
    compacted = write_store(
        store,
        path,
        shard_size=target_size,
        overwrite=overwrite,
        compression=compression,
    )
    if compacted.digest() != store.digest():
        raise StoreCorruptionError(
            "compaction changed the store's logical content"
        )
    return compacted
