"""On-disk shard codec for the scenario store.

Each shard is a pair of uncompressed ``.npy`` files holding numpy
structured arrays — the columnar split of the scenario records:

* ``<name>.scenarios.npy`` — one row per scenario: id, occurrence
  count, observed duration, and the (offset, count) slice of its
  instances in the companion file;
* ``<name>.instances.npy`` — one row per running instance: an interned
  job index (into the manifest's ``job_names`` list) and the load.

Uncompressed ``.npy`` is the point, not a shortcut: ``numpy.load``
memory-maps it directly, so readers touch only the pages they use and
the OS owns eviction — which is what keeps profiling and fitting at
shard-bounded memory.  Writes go to a temp file in the same directory
followed by ``os.replace``, so a crash mid-write can leave garbage temp
files but never a half-written shard under a live name; the manifest is
written last, making store creation atomic as a whole (no manifest, no
store).  Every array's sha256 is recorded in the manifest and checked
on read, so truncation and corruption are detected rather than decoded.
"""

from __future__ import annotations

import hashlib
import os
import pathlib

import numpy as np

from ..cluster.machine import MachineShape
from ..cluster.scenario import Scenario, ScenarioDataset
from ..perfmodel.contention import RunningInstance
from ..perfmodel.signatures import JobSignature

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "SCENARIO_DTYPE",
    "INSTANCE_DTYPE",
    "StoreError",
    "StoreCorruptionError",
    "array_digest",
    "write_array_atomic",
    "read_shard_array",
    "encode_shard",
    "decode_shard",
]

STORE_FORMAT = "repro-scenario-store"
STORE_FORMAT_VERSION = 1
DEFAULT_SHARD_SIZE = 1024

#: Columnar scenario record; ``inst_offset``/``inst_count`` index the
#: shard's instance table.  Explicit little-endian so shards are
#: byte-identical across platforms.
SCENARIO_DTYPE = np.dtype(
    [
        ("scenario_id", "<i8"),
        ("n_occurrences", "<i8"),
        ("total_duration_s", "<f8"),
        ("inst_offset", "<i8"),
        ("inst_count", "<i4"),
    ]
)

#: One running instance: interned job index + load.
INSTANCE_DTYPE = np.dtype([("job", "<i4"), ("load", "<f8")])


class StoreError(Exception):
    """A scenario-store operation failed."""


class StoreCorruptionError(StoreError):
    """On-disk bytes do not match what the manifest promises."""


def array_digest(array: np.ndarray) -> str:
    """sha256 of the array's C-order bytes."""
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()
    ).hexdigest()


def write_array_atomic(path: pathlib.Path, array: np.ndarray) -> int:
    """Write *array* as ``.npy`` via temp-file + rename; returns bytes."""
    path = pathlib.Path(path)
    temporary = path.with_name(f".tmp-{path.name}")
    try:
        with temporary.open("wb") as handle:
            np.save(handle, array)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)
    return path.stat().st_size


def read_shard_array(
    path: pathlib.Path,
    *,
    mmap: bool = True,
    expected_rows: int | None = None,
    expected_digest: str | None = None,
) -> np.ndarray:
    """Load one shard array, verifying it against the manifest entry.

    With ``mmap=True`` (the default) the data stays on disk and pages in
    on access.  Digest verification necessarily touches every page of
    the shard — a shard-sized cost, which is the unit the whole store is
    designed to bound memory and latency by.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise StoreCorruptionError(f"missing shard file: {path}")
    try:
        array = np.load(
            path, mmap_mode="r" if mmap else None, allow_pickle=False
        )
    except Exception as error:
        raise StoreCorruptionError(
            f"unreadable shard file {path}: {error}"
        ) from error
    if expected_rows is not None and array.shape[0] != expected_rows:
        raise StoreCorruptionError(
            f"shard {path.name} has {array.shape[0]} rows, manifest "
            f"says {expected_rows}"
        )
    if expected_digest is not None:
        actual = array_digest(array)
        if actual != expected_digest:
            raise StoreCorruptionError(
                f"shard {path.name} content digest mismatch "
                f"(manifest {expected_digest[:12]}…, file {actual[:12]}…)"
            )
    return array


# ----------------------------------------------------------------------
def encode_shard(
    scenarios: tuple[Scenario, ...] | list[Scenario],
    job_index: dict[str, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Columnarise *scenarios* into (scenario table, instance table).

    *job_index* interns job names; unseen names are assigned the next
    index in place, so the caller's ``job_names`` list (ordered by
    index) stays in sync across shards.
    """
    scenario_table = np.empty(len(scenarios), dtype=SCENARIO_DTYPE)
    n_instances = sum(len(s.instances) for s in scenarios)
    instance_table = np.empty(n_instances, dtype=INSTANCE_DTYPE)
    offset = 0
    for row, scenario in enumerate(scenarios):
        scenario_table[row] = (
            scenario.scenario_id,
            scenario.n_occurrences,
            scenario.total_duration_s,
            offset,
            len(scenario.instances),
        )
        for instance in scenario.instances:
            name = instance.signature.name
            index = job_index.setdefault(name, len(job_index))
            instance_table[offset] = (index, instance.load)
            offset += 1
    return scenario_table, instance_table


def decode_shard(
    scenario_table: np.ndarray,
    instance_table: np.ndarray,
    job_names: list[str],
    signatures: dict[str, JobSignature],
    shape: MachineShape,
) -> ScenarioDataset:
    """Rebuild the in-memory scenarios of one shard.

    The scenario key is recomputed from the instance job counts, the
    same reconstruction ``dataset_from_dict`` performs for the legacy
    JSON format — so a store round trip is indistinguishable from a
    JSON round trip.
    """
    scenarios = []
    jobs = instance_table["job"]
    loads = instance_table["load"]
    for row in scenario_table:
        start = int(row["inst_offset"])
        stop = start + int(row["inst_count"])
        counts: dict[str, int] = {}
        instances = []
        for position in range(start, stop):
            name = job_names[jobs[position]]
            counts[name] = counts.get(name, 0) + 1
            instances.append(
                RunningInstance(
                    signature=signatures[name], load=float(loads[position])
                )
            )
        scenarios.append(
            Scenario(
                scenario_id=int(row["scenario_id"]),
                key=tuple(sorted(counts.items())),
                instances=tuple(instances),
                n_occurrences=int(row["n_occurrences"]),
                total_duration_s=float(row["total_duration_s"]),
            )
        )
    return ScenarioDataset(shape=shape, scenarios=tuple(scenarios))
