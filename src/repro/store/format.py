"""On-disk shard codec for the scenario store.

Each shard is a pair of uncompressed ``.npy`` files holding numpy
structured arrays — the columnar split of the scenario records:

* ``<name>.scenarios.npy`` — one row per scenario: id, occurrence
  count, observed duration, and the (offset, count) slice of its
  instances in the companion file;
* ``<name>.instances.npy`` — one row per running instance: an interned
  job index (into the manifest's ``job_names`` list) and the load.

Uncompressed ``.npy`` is the point, not a shortcut: ``numpy.load``
memory-maps it directly, so readers touch only the pages they use and
the OS owns eviction — which is what keeps profiling and fitting at
shard-bounded memory.  Writes go to a temp file in the same directory
followed by ``os.replace``, so a crash mid-write can leave garbage temp
files but never a half-written shard under a live name; the manifest is
written last, making store creation atomic as a whole (no manifest, no
store).  Every array's sha256 is recorded in the manifest and checked
on read, so truncation and corruption are detected rather than decoded.
"""

from __future__ import annotations

import hashlib
import io
import os
import pathlib
import zlib

import numpy as np

from ..cluster.machine import MachineShape
from ..cluster.scenario import Scenario, ScenarioDataset
from ..perfmodel.contention import RunningInstance
from ..perfmodel.signatures import JobSignature

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "SCENARIO_DTYPE",
    "INSTANCE_DTYPE",
    "SHARD_COMPRESSIONS",
    "StoreError",
    "StoreCorruptionError",
    "array_digest",
    "fsync_path",
    "write_array_atomic",
    "read_shard_array",
    "encode_shard",
    "decode_shard",
]

STORE_FORMAT = "repro-scenario-store"
STORE_FORMAT_VERSION = 1
DEFAULT_SHARD_SIZE = 1024

#: Supported shard codecs.  ``None`` (raw ``.npy``) keeps shards
#: memory-mappable; ``"zlib"`` trades mmap/zero-copy dispatch for
#: smaller files.  Digests always cover the *uncompressed* array bytes,
#: so a store's ``content_digest`` is codec-independent.
SHARD_COMPRESSIONS = (None, "zlib")

#: Columnar scenario record; ``inst_offset``/``inst_count`` index the
#: shard's instance table.  Explicit little-endian so shards are
#: byte-identical across platforms.
SCENARIO_DTYPE = np.dtype(
    [
        ("scenario_id", "<i8"),
        ("n_occurrences", "<i8"),
        ("total_duration_s", "<f8"),
        ("inst_offset", "<i8"),
        ("inst_count", "<i4"),
    ]
)

#: One running instance: interned job index + load.
INSTANCE_DTYPE = np.dtype([("job", "<i4"), ("load", "<f8")])


class StoreError(Exception):
    """A scenario-store operation failed."""


class StoreCorruptionError(StoreError):
    """On-disk bytes do not match what the manifest promises."""


def array_digest(array: np.ndarray) -> str:
    """sha256 of the array's C-order bytes."""
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()
    ).hexdigest()


def fsync_path(path: pathlib.Path) -> None:
    """fsync a file (or directory) that already exists under its name."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_array_atomic(
    path: pathlib.Path,
    array: np.ndarray,
    *,
    fsync: bool = True,
    compression: str | None = None,
) -> int:
    """Write *array* as ``.npy`` via temp-file + rename; returns bytes.

    ``fsync=False`` skips the per-file flush — the rename is still
    atomic, so readers never see a half-written array under a live
    name, but durability is deferred to the caller (the store writer
    batches one fsync pass over all shards at ``finalize`` time, just
    before the manifest that makes them reachable; "no manifest, no
    store" keeps that safe).  ``compression="zlib"`` deflates the
    ``.npy`` byte stream; such files are not memory-mappable and must
    be read back with the same ``compression=``.
    """
    if compression not in SHARD_COMPRESSIONS:
        raise StoreError(f"unknown shard compression {compression!r}")
    path = pathlib.Path(path)
    temporary = path.with_name(f".tmp-{path.name}")
    buffer = io.BytesIO()
    np.save(buffer, array)
    data = buffer.getbuffer()
    if compression == "zlib":
        data = zlib.compress(data, 6)
    # Raw fd writes: at fleet shard cadence the buffered-IO and pathlib
    # ceremony around a temp file costs more than the data itself.
    fd = os.open(temporary, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o666)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    except BaseException:
        os.close(fd)
        temporary.unlink(missing_ok=True)
        raise
    os.close(fd)
    os.replace(temporary, path)
    return len(data)


def read_shard_array(
    path: pathlib.Path,
    *,
    mmap: bool = True,
    expected_rows: int | None = None,
    expected_digest: str | None = None,
    compression: str | None = None,
) -> np.ndarray:
    """Load one shard array, verifying it against the manifest entry.

    With ``mmap=True`` (the default) the data stays on disk and pages in
    on access.  Digest verification necessarily touches every page of
    the shard — a shard-sized cost, which is the unit the whole store is
    designed to bound memory and latency by.  Compressed shards
    (``compression="zlib"``) are decompressed in memory — ``mmap`` is
    ignored — and the digest is checked over the *decompressed* array,
    so corruption anywhere in the pipeline still surfaces as
    :class:`StoreCorruptionError`.
    """
    if compression not in SHARD_COMPRESSIONS:
        raise StoreError(f"unknown shard compression {compression!r}")
    path = pathlib.Path(path)
    if not path.exists():
        raise StoreCorruptionError(f"missing shard file: {path}")
    try:
        if compression == "zlib":
            array = np.load(
                io.BytesIO(zlib.decompress(path.read_bytes())),
                allow_pickle=False,
            )
        else:
            array = np.load(
                path, mmap_mode="r" if mmap else None, allow_pickle=False
            )
    except Exception as error:
        raise StoreCorruptionError(
            f"unreadable shard file {path}: {error}"
        ) from error
    if expected_rows is not None and array.shape[0] != expected_rows:
        raise StoreCorruptionError(
            f"shard {path.name} has {array.shape[0]} rows, manifest "
            f"says {expected_rows}"
        )
    if expected_digest is not None:
        actual = array_digest(array)
        if actual != expected_digest:
            raise StoreCorruptionError(
                f"shard {path.name} content digest mismatch "
                f"(manifest {expected_digest[:12]}…, file {actual[:12]}…)"
            )
    return array


# ----------------------------------------------------------------------
def encode_shard(
    scenarios: tuple[Scenario, ...] | list[Scenario],
    job_index: dict[str, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Columnarise *scenarios* into (scenario table, instance table).

    *job_index* interns job names; unseen names are assigned the next
    index in place, so the caller's ``job_names`` list (ordered by
    index) stays in sync across shards.

    Packing is columnar: one generator pass per column feeding
    ``np.fromiter`` plus a cumulative-sum for the instance offsets,
    instead of per-row structured assignment — an order of magnitude
    less Python-level work per scenario, byte-identical output (every
    field of both tables is assigned, and the dtypes have no padding).
    """
    n = len(scenarios)
    counts = np.fromiter(
        (len(s.instances) for s in scenarios), dtype=np.int64, count=n
    )
    scenario_table = np.empty(n, dtype=SCENARIO_DTYPE)
    scenario_table["scenario_id"] = np.fromiter(
        (s.scenario_id for s in scenarios), dtype=np.int64, count=n
    )
    scenario_table["n_occurrences"] = np.fromiter(
        (s.n_occurrences for s in scenarios), dtype=np.int64, count=n
    )
    scenario_table["total_duration_s"] = np.fromiter(
        (s.total_duration_s for s in scenarios), dtype=np.float64, count=n
    )
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1])) if n else counts
    scenario_table["inst_offset"] = offsets
    scenario_table["inst_count"] = counts

    n_instances = int(counts.sum())
    instance_table = np.empty(n_instances, dtype=INSTANCE_DTYPE)
    instance_table["job"] = np.fromiter(
        (
            job_index.setdefault(
                instance.signature.name, len(job_index)
            )
            for scenario in scenarios
            for instance in scenario.instances
        ),
        dtype=np.int32,
        count=n_instances,
    )
    instance_table["load"] = np.fromiter(
        (
            instance.load
            for scenario in scenarios
            for instance in scenario.instances
        ),
        dtype=np.float64,
        count=n_instances,
    )
    return scenario_table, instance_table


def decode_shard(
    scenario_table: np.ndarray,
    instance_table: np.ndarray,
    job_names: list[str],
    signatures: dict[str, JobSignature],
    shape: MachineShape,
) -> ScenarioDataset:
    """Rebuild the in-memory scenarios of one shard.

    The scenario key is recomputed from the instance job counts, the
    same reconstruction ``dataset_from_dict`` performs for the legacy
    JSON format — so a store round trip is indistinguishable from a
    JSON round trip.
    """
    scenarios = []
    jobs = instance_table["job"]
    loads = instance_table["load"]
    for row in scenario_table:
        start = int(row["inst_offset"])
        stop = start + int(row["inst_count"])
        counts: dict[str, int] = {}
        instances = []
        for position in range(start, stop):
            name = job_names[jobs[position]]
            counts[name] = counts.get(name, 0) + 1
            instances.append(
                RunningInstance(
                    signature=signatures[name], load=float(loads[position])
                )
            )
        scenarios.append(
            Scenario(
                scenario_id=int(row["scenario_id"]),
                key=tuple(sorted(counts.items())),
                instances=tuple(instances),
                n_occurrences=int(row["n_occurrences"]),
                total_duration_s=float(row["total_duration_s"]),
            )
        )
    return ScenarioDataset(shape=shape, scenarios=tuple(scenarios))
