"""Live (continuously appendable) scenario store and tailing reader.

Fleet mode never sees a frozen trace: scenarios arrive in batches as
the datacenter runs.  :class:`LiveStore` extends the one-shot
:class:`~repro.store.StoreWriter` discipline to a sequence of
*generations* — each ``commit()`` flushes the buffered scenarios as
shard files, fsyncs them, and then atomically replaces the manifest
with one carrying a bumped generation number and a row watermark.
Because the manifest rename is atomic and shards are written (and
synced) before it, a concurrent reader only ever observes a complete
generation: old manifest or new manifest, never a torn state.

:class:`TailingSource` is the read side: a
:class:`~repro.cluster.ScenarioSource` over a growing store that can
cheaply ``refresh()`` to pick up newly committed generations and hand
out ``new_since(watermark)`` row-range views, so incremental passes
touch only fresh rows.
"""

from __future__ import annotations

import pathlib
from typing import Any, Iterator

import numpy as np

from ..cluster.machine import MachineShape
from ..cluster.scenario import (
    Scenario,
    ScenarioDataset,
    normalized_weights,
)
from ..cluster.source import ScenarioContentHasher, scenario_schema
from .format import DEFAULT_SHARD_SIZE, StoreError
from .store import ShardedScenarioStore, StoreWriter

__all__ = ["LiveStore", "StoreSlice", "TailingSource"]


class LiveStore:
    """Continuously appendable scenario store with atomic generations.

    Usable as a context manager — pending scenarios are committed on
    clean exit only, mirroring :class:`StoreWriter`'s "no manifest, no
    store" contract per generation::

        with LiveStore(path, shape, shard_size=512) as live:
            live.extend(first_batch)
            live.commit()          # generation 1 becomes visible
            live.extend(more)      # generation 2 committed on exit

    Each commit flushes the buffer (a partial shard is flushed too —
    generations do not wait for a full shard), fsyncs every new shard
    file plus the directory, and atomically replaces ``manifest.json``
    with the full shard list plus ``generation`` and ``watermark``
    fields.  Committed shards are immutable; readers holding the store
    open pick up new generations via
    :meth:`ShardedScenarioStore.refresh`.
    """

    def __init__(
        self,
        path,
        shape: MachineShape,
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        overwrite: bool = False,
        compression: str | None = None,
    ) -> None:
        self._writer = StoreWriter(
            path,
            shape,
            shard_size=shard_size,
            overwrite=overwrite,
            compression=compression,
        )
        self.generation = 0
        self._committed_rows = 0
        self._manifest_written = False
        self._closed = False

    @property
    def path(self) -> pathlib.Path:
        return self._writer.path

    @property
    def shape(self) -> MachineShape:
        return self._writer.shape

    @property
    def watermark(self) -> int:
        """Rows visible to readers (committed), not rows appended."""
        return self._committed_rows

    # ------------------------------------------------------------------
    def append(self, scenario: Scenario) -> None:
        if self._closed:
            raise StoreError("LiveStore is closed")
        self._writer.append(scenario)

    def extend(self, scenarios) -> None:
        for scenario in scenarios:
            self.append(scenario)

    def commit(self) -> int:
        """Publish everything appended so far as the next generation.

        Returns the generation number now visible to readers.  A commit
        with nothing new appended is a no-op (the current generation is
        returned) once a first manifest exists; the very first commit
        may be empty, publishing a readable zero-row store.
        """
        if self._closed:
            raise StoreError("LiveStore is closed")
        if self._writer._buffer:
            self._writer._flush_shard()
        if (
            self._manifest_written
            and self._writer._total_rows == self._committed_rows
        ):
            return self.generation
        self._writer._sync_pending()
        self.generation += 1
        manifest = self._writer._manifest(
            extra={
                "generation": self.generation,
                "watermark": self._writer._total_rows,
            }
        )
        self._writer._write_manifest(manifest)
        self._committed_rows = self._writer._total_rows
        self._manifest_written = True
        return self.generation

    def close(self) -> None:
        """Commit pending scenarios and refuse further appends."""
        if not self._closed:
            self.commit()
            self._closed = True

    def reader(self) -> ShardedScenarioStore:
        """Open a fresh reader over the last committed generation."""
        if not self._manifest_written:
            raise StoreError(
                f"{self.path} has no committed generation yet "
                "(call commit() first)"
            )
        return ShardedScenarioStore.open(self.path)

    def tail(self) -> "TailingSource":
        """A :class:`TailingSource` over the last committed generation."""
        return TailingSource(self.reader())

    def __enter__(self) -> "LiveStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class StoreSlice:
    """A half-open row-range view of a store; a :class:`ScenarioSource`.

    Batches slice the owning store's shards in place — only shards
    overlapping the range are touched, and only their boundary batches
    are re-sliced.  The digest is the logical content digest of the
    slice alone, so checkpoint journals and memo keys scoped to "the
    new rows" stay stable across refreshes.
    """

    def __init__(
        self, store: ShardedScenarioStore, start: int, stop: int
    ) -> None:
        if not 0 <= start <= stop <= len(store):
            raise ValueError(
                f"slice [{start}, {stop}) out of range for a "
                f"{len(store)}-row store"
            )
        self._store = store
        self.start = start
        self.stop = stop
        self._digest: str | None = None

    @property
    def shape(self) -> MachineShape:
        return self._store.shape

    def __len__(self) -> int:
        return self.stop - self.start

    def __getitem__(self, index: int) -> Scenario:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"scenario index {index} out of range")
        return self._store[self.start + index]

    def iter_batches(
        self, batch_size: int | None = None
    ) -> Iterator[ScenarioDataset]:
        offsets = self._store._row_offsets
        for shard in range(self._store.n_shards):
            base = int(offsets[shard])
            top = int(offsets[shard + 1])
            if top <= self.start or base >= self.stop:
                continue
            dataset = self._store._shard_dataset(shard)
            lo = max(0, self.start - base)
            hi = min(top, self.stop) - base
            if lo > 0 or hi < len(dataset):
                dataset = ScenarioDataset(
                    shape=dataset.shape,
                    scenarios=dataset.scenarios[lo:hi],
                )
            if batch_size is None:
                yield dataset
            else:
                yield from dataset.iter_batches(batch_size)

    def durations(self) -> np.ndarray:
        """Observed durations for the slice, from the raw columns."""
        if len(self) == 0:
            return np.zeros(0, dtype=np.float64)
        offsets = self._store._row_offsets
        columns: list[np.ndarray] = []
        for shard in range(self._store.n_shards):
            base = int(offsets[shard])
            top = int(offsets[shard + 1])
            if top <= self.start or base >= self.stop:
                continue
            column = np.asarray(
                self._store.load_shard_arrays(shard)[0]["total_duration_s"],
                dtype=np.float64,
            )
            lo = max(0, self.start - base)
            hi = min(top, self.stop) - base
            columns.append(column[lo:hi])
        return np.concatenate(columns)

    def weights(self) -> np.ndarray:
        """Weights normalised over the slice alone."""
        return normalized_weights(self.durations())

    def schema(self) -> dict[str, Any]:
        return scenario_schema()

    def digest(self) -> str:
        """Logical content digest of the slice (computed once)."""
        if self._digest is None:
            hasher = ScenarioContentHasher(self.shape)
            for batch in self.iter_batches():
                hasher.update_many(batch.scenarios)
            self._digest = hasher.hexdigest()
        return self._digest


class TailingSource:
    """A :class:`ScenarioSource` over a store that is still growing.

    Wraps an open :class:`ShardedScenarioStore` (or a path to one) and
    adds the fleet-mode affordances: ``refresh()`` to see newly
    committed generations without reopening, ``watermark`` marking the
    rows seen so far, and ``new_since(watermark)`` returning a
    :class:`StoreSlice` over only the fresh rows.
    """

    def __init__(self, store) -> None:
        if not isinstance(store, ShardedScenarioStore):
            store = ShardedScenarioStore.open(store)
        self._store = store

    @property
    def store(self) -> ShardedScenarioStore:
        return self._store

    @property
    def path(self) -> pathlib.Path:
        """Store directory (lets save_model persist a store reference)."""
        return self._store.path

    @property
    def shape(self) -> MachineShape:
        return self._store.shape

    @property
    def watermark(self) -> int:
        return len(self._store)

    @property
    def generation(self) -> int:
        """The store's committed generation (0 for one-shot stores)."""
        return int(self._store.manifest.get("generation", 0))

    def refresh(self) -> int:
        """Pick up newly committed generations; returns rows gained."""
        return self._store.refresh()

    def new_since(self, watermark: int) -> StoreSlice:
        """View of the rows appended after *watermark*."""
        return StoreSlice(self._store, watermark, len(self._store))

    # ------------------------------------------------------------------
    # ScenarioSource protocol (delegated to the underlying store)
    def __len__(self) -> int:
        return len(self._store)

    def __getitem__(self, index: int) -> Scenario:
        return self._store[index]

    def iter_batches(
        self, batch_size: int | None = None
    ) -> Iterator[ScenarioDataset]:
        return self._store.iter_batches(batch_size)

    def weights(self) -> np.ndarray:
        return self._store.weights()

    def durations(self) -> np.ndarray:
        return self._store.durations()

    def schema(self) -> dict[str, Any]:
        return self._store.schema()

    def digest(self) -> str:
        return self._store.digest()
