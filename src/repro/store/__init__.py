"""Sharded columnar scenario store: FLARE's out-of-core dataset backing.

``repro.store`` persists a scenario population as a directory of
fixed-size shards — numpy structured arrays on disk, memory-mapped on
read — described by a JSON manifest carrying the schema version,
per-shard row counts and content digests.  A
:class:`ShardedScenarioStore` satisfies the same
:class:`~repro.cluster.ScenarioSource` protocol as the in-memory
:class:`~repro.cluster.ScenarioDataset`, so simulation
(``run_simulation(..., sink=StoreWriter(...))``), profiling
(``Profiler.profile(store)``) and fitting (``Flare.fit(store)``) stream
shard-by-shard with peak memory bounded by the shard size, not the
dataset size.  See ``docs/store.md`` for the on-disk format.
"""

from .format import (
    DEFAULT_SHARD_SIZE,
    STORE_FORMAT,
    STORE_FORMAT_VERSION,
    StoreCorruptionError,
    StoreError,
)
from .live import LiveStore, StoreSlice, TailingSource
from .metrics_store import MetricStore, MetricStoreWriter
from .store import (
    ShardedScenarioStore,
    StoreWriter,
    compact_store,
    open_store,
    write_store,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "StoreError",
    "StoreCorruptionError",
    "ShardedScenarioStore",
    "StoreWriter",
    "LiveStore",
    "StoreSlice",
    "TailingSource",
    "MetricStore",
    "MetricStoreWriter",
    "open_store",
    "write_store",
    "compact_store",
]
