"""Sharded spill store for profiled metric matrices.

The out-of-core fit profiles scenarios shard-by-shard but needs several
passes over the resulting metric rows (pruning statistics, PCA, score
projection, k-means).  Rather than retaining the full ``n x ~100``
float64 matrix in memory, each profiled batch is appended here as a
plain 2-D ``.npy`` shard and re-read memory-mapped on every pass — the
same atomic-write / digest-verified discipline as the scenario store,
without the scenario codec.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Iterator

import numpy as np

from .format import (
    StoreCorruptionError,
    StoreError,
    array_digest,
    read_shard_array,
    write_array_atomic,
)

__all__ = ["MetricStore", "MetricStoreWriter"]

METRICS_FORMAT = "repro-metric-store"
METRICS_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"


class MetricStoreWriter:
    """Append profiled metric batches as shards; finalize to read."""

    def __init__(
        self, path, metric_names: tuple[str, ...], *, overwrite: bool = False
    ) -> None:
        self.path = pathlib.Path(path)
        self.metric_names = tuple(metric_names)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / MANIFEST_NAME).exists() and not overwrite:
            raise StoreError(
                f"{self.path} already contains a metric store "
                "(pass overwrite=True to replace it)"
            )
        self._shards: list[dict[str, Any]] = []
        self._total_rows = 0
        self._finalized = False

    @classmethod
    def for_append(cls, path) -> "MetricStoreWriter":
        """Reopen an existing metric store to append further shards.

        The incremental refit keeps one persistent spill across model
        generations: rows already profiled stay where they are, fresh
        rows land as new shards, and ``finalize`` atomically replaces
        the manifest so a crash mid-append leaves the previous
        generation's manifest (and therefore a consistent store)
        intact.
        """
        existing = MetricStore.open(path)
        writer = cls.__new__(cls)
        writer.path = existing.path
        writer.metric_names = existing.metric_names
        writer._shards = list(existing._shards)
        writer._total_rows = existing.n_rows
        writer._finalized = False
        return writer

    def append(self, matrix: np.ndarray) -> None:
        """Write one ``(rows, n_metrics)`` float64 batch as a shard."""
        if self._finalized:
            raise StoreError("MetricStoreWriter is already finalized")
        matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.metric_names):
            raise ValueError(
                f"expected (rows, {len(self.metric_names)}) matrix, "
                f"got {matrix.shape}"
            )
        name = f"metrics-{len(self._shards):05d}"
        nbytes = write_array_atomic(self.path / f"{name}.npy", matrix)
        self._shards.append(
            {
                "name": name,
                "rows": int(matrix.shape[0]),
                "digest": array_digest(matrix),
                "bytes": nbytes,
            }
        )
        self._total_rows += int(matrix.shape[0])

    def finalize(self) -> "MetricStore":
        if not self._finalized:
            manifest = {
                "format": METRICS_FORMAT,
                "format_version": METRICS_FORMAT_VERSION,
                "metric_names": list(self.metric_names),
                "total_rows": self._total_rows,
                "shards": self._shards,
            }
            manifest_path = self.path / MANIFEST_NAME
            temporary = manifest_path.with_name(f".tmp-{MANIFEST_NAME}")
            try:
                with temporary.open("w") as handle:
                    json.dump(manifest, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temporary, manifest_path)
            finally:
                temporary.unlink(missing_ok=True)
            self._finalized = True
        return MetricStore.open(self.path)


class MetricStore:
    """Reader over metric shards; every pass re-maps from disk."""

    def __init__(self, path, manifest: dict[str, Any]) -> None:
        if manifest.get("format") != METRICS_FORMAT:
            raise StoreError(
                f"not a metric store (format {manifest.get('format')!r})"
            )
        if manifest.get("format_version") != METRICS_FORMAT_VERSION:
            raise StoreError(
                "unsupported metric-store format version "
                f"{manifest.get('format_version')!r}"
            )
        self.path = pathlib.Path(path)
        self.manifest = manifest
        self.metric_names = tuple(manifest["metric_names"])
        self._shards = list(manifest["shards"])
        declared = sum(entry["rows"] for entry in self._shards)
        if declared != manifest["total_rows"]:
            raise StoreCorruptionError(
                f"metric manifest total_rows={manifest['total_rows']} "
                f"but shards sum to {declared}"
            )

    @classmethod
    def open(cls, path) -> "MetricStore":
        path = pathlib.Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no metric-store manifest at {manifest_path}")
        return cls(path, json.loads(manifest_path.read_text()))

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_rows(self) -> int:
        return int(self.manifest["total_rows"])

    def iter_matrices(
        self, *, mmap: bool = True, verify: bool = False
    ) -> Iterator[np.ndarray]:
        """Yield the metric shards in row order.

        Verification is off by default: the fit makes several passes
        over shards it wrote moments earlier in the same process, and
        digesting every pass would triple the read cost for no new
        information.  ``verify=True`` is for reopening cold data.
        """
        for entry in self._shards:
            yield read_shard_array(
                self.path / f"{entry['name']}.npy",
                mmap=mmap,
                expected_rows=entry["rows"],
                expected_digest=entry["digest"] if verify else None,
            )
