"""Baseline evaluation methodologies FLARE is compared against.

Full-datacenter evaluation (the expensive ground truth), random sampling
(cheaper, high-variance), and conventional single-service load-testing
(cheap, co-location-blind).
"""

from .full_datacenter import (
    DatacenterTruth,
    JobScenarioReductions,
    evaluate_full_datacenter,
    per_job_scenario_reductions,
)
from .loadtesting import LoadTestResult, load_test_all_jobs, load_test_job
from .stratified import (
    evaluate_by_stratified_sampling,
    stratify_by_metric,
)
from .sampling import (
    SamplingEvaluation,
    evaluate_by_sampling,
    evaluate_job_by_sampling,
    sampling_cost_curve,
)

__all__ = [
    "DatacenterTruth",
    "evaluate_full_datacenter",
    "JobScenarioReductions",
    "per_job_scenario_reductions",
    "SamplingEvaluation",
    "evaluate_by_sampling",
    "evaluate_job_by_sampling",
    "sampling_cost_curve",
    "evaluate_by_stratified_sampling",
    "stratify_by_metric",
    "LoadTestResult",
    "load_test_job",
    "load_test_all_jobs",
]
