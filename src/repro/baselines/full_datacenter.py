"""Full-datacenter evaluation: the ground truth (paper Figure 12).

Evaluates a feature on *every* recorded scenario, weighted by observation
time.  This is what FLARE and sampling are judged against — accurate but
50× more expensive than FLARE (every scenario must be reproduced or the
live datacenter must run the feature).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import BASELINE, Feature
from ..cluster.source import ScenarioSource
from ..core.performance import (
    mips_reduction_pct,
    scenario_performance_many,
)

__all__ = [
    "DatacenterTruth",
    "evaluate_full_datacenter",
    "JobScenarioReductions",
    "per_job_scenario_reductions",
]


@dataclass(frozen=True)
class DatacenterTruth:
    """Per-scenario and aggregate feature impact over the whole datacenter.

    Attributes
    ----------
    feature:
        Feature evaluated.
    scenario_ids:
        Scenarios hosting at least one HP job, in dataset order.
    reductions_pct:
        MIPS reduction of each such scenario.
    weights:
        Observation-time weights of those scenarios (renormalised).
    per_job:
        Job code → weighted-average reduction across the scenarios that
        host it (weights additionally scaled by instance count — the
        datacenter average "of all instances of each service", §3.1).
    evaluation_cost:
        Scenario evaluations performed (= HP scenario count).
    """

    feature: Feature
    scenario_ids: tuple[int, ...]
    reductions_pct: np.ndarray
    weights: np.ndarray
    per_job: dict[str, float]
    evaluation_cost: int

    @property
    def overall_reduction_pct(self) -> float:
        """The datacenter-wide weighted-average MIPS reduction."""
        return float(self.reductions_pct @ self.weights)


def evaluate_full_datacenter(
    dataset: ScenarioSource,
    feature: Feature,
    *,
    solver: str = "auto",
    memo=None,
) -> DatacenterTruth:
    """Evaluate *feature* on every scenario of *dataset*.

    Accepts any :class:`~repro.cluster.ScenarioSource` and walks it
    batch-by-batch, so computing the truth over a sharded store keeps
    peak memory at shard size.  Each source batch's HP scenarios are
    solved as one contention batch under both machine configurations;
    *solver* selects the fixed-point path (bit-identical either way),
    and *memo* optionally reuses already-memoised solves (a repeat
    feature sweep over the same fleet skips straight to aggregation).
    """
    baseline_machine = BASELINE(dataset.shape.perf)
    feature_machine = feature(dataset.shape.perf)
    all_weights = dataset.weights()

    ids: list[int] = []
    reductions: list[float] = []
    weights: list[float] = []
    job_acc: dict[str, list[tuple[float, float]]] = {}

    for batch_pairs in _iter_batch_pairs(dataset):
        eligible = [
            (index, scenario)
            for index, scenario in batch_pairs
            if scenario.hp_instances
        ]
        if not eligible:
            continue
        scenarios = [scenario for _, scenario in eligible]
        bases = scenario_performance_many(
            baseline_machine, scenarios, solver=solver, memo=memo
        )
        enableds = scenario_performance_many(
            feature_machine,
            scenarios,
            normalize_machine=baseline_machine,
            solver=solver,
            memo=memo,
        )
        for (index, scenario), base, enabled in zip(eligible, bases, enableds):
            reduction = mips_reduction_pct(base.overall, enabled.overall)
            ids.append(scenario.scenario_id)
            reductions.append(reduction)
            weights.append(float(all_weights[index]))

            for job_name, base_perf in base.per_job.items():
                job_red = mips_reduction_pct(
                    base_perf, enabled.per_job[job_name]
                )
                job_weight = (
                    float(all_weights[index]) * scenario.count_of(job_name)
                )
                job_acc.setdefault(job_name, []).append((job_weight, job_red))

    if not ids:
        raise ValueError("dataset contains no scenario with HP jobs")

    weight_arr = np.asarray(weights)
    weight_arr = weight_arr / weight_arr.sum()

    per_job = {}
    for job_name, entries in job_acc.items():
        total = sum(w for w, _ in entries)
        per_job[job_name] = (
            sum(w * r for w, r in entries) / total if total > 0 else 0.0
        )

    return DatacenterTruth(
        feature=feature,
        scenario_ids=tuple(ids),
        reductions_pct=np.asarray(reductions),
        weights=weight_arr,
        per_job=per_job,
        evaluation_cost=len(ids),
    )


def _iter_batch_pairs(source: ScenarioSource):
    """Batches of (global index, scenario) pairs, one batch resident at a time."""
    index = 0
    for batch in source.iter_batches():
        pairs = []
        for scenario in batch.scenarios:
            pairs.append((index, scenario))
            index += 1
        yield pairs


@dataclass(frozen=True)
class JobScenarioReductions:
    """Per-scenario impact of a feature on one HP job.

    The population behind the per-job truth bars of Figures 2, 12b and 14b
    and behind per-job sampling.

    Attributes
    ----------
    job_name:
        The HP job.
    scenario_ids:
        Scenarios hosting the job.
    reductions_pct:
        The job's MIPS reduction in each such scenario.
    weights:
        Normalised weights: observation time × instance count (the
        likelihood of observing an instance of the job in that scenario).
    """

    job_name: str
    feature: Feature
    scenario_ids: tuple[int, ...]
    reductions_pct: np.ndarray
    weights: np.ndarray

    @property
    def mean_reduction_pct(self) -> float:
        """The datacenter truth for this job."""
        return float(self.reductions_pct @ self.weights)

    @property
    def std_reduction_pct(self) -> float:
        """Weighted standard deviation across scenarios (error bars)."""
        mean = self.mean_reduction_pct
        var = float(((self.reductions_pct - mean) ** 2) @ self.weights)
        return var**0.5


def per_job_scenario_reductions(
    dataset: ScenarioSource,
    feature: Feature,
    job_name: str,
    *,
    solver: str = "auto",
    memo=None,
) -> JobScenarioReductions:
    """Evaluate *feature*'s impact on *job_name* in every hosting scenario.

    Like :func:`evaluate_full_datacenter`, accepts any scenario source,
    streams it batch-by-batch, and solves each batch's hosting
    scenarios as one contention batch per machine configuration
    (optionally memoised through *memo*).
    """
    baseline_machine = BASELINE(dataset.shape.perf)
    feature_machine = feature(dataset.shape.perf)
    all_weights = dataset.weights()

    ids: list[int] = []
    reductions: list[float] = []
    weights: list[float] = []
    for batch_pairs in _iter_batch_pairs(dataset):
        eligible = [
            (index, scenario, scenario.count_of(job_name))
            for index, scenario in batch_pairs
            if scenario.count_of(job_name) > 0
        ]
        if not eligible:
            continue
        scenarios = [scenario for _, scenario, _ in eligible]
        bases = scenario_performance_many(
            baseline_machine, scenarios, solver=solver, memo=memo
        )
        enableds = scenario_performance_many(
            feature_machine,
            scenarios,
            normalize_machine=baseline_machine,
            solver=solver,
            memo=memo,
        )
        for (index, scenario, count), base, enabled in zip(
            eligible, bases, enableds
        ):
            ids.append(scenario.scenario_id)
            reductions.append(
                mips_reduction_pct(
                    base.per_job[job_name], enabled.per_job[job_name]
                )
            )
            weights.append(float(all_weights[index]) * count)

    if not ids:
        raise ValueError(f"no scenario hosts job {job_name!r}")
    weight_arr = np.asarray(weights)
    weight_arr = weight_arr / weight_arr.sum()
    return JobScenarioReductions(
        job_name=job_name,
        feature=feature,
        scenario_ids=tuple(ids),
        reductions_pct=np.asarray(reductions),
        weights=weight_arr,
    )
