"""Conventional load-testing baseline (paper §3.1, Figure 2).

The pre-FLARE practice: populate instances of *one* service on a single
machine and measure the feature's impact on it — no co-located jobs, no
interference.  The paper shows these estimates deviate badly from the
in-datacenter truth; this module reproduces that methodology so the
deviation can be demonstrated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.features import BASELINE, Feature
from ..cluster.machine import MachineShape
from ..perfmodel.contention import RunningInstance, solve_colocation_cached
from ..perfmodel.signatures import JobSignature
from ..workloads import HP_JOBS

__all__ = ["LoadTestResult", "load_test_job", "load_test_all_jobs"]


@dataclass(frozen=True)
class LoadTestResult:
    """Single-service load-testing measurement for one feature.

    Attributes
    ----------
    job_name:
        The service under test.
    n_instances:
        Instances populated on the machine (fills the vCPUs, as the paper
        and [51, 58] populate instances of one service).
    baseline_mips / feature_mips:
        Total service MIPS without / with the feature.
    """

    job_name: str
    feature: Feature
    n_instances: int
    baseline_mips: float
    feature_mips: float

    @property
    def reduction_pct(self) -> float:
        if self.baseline_mips <= 0.0:
            return 0.0
        return (
            (self.baseline_mips - self.feature_mips)
            / self.baseline_mips
            * 100.0
        )


def load_test_job(
    shape: MachineShape,
    signature: JobSignature,
    feature: Feature,
    *,
    load: float = 1.0,
) -> LoadTestResult:
    """Run the load-testing benchmark for one service.

    Populates as many instances of the service as fit the machine (vCPU
    and DRAM limits) at full load, then measures total MIPS under the
    baseline and feature configurations.
    """
    by_cpu = shape.vcpus // signature.vcpus
    by_mem = int(shape.dram_gb // signature.dram_gb)
    n_instances = max(1, min(by_cpu, by_mem))
    instances = tuple(
        RunningInstance(signature=signature, load=load)
        for _ in range(n_instances)
    )
    base = solve_colocation_cached(BASELINE(shape.perf), instances)
    enabled = solve_colocation_cached(feature(shape.perf), instances)
    return LoadTestResult(
        job_name=signature.name,
        feature=feature,
        n_instances=n_instances,
        baseline_mips=base.total_mips,
        feature_mips=enabled.total_mips,
    )


def load_test_all_jobs(
    shape: MachineShape,
    feature: Feature,
    *,
    jobs: dict[str, JobSignature] | None = None,
) -> dict[str, LoadTestResult]:
    """Load-test every HP service; returns job code → result."""
    catalogue = jobs if jobs is not None else HP_JOBS
    return {
        name: load_test_job(shape, signature, feature)
        for name, signature in catalogue.items()
    }
