"""Stratified-sampling baseline: sampling with a single-metric heuristic.

Between naive random sampling and FLARE sits an obvious middle ground a
practitioner would try first: stratify the scenarios on one intuitive
metric (machine occupancy, or MPKI) and sample proportionally from each
stratum.  The paper's §3.2 observation — a feature's impact correlates
with no single metric — predicts this helps only modestly; this module
makes that testable.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from .._deprecations import resolve_positional_kwarg
from ..cluster.features import Feature
from ..cluster.source import ScenarioSource, ensure_dataset
from ..runtime.executor import Executor, resolve_executor
from ..runtime.resilience import partition_failures
from ..runtime.seeding import spawn_seed_sequences
from ..stats.sampling import TRIAL_CHUNK_SIZE, SamplingTrialResult
from .full_datacenter import DatacenterTruth, evaluate_full_datacenter
from .sampling import SamplingEvaluation

__all__ = ["stratify_by_metric", "evaluate_by_stratified_sampling"]


def stratify_by_metric(
    values: np.ndarray, *args, n_strata: int = 6
) -> np.ndarray:
    """Assign each element a stratum index by quantile of *values*.

    ``n_strata`` is keyword-only; passing it positionally is deprecated.
    """
    n_strata = resolve_positional_kwarg(
        args, n_strata, owner="stratify_by_metric", name="n_strata"
    )
    if n_strata < 1:
        raise ValueError("n_strata must be >= 1")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("values must be 1-D")
    if n_strata == 1:
        return np.zeros(arr.size, dtype=np.intp)
    edges = np.quantile(arr, np.linspace(0.0, 1.0, n_strata + 1)[1:-1])
    return np.searchsorted(edges, arr, side="right").astype(np.intp)


def _stratified_trial(
    reductions: np.ndarray,
    weights: np.ndarray,
    stratum_members: tuple[np.ndarray, ...],
    stratum_shares: np.ndarray,
    allocation: np.ndarray,
    seed_seq: np.random.SeedSequence,
) -> float:
    """One stratified trial with its own spawned stream (picklable)."""
    rng = np.random.default_rng(seed_seq)
    total = 0.0
    for members, share, count in zip(
        stratum_members, stratum_shares, allocation
    ):
        member_weights = weights[members]
        prob = member_weights / member_weights.sum()
        picked = rng.choice(members, size=count, replace=True, p=prob)
        total += share * reductions[picked].mean()
    return total


def evaluate_by_stratified_sampling(
    dataset: ScenarioSource,
    feature: Feature,
    *,
    sample_size: int,
    n_trials: int = 1000,
    seed: int = 0,
    n_strata: int = 6,
    stratify_on: str = "occupancy",
    truth: DatacenterTruth | None = None,
    executor: "Executor | str | None" = None,
) -> SamplingEvaluation:
    """Occupancy- (or metric-) stratified sampling estimate distribution.

    Each trial draws samples from every stratum (allocation proportional
    to stratum weight, at least one each) and combines stratum means with
    stratum weights — the textbook stratified estimator.  Trials dispatch
    on *executor* with per-trial spawned seeds, so results are identical
    under serial and parallel execution.

    Parameters
    ----------
    stratify_on:
        ``"occupancy"`` (total vCPU occupancy) or ``"hp_mpki"``
        (approximate HP LLC pressure from the recorded instances).
    """
    if sample_size < n_strata:
        raise ValueError("sample_size must be >= n_strata")
    # Stratification needs random access to the hosting scenarios, so a
    # non-resident source is materialised here; the truth computation
    # above it streams either way.
    dataset = ensure_dataset(dataset)
    resolved = truth if truth is not None else evaluate_full_datacenter(
        dataset, feature
    )
    id_to_index = {
        s.scenario_id: i for i, s in enumerate(dataset.scenarios)
    }
    hp_scenarios = [dataset[id_to_index[sid]] for sid in resolved.scenario_ids]

    if stratify_on == "occupancy":
        keys = np.array([s.occupancy(dataset.shape) for s in hp_scenarios])
    elif stratify_on == "hp_mpki":
        keys = np.array(
            [
                float(
                    np.mean(
                        [
                            inst.signature.llc_apki
                            for inst in s.hp_instances
                        ]
                    )
                )
                for s in hp_scenarios
            ]
        )
    else:
        raise ValueError(
            f"unknown stratification key {stratify_on!r}; "
            "expected 'occupancy' or 'hp_mpki'"
        )

    strata = stratify_by_metric(keys, n_strata=n_strata)
    reductions = resolved.reductions_pct
    weights = resolved.weights

    # Per-stratum population and weight share.
    stratum_members: list[np.ndarray] = []
    stratum_weights: list[float] = []
    for stratum in range(int(strata.max()) + 1):
        members = np.flatnonzero(strata == stratum)
        if members.size == 0:
            continue
        stratum_members.append(members)
        stratum_weights.append(float(weights[members].sum()))
    stratum_weight_arr = np.asarray(stratum_weights)
    stratum_weight_arr = stratum_weight_arr / stratum_weight_arr.sum()

    # Proportional allocation with a floor of one sample per stratum.
    allocation = np.maximum(
        1, np.round(stratum_weight_arr * sample_size).astype(int)
    )
    while allocation.sum() > sample_size:
        allocation[int(np.argmax(allocation))] -= 1
    while allocation.sum() < sample_size:
        allocation[int(np.argmax(stratum_weight_arr))] += 1

    trial = functools.partial(
        _stratified_trial,
        reductions,
        weights,
        tuple(stratum_members),
        stratum_weight_arr,
        allocation,
    )
    from ..obs import inc, span

    with span(
        "baseline.stratified",
        feature=feature.name,
        sample_size=sample_size,
        n_trials=n_trials,
        n_strata=len(stratum_members),
        stratify_on=stratify_on,
    ):
        raw = resolve_executor(executor).map(
            trial,
            spawn_seed_sequences(seed, n_trials),
            chunk_size=TRIAL_CHUNK_SIZE,
            stage="stratified-trials",
        )
    # Independent trials: drop any degraded to TaskFailure, keep the rest.
    survivors, failures = partition_failures(raw)
    if failures and not survivors:
        raise RuntimeError(
            f"all {n_trials} stratified trials failed: {failures[0].error}"
        )
    estimates = np.asarray(survivors)
    inc("sampling_trials_total", n_trials)

    trials = SamplingTrialResult(
        estimates=estimates,
        sample_size=sample_size,
        truth=resolved.overall_reduction_pct,
    )
    return SamplingEvaluation(
        feature=feature,
        job_name=None,
        trials=trials,
        evaluation_cost=sample_size,
    )
