"""Stratified-sampling baseline: sampling with a single-metric heuristic.

Between naive random sampling and FLARE sits an obvious middle ground a
practitioner would try first: stratify the scenarios on one intuitive
metric (machine occupancy, or MPKI) and sample proportionally from each
stratum.  The paper's §3.2 observation — a feature's impact correlates
with no single metric — predicts this helps only modestly; this module
makes that testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import Feature
from ..cluster.scenario import ScenarioDataset
from ..stats.sampling import SamplingTrialResult
from ..stats.validation import check_random_state
from .full_datacenter import DatacenterTruth, evaluate_full_datacenter
from .sampling import SamplingEvaluation

__all__ = ["stratify_by_metric", "evaluate_by_stratified_sampling"]


def stratify_by_metric(
    values: np.ndarray, n_strata: int
) -> np.ndarray:
    """Assign each element a stratum index by quantile of *values*."""
    if n_strata < 1:
        raise ValueError("n_strata must be >= 1")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("values must be 1-D")
    if n_strata == 1:
        return np.zeros(arr.size, dtype=np.intp)
    edges = np.quantile(arr, np.linspace(0.0, 1.0, n_strata + 1)[1:-1])
    return np.searchsorted(edges, arr, side="right").astype(np.intp)


def evaluate_by_stratified_sampling(
    dataset: ScenarioDataset,
    feature: Feature,
    *,
    sample_size: int,
    n_trials: int = 1000,
    seed: int = 0,
    n_strata: int = 6,
    stratify_on: str = "occupancy",
    truth: DatacenterTruth | None = None,
) -> SamplingEvaluation:
    """Occupancy- (or metric-) stratified sampling estimate distribution.

    Each trial draws samples from every stratum (allocation proportional
    to stratum weight, at least one each) and combines stratum means with
    stratum weights — the textbook stratified estimator.

    Parameters
    ----------
    stratify_on:
        ``"occupancy"`` (total vCPU occupancy) or ``"hp_mpki"``
        (approximate HP LLC pressure from the recorded instances).
    """
    if sample_size < n_strata:
        raise ValueError("sample_size must be >= n_strata")
    resolved = truth if truth is not None else evaluate_full_datacenter(
        dataset, feature
    )
    id_to_index = {
        s.scenario_id: i for i, s in enumerate(dataset.scenarios)
    }
    hp_scenarios = [dataset[id_to_index[sid]] for sid in resolved.scenario_ids]

    if stratify_on == "occupancy":
        keys = np.array([s.occupancy(dataset.shape) for s in hp_scenarios])
    elif stratify_on == "hp_mpki":
        keys = np.array(
            [
                float(
                    np.mean(
                        [
                            inst.signature.llc_apki
                            for inst in s.hp_instances
                        ]
                    )
                )
                for s in hp_scenarios
            ]
        )
    else:
        raise ValueError(
            f"unknown stratification key {stratify_on!r}; "
            "expected 'occupancy' or 'hp_mpki'"
        )

    strata = stratify_by_metric(keys, n_strata)
    reductions = resolved.reductions_pct
    weights = resolved.weights

    # Per-stratum population and weight share.
    stratum_members: list[np.ndarray] = []
    stratum_weights: list[float] = []
    for stratum in range(int(strata.max()) + 1):
        members = np.flatnonzero(strata == stratum)
        if members.size == 0:
            continue
        stratum_members.append(members)
        stratum_weights.append(float(weights[members].sum()))
    stratum_weight_arr = np.asarray(stratum_weights)
    stratum_weight_arr = stratum_weight_arr / stratum_weight_arr.sum()

    # Proportional allocation with a floor of one sample per stratum.
    allocation = np.maximum(
        1, np.round(stratum_weight_arr * sample_size).astype(int)
    )
    while allocation.sum() > sample_size:
        allocation[int(np.argmax(allocation))] -= 1
    while allocation.sum() < sample_size:
        allocation[int(np.argmax(stratum_weight_arr))] += 1

    rng = check_random_state(seed)
    estimates = np.empty(n_trials)
    for trial in range(n_trials):
        total = 0.0
        for members, share, count in zip(
            stratum_members, stratum_weight_arr, allocation
        ):
            member_weights = weights[members]
            prob = member_weights / member_weights.sum()
            picked = rng.choice(members, size=count, replace=True, p=prob)
            total += share * reductions[picked].mean()
        estimates[trial] = total

    trials = SamplingTrialResult(
        estimates=estimates,
        sample_size=sample_size,
        truth=resolved.overall_reduction_pct,
    )
    return SamplingEvaluation(
        feature=feature,
        job_name=None,
        trials=trials,
        evaluation_cost=sample_size,
    )
