"""Sampling-based evaluation baseline (paper §5.3–5.4).

Randomly pick N scenarios, evaluate the feature on just those, and use the
sample mean as the estimate.  Repeated over many trials this yields the
violin distributions of Figure 12a, the 95 % confidence intervals of
Figure 12b and the cost/accuracy curve of Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.features import Feature
from ..cluster.source import ScenarioSource
from ..runtime.executor import Executor
from ..stats.sampling import (
    SamplingTrialResult,
    expected_max_error,
    run_sampling_trials,
)
from .full_datacenter import (
    DatacenterTruth,
    evaluate_full_datacenter,
    per_job_scenario_reductions,
)

__all__ = [
    "SamplingEvaluation",
    "evaluate_by_sampling",
    "evaluate_job_by_sampling",
    "sampling_cost_curve",
]


@dataclass(frozen=True)
class SamplingEvaluation:
    """Random-sampling estimate distribution for one feature.

    Attributes
    ----------
    feature:
        Feature evaluated.
    job_name:
        None for all-job sampling; the job code otherwise.
    trials:
        The per-trial estimates and the population truth.
    evaluation_cost:
        Scenarios evaluated per trial (the method's per-use cost).
    """

    feature: Feature
    job_name: str | None
    trials: SamplingTrialResult
    evaluation_cost: int

    @property
    def truth(self) -> float:
        return self.trials.truth

    @property
    def mean_estimate(self) -> float:
        return float(self.trials.estimates.mean())


def evaluate_by_sampling(
    dataset: ScenarioSource,
    feature: Feature,
    *,
    sample_size: int,
    n_trials: int = 1000,
    seed: int = 0,
    truth: DatacenterTruth | None = None,
    executor: "Executor | str | None" = None,
) -> SamplingEvaluation:
    """All-job sampling baseline.

    Scenarios are drawn with probability proportional to observation time
    (what watching random machines at random times yields), with
    replacement, so the estimator targets the same weighted truth as the
    full-datacenter evaluation.  Trials dispatch on *executor*; results
    are independent of the executor chosen.
    """
    from ..obs import span

    with span(
        "baseline.sampling",
        feature=feature.name,
        sample_size=sample_size,
        n_trials=n_trials,
    ):
        resolved = truth if truth is not None else evaluate_full_datacenter(
            dataset, feature
        )
        trials = run_sampling_trials(
            resolved.reductions_pct,
            sample_size=sample_size,
            n_trials=n_trials,
            seed=seed,
            weights=resolved.weights,
            replace=True,
            executor=executor,
        )
    return SamplingEvaluation(
        feature=feature,
        job_name=None,
        trials=trials,
        evaluation_cost=sample_size,
    )


def evaluate_job_by_sampling(
    dataset: ScenarioSource,
    feature: Feature,
    job_name: str,
    *,
    sample_size: int,
    n_trials: int = 1000,
    seed: int = 0,
    executor: "Executor | str | None" = None,
) -> SamplingEvaluation:
    """Per-job sampling baseline.

    The population is the scenarios hosting *job_name* (§5.3 notes this
    population is much smaller than the all-job one, which is why per-job
    sampling sometimes looks good).  Weights combine observation time with
    the job's instance count.
    """
    from ..obs import span

    with span(
        "baseline.sampling_job",
        feature=feature.name,
        job=job_name,
        sample_size=sample_size,
        n_trials=n_trials,
    ):
        population = per_job_scenario_reductions(dataset, feature, job_name)
        effective_size = min(sample_size, population.reductions_pct.size)
        trials = run_sampling_trials(
            population.reductions_pct,
            sample_size=effective_size,
            n_trials=n_trials,
            seed=seed,
            weights=population.weights,
            replace=True,
            executor=executor,
        )
    return SamplingEvaluation(
        feature=feature,
        job_name=job_name,
        trials=trials,
        evaluation_cost=effective_size,
    )


def sampling_cost_curve(
    truth: DatacenterTruth,
    sample_sizes: tuple[int, ...],
    *,
    confidence: float = 0.95,
) -> list[tuple[int, float]]:
    """Expected max estimation error vs sampling cost (Figure 13).

    Returns ``(sample_size, expected_max_error_pct)`` pairs using the
    normal-approximation confidence half-width over the weighted
    population of per-scenario reductions.
    """
    population = truth.reductions_pct
    rows = []
    for size in sample_sizes:
        if size < 1:
            raise ValueError("sample sizes must be >= 1")
        err = expected_max_error(
            population,
            sample_size=min(size, population.size),
            confidence=confidence,
        )
        rows.append((size, float(err)))
    return rows
