"""Run ledger: durable cross-run records and perf-regression gates.

``repro.obs.tracing`` / ``metrics`` see inside one run; the ledger sees
*across* runs.  Every ``fit`` / ``evaluate`` / bench invocation appends
a structured :class:`RunRecord` — configuration and runtime digests,
environment fingerprint, stage timings folded from the tracer and
:data:`~repro.telemetry.runtime_stats.RUNTIME_STATS`, and the key
metrics of the run — to an append-only JSONL file, and the
:class:`RegressionDetector` compares the newest record against a robust
rolling baseline (median ± k·MAD per metric, direction-aware, with a
minimum-history rule) so a silent 2x slowdown fails CI instead of
compounding quietly.

The historical ``benchmarks/results/bench_smoke.jsonl`` records (raw
dicts without a schema header) read back transparently: numeric fields
become dotted ``metrics`` keys, strings/booleans become ``labels``, so
the bench trajectory collected since PR 1 feeds the same detector.

Quick start::

    ledger = RunLedger("runs.jsonl")
    ledger.append(record_run("fit", metrics={"fit_s": 1.23}))
    report = RegressionDetector(DEFAULT_BENCH_RULES).check(ledger.read())
    if not report.ok:
        sys.exit(report.render())
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import uuid
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "DEFAULT_BENCH_RULES",
    "LEDGER_SCHEMA_VERSION",
    "MetricRule",
    "RegressionDetector",
    "RegressionFinding",
    "RegressionReport",
    "RunLedger",
    "RunRecord",
    "disable_ledger",
    "enable_ledger",
    "env_fingerprint",
    "get_ledger",
    "record_run",
    "set_ledger",
]

#: Version of the on-disk record schema; bump on breaking field changes.
LEDGER_SCHEMA_VERSION = 1

#: Consistency scale factor: 1.4826 · MAD estimates σ for normal data.
MAD_SIGMA = 1.4826


def env_fingerprint() -> dict:
    """Where a record came from: interpreter, platform, host resources."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass(frozen=True)
class RunRecord:
    """One ledger entry: a single fit / evaluate / bench invocation.

    Attributes
    ----------
    kind:
        What ran: ``"fit"``, ``"evaluate"``, ``"bench"``, ``"monitor"``.
    run_id:
        Unique id of the invocation (hex).
    timestamp:
        ISO-8601 UTC time the record was written.
    env:
        :func:`env_fingerprint` of the producing process.
    config:
        Configuration digests / knobs of the run (JSON-safe).
    stages:
        Per-stage timing aggregates (span name → count / wall_s / …),
        folded from the tracer and the runtime-stats registry.
    metrics:
        The run's scalar results (name → float) — the values the
        regression detector watches.
    labels:
        Non-numeric context (booleans, strings): gate outcomes,
        dispatch modes, versions.
    schema_version:
        On-disk schema version of this record.
    """

    kind: str
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:16])
    timestamp: str = field(
        default_factory=lambda: datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
    )
    env: dict = field(default_factory=env_fingerprint)
    config: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    labels: dict = field(default_factory=dict)
    schema_version: int = LEDGER_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "env": dict(self.env),
            "config": dict(self.config),
            "stages": dict(self.stages),
            "metrics": dict(self.metrics),
            "labels": dict(self.labels),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Parse one JSONL payload; legacy bench dicts are coerced.

        Pre-observatory bench records are flat dicts without a
        ``schema_version``: their numeric fields (nested dicts
        flattened to dotted keys, booleans excluded) become
        ``metrics``, strings and booleans become ``labels``, and their
        ``stage_breakdown`` becomes ``stages`` — so ten PRs of bench
        history remain first-class detector input.
        """
        if "schema_version" in payload:
            return cls(
                kind=str(payload.get("kind", "unknown")),
                run_id=str(payload.get("run_id", "")),
                timestamp=str(payload.get("timestamp", "")),
                env=dict(payload.get("env", {})),
                config=dict(payload.get("config", {})),
                stages=dict(payload.get("stages", {})),
                metrics=dict(payload.get("metrics", {})),
                labels=dict(payload.get("labels", {})),
                schema_version=int(payload["schema_version"]),
            )
        metrics: dict = {}
        labels: dict = {}
        stages = dict(payload.get("stage_breakdown", {}))
        env = {}
        for key, value in payload.items():
            if key == "stage_breakdown":
                continue
            if key in ("python", "cpu_count"):
                env[key] = value
                continue
            _flatten_numeric(key, value, metrics, labels)
        return cls(
            kind="bench",
            run_id="",
            timestamp=str(payload.get("timestamp", "")),
            env=env,
            config={},
            stages=stages,
            metrics=metrics,
            labels=labels,
            schema_version=0,
        )


def _flatten_numeric(key: str, value, metrics: dict, labels: dict) -> None:
    """Sort a legacy field into dotted metrics vs. labels."""
    if isinstance(value, bool):
        labels[key] = value
    elif isinstance(value, (int, float)):
        metrics[key] = float(value)
    elif isinstance(value, dict):
        for sub, subvalue in value.items():
            _flatten_numeric(f"{key}.{sub}", subvalue, metrics, labels)
    elif key != "timestamp":
        labels[key] = value


class RunLedger:
    """Append-only JSONL file of :class:`RunRecord` entries."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: RunRecord) -> RunRecord:
        """Durably append *record* (one JSON line, flushed)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def read(self) -> list[RunRecord]:
        """All records, oldest first; legacy lines coerced, blanks skipped."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                records.append(RunRecord.from_dict(json.loads(line)))
        return records

    def tail(self, n: int) -> list[RunRecord]:
        return self.read()[-n:]

    def __repr__(self) -> str:
        return f"RunLedger({str(self.path)!r})"


# ----------------------------------------------------------------------
# Active-ledger plumbing (mirrors the tracer/metrics pattern): library
# code calls record_run(); it lands in the active ledger when one is
# installed and is a cheap no-op otherwise.

_LEDGER: RunLedger | None = None


def get_ledger() -> RunLedger | None:
    """The process-global ledger (``None`` when disabled)."""
    return _LEDGER


def set_ledger(ledger: RunLedger | None) -> RunLedger | None:
    """Install *ledger* globally; returns the previous one (for restore)."""
    global _LEDGER
    previous = _LEDGER
    _LEDGER = ledger
    return previous


def enable_ledger(path: str | Path) -> RunLedger:
    """Start appending run records to *path*; returns the live ledger."""
    ledger = RunLedger(path)
    set_ledger(ledger)
    return ledger


def disable_ledger() -> None:
    set_ledger(None)


def record_run(
    kind: str,
    *,
    config: dict | None = None,
    metrics: dict | None = None,
    labels: dict | None = None,
    stages: dict | None = None,
    ledger: RunLedger | None = None,
) -> RunRecord:
    """Build a :class:`RunRecord` and append it to the active ledger.

    Stage timings are folded in automatically from whatever telemetry
    is live: the global tracer's per-span totals and the runtime-stats
    registry's per-dispatch aggregates.  Explicit *stages* win over the
    auto-folded ones — callers that timed a section under a tracer that
    is no longer installed (the smoke bench) pass its totals here.
    Returns the record either way; appends only when a ledger is active
    (or passed explicitly).
    """
    from ..telemetry.runtime_stats import RUNTIME_STATS
    from .tracing import get_tracer

    explicit_stages = dict(stages or {})
    stages = {}
    for name, agg in get_tracer().totals().items():
        stages[name] = {
            "count": int(agg["count"]),
            "wall_s": round(float(agg["wall_s"]), 6),
            "cpu_s": round(float(agg["cpu_s"]), 6),
        }
    for stage, agg in RUNTIME_STATS.totals().items():
        stages.setdefault(f"runtime:{stage}", {}).update(
            {
                "dispatches": int(agg["dispatches"]),
                "tasks": int(agg["tasks"]),
                "wall_s": round(float(agg["wall_s"]), 6),
            }
        )
    stages.update(explicit_stages)
    record = RunRecord(
        kind=kind,
        config=dict(config or {}),
        stages=stages,
        metrics={k: float(v) for k, v in (metrics or {}).items()},
        labels=dict(labels or {}),
    )
    target = ledger if ledger is not None else get_ledger()
    if target is not None:
        target.append(record)
    return record


# ----------------------------------------------------------------------
# Regression detection


@dataclass(frozen=True)
class MetricRule:
    """How one ledger metric is allowed to move.

    The latest value breaches when it falls on the *bad* side of the
    history median by more than ``slack``, where::

        slack = max(k · 1.4826 · MAD, rel_floor · |median|, abs_floor)

    The MAD term adapts to the metric's natural run-to-run noise; the
    relative floor keeps constant (zero-MAD) histories from flagging
    measurement jitter; the absolute floor guards near-zero medians
    where a relative floor collapses.

    Attributes
    ----------
    metric:
        Dotted metric name in :attr:`RunRecord.metrics`.
    lower_is_better:
        Direction: ``True`` flags increases (latencies, overheads),
        ``False`` flags decreases (speedups, throughputs).
    k:
        MAD multiplier (≈ σ units for normal noise).
    rel_floor / abs_floor:
        Minimum slack, relative to ``|median|`` / absolute.
    min_samples:
        History size below which the rule reports *insufficient
        history* instead of a verdict.
    """

    metric: str
    lower_is_better: bool = True
    k: float = 3.0
    rel_floor: float = 0.10
    abs_floor: float = 0.0
    min_samples: int = 4

    def __post_init__(self) -> None:
        if self.k < 0 or self.rel_floor < 0 or self.abs_floor < 0:
            raise ValueError("rule slack parameters must be non-negative")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


#: Rules for the smoke-bench trajectory — the enforced perf contract.
DEFAULT_BENCH_RULES: tuple[MetricRule, ...] = (
    MetricRule("serial_s", lower_is_better=True),
    MetricRule("speedup", lower_is_better=False),
    MetricRule("batch_solver_speedup_x", lower_is_better=False),
    MetricRule("store_write_mb_s", lower_is_better=False),
    MetricRule("store_read_mb_s", lower_is_better=False),
    MetricRule("evaluate_warm_speedup_x", lower_is_better=False),
    MetricRule("evaluate_warm_s", lower_is_better=True),
    MetricRule("memory_fit_s", lower_is_better=True),
    MetricRule("streaming_fit_s", lower_is_better=True),
    MetricRule("profile_serial_s", lower_is_better=True),
)


@dataclass(frozen=True)
class RegressionFinding:
    """Verdict of one rule against the latest record."""

    metric: str
    status: str  # "ok" | "regressed" | "insufficient-history" | "missing"
    latest: float | None = None
    median: float | None = None
    mad: float | None = None
    slack: float | None = None
    n_history: int = 0
    lower_is_better: bool = True

    @property
    def breached(self) -> bool:
        return self.status == "regressed"

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "status": self.status,
            "latest": self.latest,
            "median": self.median,
            "mad": self.mad,
            "slack": self.slack,
            "n_history": self.n_history,
            "lower_is_better": self.lower_is_better,
        }

    def describe(self) -> str:
        if self.status == "missing":
            return f"{self.metric}: absent from the latest record"
        if self.status == "insufficient-history":
            return (
                f"{self.metric}: only {self.n_history} prior samples "
                "(rule needs more) — skipped"
            )
        direction = "<=" if self.lower_is_better else ">="
        bound = (
            self.median + self.slack
            if self.lower_is_better
            else self.median - self.slack
        )
        verdict = "REGRESSED" if self.breached else "ok"
        return (
            f"{self.metric}: {verdict}  latest={self.latest:.6g} "
            f"{direction} {bound:.6g} "
            f"(median={self.median:.6g}, mad={self.mad:.6g}, "
            f"n={self.n_history})"
        )


@dataclass(frozen=True)
class RegressionReport:
    """All findings of one check; ``ok`` is the CI gate."""

    findings: tuple[RegressionFinding, ...]

    @property
    def ok(self) -> bool:
        return not any(f.breached for f in self.findings)

    @property
    def breaches(self) -> tuple[RegressionFinding, ...]:
        return tuple(f for f in self.findings if f.breached)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = [
            "ledger check: " + ("PASS" if self.ok else "FAIL"),
        ]
        lines.extend("  " + f.describe() for f in self.findings)
        return "\n".join(lines)


class RegressionDetector:
    """Robust latest-vs-history comparison over ledger records.

    Median ± k·MAD is used instead of mean ± k·σ because perf histories
    are short and spiky: one slow CI run must not poison the baseline
    it is judged against.
    """

    def __init__(self, rules: tuple[MetricRule, ...] | list[MetricRule]):
        if not rules:
            raise ValueError("RegressionDetector needs at least one rule")
        self.rules = tuple(rules)

    def check(
        self,
        records: list[RunRecord],
        *,
        kind: str | None = None,
        window: int | None = None,
    ) -> RegressionReport:
        """Judge the newest record against the ones before it.

        *kind* restricts to records of one kind (e.g. ``"bench"``);
        *window* bounds the history to the most recent N predecessors.
        """
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if not records:
            raise ValueError("ledger holds no records to check")
        latest, history = records[-1], records[:-1]
        if window is not None:
            history = history[-window:]
        findings = tuple(
            self.check_rule(rule, latest, history) for rule in self.rules
        )
        return RegressionReport(findings=findings)

    @staticmethod
    def check_rule(
        rule: MetricRule, latest: RunRecord, history: list[RunRecord]
    ) -> RegressionFinding:
        """One rule, one verdict (the unit the hypothesis tests drive)."""
        values = [
            float(r.metrics[rule.metric])
            for r in history
            if rule.metric in r.metrics
        ]
        if rule.metric not in latest.metrics:
            return RegressionFinding(
                metric=rule.metric,
                status="missing",
                n_history=len(values),
                lower_is_better=rule.lower_is_better,
            )
        latest_value = float(latest.metrics[rule.metric])
        if len(values) < rule.min_samples:
            return RegressionFinding(
                metric=rule.metric,
                status="insufficient-history",
                latest=latest_value,
                n_history=len(values),
                lower_is_better=rule.lower_is_better,
            )
        median = statistics.median(values)
        mad = statistics.median(abs(v - median) for v in values)
        slack = max(
            rule.k * MAD_SIGMA * mad,
            rule.rel_floor * abs(median),
            rule.abs_floor,
        )
        if rule.lower_is_better:
            breached = latest_value > median + slack
        else:
            breached = latest_value < median - slack
        return RegressionFinding(
            metric=rule.metric,
            status="regressed" if breached else "ok",
            latest=latest_value,
            median=median,
            mad=mad,
            slack=slack,
            n_history=len(values),
            lower_is_better=rule.lower_is_better,
        )

    def with_overrides(
        self,
        *,
        k: float | None = None,
        rel_floor: float | None = None,
        min_samples: int | None = None,
    ) -> "RegressionDetector":
        """Copy with per-CLI-flag overrides applied to every rule."""
        updates = {}
        if k is not None:
            updates["k"] = k
        if rel_floor is not None:
            updates["rel_floor"] = rel_floor
        if min_samples is not None:
            updates["min_samples"] = min_samples
        if not updates:
            return self
        return RegressionDetector(
            tuple(replace(rule, **updates) for rule in self.rules)
        )
