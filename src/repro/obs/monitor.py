"""Fleet-health drift monitor: score scenario streams against a fit.

The paper fits once on a frozen trace; a serving fleet drifts.  This
module watches any :class:`~repro.cluster.ScenarioSource` — the live
sharded store, a fresh simulation, yesterday's traffic — and scores it
against the :class:`~repro.core.representatives.FitBaseline` recorded
when the model was fitted, emitting three staleness signals:

* **occupancy shift** — population-stability index (PSI) of the
  observed cluster-occupancy distribution vs. fit time, per cluster and
  total;
* **tightness delta** — assignment-distance / SSE-per-scenario ratio
  vs. the fit-time clustering inertia;
* **novelty rate** — share of scenarios whose assignment distance
  exceeds the fit-time :data:`~repro.core.representatives.NOVELTY_QUANTILE`
  quantile.

Scoring streams batch-by-batch through ``Profiler.iter_profile`` (so a
sharded store is never materialised, and a parallel runtime fans the
profiling out zero-copy) into a mergeable :class:`DriftState`.  The
state keeps *per-batch partial sums* and finalises them with
:func:`math.fsum`, which is exactly rounded — so merging is associative
bit-for-bit and serial ≡ parallel scores are bit-identical regardless
of how batches were grouped.

Quick start::

    report = flare.health(live_store)        # or DriftMonitor(flare)
    print(report.render())
    if report.status == "alert":
        ...refit...
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .metrics import inc, set_gauge
from .tracing import span as obs_span

__all__ = [
    "ClusterDrift",
    "DriftMonitor",
    "DriftReport",
    "DriftState",
    "DriftThresholds",
    "PSI_EPSILON",
]

#: Shares are clamped to this floor before the PSI log-ratio so empty
#: clusters (fit-time or observed) contribute a large-but-finite term.
PSI_EPSILON = 1e-6

_STATUS_ORDER = ("healthy", "warn", "alert")


@dataclass(frozen=True)
class DriftThresholds:
    """Alerting thresholds of the drift monitor.

    PSI cutoffs follow the conventional credit-scoring reading: < 0.1
    stable, 0.1–0.25 moderate shift, > 0.25 significant shift.
    """

    psi_warn: float = 0.1
    psi_alert: float = 0.25
    #: Per-cluster PSI contribution above which the cluster is flagged.
    cluster_psi_flag: float = 0.02
    novelty_warn: float = 0.05
    novelty_alert: float = 0.15
    sse_ratio_warn: float = 1.5
    sse_ratio_alert: float = 3.0

    def to_dict(self) -> dict:
        return {
            "psi_warn": self.psi_warn,
            "psi_alert": self.psi_alert,
            "cluster_psi_flag": self.cluster_psi_flag,
            "novelty_warn": self.novelty_warn,
            "novelty_alert": self.novelty_alert,
            "sse_ratio_warn": self.sse_ratio_warn,
            "sse_ratio_alert": self.sse_ratio_alert,
        }


@dataclass
class DriftState:
    """Mergeable accumulator of one monitoring pass.

    Float statistics are kept as *per-batch partial vectors* and only
    summed at :meth:`finalize` time with :func:`math.fsum`.  ``fsum``
    is exactly rounded — its result does not depend on how the partials
    were grouped — so :meth:`merge` is associative bit-for-bit.  That
    is the property that makes serial and process-parallel monitoring
    runs score identically, and it is tested directly
    (``tests/obs/test_monitor.py``).

    Integer statistics (counts, novelty) add exactly and need no such
    care.
    """

    n_clusters: int
    counts: np.ndarray = field(default=None)  # (k,) int64
    novel: int = 0
    #: Per-batch per-cluster observation-time mass (raw seconds).
    mass_parts: list = field(default_factory=list)
    #: Per-batch per-cluster assignment-distance sums.
    dist_parts: list = field(default_factory=list)
    #: Per-batch per-cluster squared-distance sums (SSE partials).
    sq_parts: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = np.zeros(self.n_clusters, dtype=np.int64)

    @property
    def n_scenarios(self) -> int:
        return int(self.counts.sum())

    # ------------------------------------------------------------------
    def merge(self, other: "DriftState") -> "DriftState":
        """Combined state; associative bit-for-bit (see class docs)."""
        if other.n_clusters != self.n_clusters:
            raise ValueError(
                f"cannot merge drift states over {self.n_clusters} and "
                f"{other.n_clusters} clusters"
            )
        return DriftState(
            n_clusters=self.n_clusters,
            counts=self.counts + other.counts,
            novel=self.novel + other.novel,
            mass_parts=[*self.mass_parts, *other.mass_parts],
            dist_parts=[*self.dist_parts, *other.dist_parts],
            sq_parts=[*self.sq_parts, *other.sq_parts],
        )

    def finalize(self) -> dict:
        """Exactly-rounded totals: mass, distance and SSE per cluster."""
        return {
            "counts": self.counts.copy(),
            "novel": self.novel,
            "mass": _fsum_columns(self.mass_parts, self.n_clusters),
            "dist_sum": _fsum_columns(self.dist_parts, self.n_clusters),
            "sq_sum": _fsum_columns(self.sq_parts, self.n_clusters),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form; floats round-trip exactly (repr shortest)."""
        return {
            "n_clusters": self.n_clusters,
            "counts": [int(c) for c in self.counts],
            "novel": self.novel,
            "mass_parts": [[float(v) for v in p] for p in self.mass_parts],
            "dist_parts": [[float(v) for v in p] for p in self.dist_parts],
            "sq_parts": [[float(v) for v in p] for p in self.sq_parts],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftState":
        k = int(payload["n_clusters"])
        return cls(
            n_clusters=k,
            counts=np.asarray(payload["counts"], dtype=np.int64),
            novel=int(payload["novel"]),
            mass_parts=[
                np.asarray(p, dtype=np.float64)
                for p in payload["mass_parts"]
            ],
            dist_parts=[
                np.asarray(p, dtype=np.float64)
                for p in payload["dist_parts"]
            ],
            sq_parts=[
                np.asarray(p, dtype=np.float64) for p in payload["sq_parts"]
            ],
        )


def _fsum_columns(parts: list, n_clusters: int) -> np.ndarray:
    """Per-cluster exactly-rounded sum over per-batch partial vectors."""
    out = np.zeros(n_clusters, dtype=np.float64)
    if not parts:
        return out
    for c in range(n_clusters):
        out[c] = math.fsum(float(p[c]) for p in parts)
    return out


@dataclass(frozen=True)
class ClusterDrift:
    """Drift diagnostics of one cluster."""

    cluster_id: int
    baseline_share: float
    observed_share: float
    psi_term: float
    baseline_mean_distance: float
    observed_mean_distance: float
    n_observed: int
    flagged: bool

    def to_dict(self) -> dict:
        return {
            "cluster_id": self.cluster_id,
            "baseline_share": self.baseline_share,
            "observed_share": self.observed_share,
            "psi_term": self.psi_term,
            "baseline_mean_distance": self.baseline_mean_distance,
            "observed_mean_distance": self.observed_mean_distance,
            "n_observed": self.n_observed,
            "flagged": self.flagged,
        }


@dataclass(frozen=True)
class DriftReport:
    """One scored monitoring pass, ready to render or serialise."""

    n_scenarios: int
    psi_total: float
    novelty_rate: float
    novelty_threshold: float
    sse_per_scenario: float
    baseline_sse_per_scenario: float
    sse_ratio: float
    clusters: tuple[ClusterDrift, ...]
    status: str
    thresholds: DriftThresholds

    @property
    def flagged_clusters(self) -> tuple[int, ...]:
        return tuple(c.cluster_id for c in self.clusters if c.flagged)

    @property
    def exit_code(self) -> int:
        """0 healthy, 1 warn, 2 alert — the CLI's threshold contract."""
        return _STATUS_ORDER.index(self.status)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "n_scenarios": self.n_scenarios,
            "psi_total": self.psi_total,
            "novelty_rate": self.novelty_rate,
            "novelty_threshold": self.novelty_threshold,
            "sse_per_scenario": self.sse_per_scenario,
            "baseline_sse_per_scenario": self.baseline_sse_per_scenario,
            "sse_ratio": self.sse_ratio,
            "flagged_clusters": list(self.flagged_clusters),
            "clusters": [c.to_dict() for c in self.clusters],
            "thresholds": self.thresholds.to_dict(),
        }

    def render(self) -> str:
        """Human-readable report (the ``repro monitor`` text output)."""
        lines = [
            f"drift status: {self.status}  "
            f"({self.n_scenarios} scenarios scored)",
            f"  psi_total        {self.psi_total:.6f}  "
            f"(warn {self.thresholds.psi_warn}, "
            f"alert {self.thresholds.psi_alert})",
            f"  novelty_rate     {self.novelty_rate:.4f}  "
            f"(threshold distance {self.novelty_threshold:.4f}; "
            f"warn {self.thresholds.novelty_warn}, "
            f"alert {self.thresholds.novelty_alert})",
            f"  sse/scenario     {self.sse_per_scenario:.6f}  "
            f"(fit {self.baseline_sse_per_scenario:.6f}, "
            f"ratio {self.sse_ratio:.3f})",
        ]
        if self.flagged_clusters:
            lines.append(
                "  shifted clusters: "
                + ", ".join(str(c) for c in self.flagged_clusters)
            )
        header = (
            f"  {'cluster':>7} {'fit%':>8} {'now%':>8} "
            f"{'psi':>10} {'dist(fit)':>10} {'dist(now)':>10}"
        )
        lines.append(header)
        for c in self.clusters:
            mark = " *" if c.flagged else ""
            lines.append(
                f"  {c.cluster_id:>7} {100 * c.baseline_share:>7.2f}% "
                f"{100 * c.observed_share:>7.2f}% {c.psi_term:>10.6f} "
                f"{c.baseline_mean_distance:>10.4f} "
                f"{c.observed_mean_distance:>10.4f}{mark}"
            )
        return "\n".join(lines)


class DriftMonitor:
    """Scores scenario streams against a fitted model's baseline.

    Parameters
    ----------
    flare:
        A fitted :class:`~repro.core.Flare` whose representative set
        carries a :class:`~repro.core.representatives.FitBaseline`
        (every fit since the observatory landed records one; older
        saved models refit on load and pick one up for free).
    thresholds:
        Alerting cutoffs; defaults to :class:`DriftThresholds`.
    """

    def __init__(self, flare, thresholds: DriftThresholds | None = None):
        baseline = flare.representatives.baseline
        if baseline is None:
            raise ValueError(
                "model carries no fit-time baseline; refit to monitor"
            )
        self.flare = flare
        self.baseline = baseline
        self.thresholds = (
            thresholds if thresholds is not None else DriftThresholds()
        )
        self._kept = list(flare.prune_report.kept)

    # ------------------------------------------------------------------
    def observe(self, source, *, runtime=None) -> DriftReport:
        """Stream *source* through the model and score its drift.

        Accepts any :class:`~repro.cluster.ScenarioSource`; a sharded
        store streams batch-by-batch and never materialises.  With a
        parallel *runtime* the profiling fan-out runs under the process
        executor; per-batch drift partials are folded in global batch
        order, so the resulting report is bit-identical to a serial
        pass (see :class:`DriftState`).
        """
        if source.shape != self.flare.dataset.shape:
            raise ValueError(
                f"cannot monitor scenarios from shape "
                f"{source.shape.name!r} with a model fitted on "
                f"{self.flare.dataset.shape.name!r} (paper §5.5)"
            )
        with obs_span(
            "monitor.observe", n_scenarios=len(source)
        ) as observe_span:
            state = self.observe_state(source, runtime=runtime)
            report = self.report(state)
            inc("monitor_scenarios", report.n_scenarios)
            inc("monitor_novel", state.novel)
            set_gauge("monitor_psi_total", report.psi_total)
            set_gauge("monitor_novelty_rate", report.novelty_rate)
            set_gauge("monitor_sse_ratio", report.sse_ratio)
            if observe_span is not None:
                observe_span.attrs["status"] = report.status
                observe_span.attrs["psi_total"] = report.psi_total
        return report

    def observe_state(self, source, *, runtime=None) -> DriftState:
        """The mergeable :class:`DriftState` of one pass (no scoring)."""
        profiler = self.flare.config.make_profiler()
        state = DriftState(n_clusters=self.baseline.n_clusters)
        # One columnar pass up front beats per-batch scenario access:
        # for a sharded store this reads only the duration column
        # (memory-mapped), and under shard-ref dispatch it spares the
        # parent from decoding each batch's scenarios just for weights.
        all_durations = (
            source.durations()
            if hasattr(source, "durations")
            else np.array(
                [s.total_duration_s for s in source.scenarios],
                dtype=np.float64,
            )
        )
        for batch in profiler.iter_profile(source, runtime=runtime):
            rows = batch.matrix.shape[0]
            durations = all_durations[
                batch.start_row : batch.start_row + rows
            ]
            state = state.merge(self.batch_state(batch.matrix, durations))
        return state

    def batch_state(
        self, matrix: np.ndarray, durations: np.ndarray
    ) -> DriftState:
        """Drift partials of one profiled batch.

        *matrix* is a raw profiled batch (all metric columns);
        *durations* the scenarios' raw observation seconds — raw, not
        batch-normalised, so partial masses add across batches.
        """
        from ..stats.distance import pairwise_sq_euclidean
        from ..stats.kmeans import assigned_sq_distances

        analysis = self.flare.analysis
        projected = analysis.project(matrix[:, self._kept])
        centroids = analysis.kmeans.centroids
        labels = np.argmin(
            pairwise_sq_euclidean(projected, centroids), axis=1
        )
        # Same direct-differencing kernel the fit-time baseline used, so
        # self-monitoring reproduces fit-time distances exactly.
        sq = assigned_sq_distances(projected, centroids, labels)
        distances = np.sqrt(sq)
        k = self.baseline.n_clusters
        return DriftState(
            n_clusters=k,
            counts=np.bincount(labels, minlength=k).astype(np.int64),
            novel=int(
                np.count_nonzero(distances > self.baseline.novelty_threshold)
            ),
            mass_parts=[np.bincount(labels, weights=durations, minlength=k)],
            dist_parts=[np.bincount(labels, weights=distances, minlength=k)],
            sq_parts=[np.bincount(labels, weights=sq, minlength=k)],
        )

    # ------------------------------------------------------------------
    def report(self, state: DriftState) -> DriftReport:
        """Score a finalized :class:`DriftState` against the baseline."""
        totals = state.finalize()
        counts = totals["counts"]
        n = int(counts.sum())
        if n == 0:
            raise ValueError("drift state covers no scenarios")
        mass = totals["mass"]
        mass_total = float(mass.sum())
        if mass_total > 0.0:
            observed_share = mass / mass_total
        else:
            # Zero-duration stream (synthetic probes): fall back to counts.
            observed_share = counts / n
        baseline = self.baseline
        thresholds = self.thresholds
        psi_terms = _psi_terms(baseline.occupancy, observed_share)
        mean_distance = totals["dist_sum"] / np.maximum(counts, 1)
        clusters = tuple(
            ClusterDrift(
                cluster_id=c,
                baseline_share=float(baseline.occupancy[c]),
                observed_share=float(observed_share[c]),
                psi_term=float(psi_terms[c]),
                baseline_mean_distance=float(baseline.mean_distance[c]),
                observed_mean_distance=float(mean_distance[c]),
                n_observed=int(counts[c]),
                flagged=bool(psi_terms[c] >= thresholds.cluster_psi_flag),
            )
            for c in range(baseline.n_clusters)
        )
        psi_total = float(psi_terms.sum())
        novelty_rate = totals["novel"] / n
        sse_per_scenario = float(totals["sq_sum"].sum()) / n
        base_spn = baseline.sse_per_scenario
        if base_spn > 0.0:
            sse_ratio = sse_per_scenario / base_spn
        else:
            sse_ratio = math.inf if sse_per_scenario > 0.0 else 1.0
        status = _status(
            psi_total, novelty_rate, sse_ratio, thresholds=thresholds
        )
        return DriftReport(
            n_scenarios=n,
            psi_total=psi_total,
            novelty_rate=novelty_rate,
            novelty_threshold=baseline.novelty_threshold,
            sse_per_scenario=sse_per_scenario,
            baseline_sse_per_scenario=base_spn,
            sse_ratio=sse_ratio,
            clusters=clusters,
            status=status,
            thresholds=thresholds,
        )


def _psi_terms(expected: np.ndarray, observed: np.ndarray) -> np.ndarray:
    """Per-cluster population-stability terms, epsilon-clamped."""
    p = np.maximum(np.asarray(expected, dtype=np.float64), PSI_EPSILON)
    q = np.maximum(np.asarray(observed, dtype=np.float64), PSI_EPSILON)
    return (q - p) * np.log(q / p)


def _status(
    psi_total: float,
    novelty_rate: float,
    sse_ratio: float,
    *,
    thresholds: DriftThresholds,
) -> str:
    if (
        psi_total >= thresholds.psi_alert
        or novelty_rate >= thresholds.novelty_alert
        or sse_ratio >= thresholds.sse_ratio_alert
    ):
        return "alert"
    if (
        psi_total >= thresholds.psi_warn
        or novelty_rate >= thresholds.novelty_warn
        or sse_ratio >= thresholds.sse_ratio_warn
    ):
        return "warn"
    return "healthy"
