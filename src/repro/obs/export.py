"""Trace exporters: span JSONL and Chrome trace-event format.

Two on-disk forms of the same span tree:

* **JSONL** (``*.jsonl``) — one JSON object per line: ``{"type":
  "span", ...}`` records followed by one ``{"type": "metrics", ...}``
  registry snapshot.  Lossless; :func:`load_jsonl` round-trips it.
* **Chrome trace-event** (anything else, conventionally ``*.json``) —
  a ``{"traceEvents": [...]}`` document of complete (``"ph": "X"``)
  events, loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  Worker spans keep their own pid, so a parallel
  run renders as one lane per worker process under the parent timeline.

Executor dispatches already appear as ``dispatch:<stage>`` spans
carrying the :class:`~repro.telemetry.runtime_stats.StageStats` fields
as attributes, so the exported timeline subsumes ``RUNTIME_STATS`` —
one timeline, not two.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Iterable, Sequence

from .metrics import MetricsRegistry, get_metrics
from .tracing import Span

__all__ = [
    "write_trace",
    "spans_to_jsonl",
    "load_jsonl",
    "spans_to_chrome_trace",
    "chrome_trace_events",
    "prometheus_text",
    "render_summary",
]


def spans_to_jsonl(
    spans: Iterable[Span],
    path,
    *,
    metrics: MetricsRegistry | None = None,
) -> pathlib.Path:
    """Write spans (and a metrics snapshot) as JSON lines."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        for span in spans:
            fh.write(json.dumps({"type": "span", **span.to_dict()}) + "\n")
        if metrics is not None:
            fh.write(
                json.dumps({"type": "metrics", **metrics.snapshot()}) + "\n"
            )
    return path


def load_jsonl(path) -> tuple[tuple[Span, ...], MetricsRegistry | None]:
    """Read a span JSONL file back into spans + a metrics registry."""
    spans: list[Span] = []
    metrics: MetricsRegistry | None = None
    with pathlib.Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type")
            if kind == "span":
                spans.append(Span.from_dict(record))
            elif kind == "metrics":
                metrics = MetricsRegistry()
                metrics.merge(record)
            else:
                raise ValueError(f"unknown trace record type {kind!r}")
    return tuple(spans), metrics


def chrome_trace_events(spans: Sequence[Span]) -> list[dict]:
    """Spans as Chrome trace-event dicts (complete events + metadata).

    Timestamps are microseconds relative to the earliest span start, so
    the numbers stay small and the viewers start at t=0.
    """
    spans = list(spans)
    t0 = min((s.start_unix for s in spans), default=0.0)
    events: list[dict] = []
    for pid in sorted({s.pid for s in spans}):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for span in spans:
        args = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "cpu_s": span.cpu_s,
            "peak_rss_delta_kb": span.peak_rss_delta_kb,
            "status": span.status,
        }
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "cat": "repro",
                "name": span.name,
                "pid": span.pid,
                "tid": 0,
                "ts": (span.start_unix - t0) * 1e6,
                "dur": span.wall_s * 1e6,
                "args": args,
            }
        )
    return events


def spans_to_chrome_trace(
    spans: Sequence[Span],
    path,
    *,
    metrics: MetricsRegistry | None = None,
) -> pathlib.Path:
    """Write spans as a Chrome trace-event JSON document."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = {"metrics": metrics.snapshot()}
    path = pathlib.Path(path)
    path.write_text(json.dumps(document, indent=1))
    return path


def write_trace(
    spans: Sequence[Span],
    path,
    *,
    metrics: MetricsRegistry | None = None,
) -> pathlib.Path:
    """Export *spans* to *path*, format chosen by suffix.

    ``*.jsonl`` writes the lossless span-per-line form; anything else
    writes the Chrome trace-event document.
    """
    path = pathlib.Path(path)
    if path.suffix == ".jsonl":
        return spans_to_jsonl(spans, path, metrics=metrics)
    return spans_to_chrome_trace(spans, path, metrics=metrics)


_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus charset."""
    name = _PROM_NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def prometheus_text(metrics: MetricsRegistry | None = None) -> str:
    """The registry in the Prometheus text exposition format.

    Counters and gauges map directly; each power-of-two
    :class:`~repro.obs.metrics.Histogram` bucket (frexp exponent *e*
    covering values < 2^e) becomes a cumulative ``le="2^e"`` bucket,
    with the conventional ``_sum`` / ``_count`` series.  This is the
    scrape surface for service mode: mount it on ``/metrics`` and any
    Prometheus-compatible collector ingests the registry as-is.
    """
    metrics = metrics if metrics is not None else get_metrics()
    lines: list[str] = []
    for name in sorted(metrics.counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(metrics.counter(name))}")
    for name in sorted(metrics.gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(metrics.gauges[name])}")
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for exponent in sorted(hist.buckets):
            cumulative += hist.buckets[exponent]
            lines.append(
                f'{prom}_bucket{{le="{2.0 ** exponent!r}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {_prom_value(hist.total)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def render_summary(
    tracer=None,
    metrics: MetricsRegistry | None = None,
    *,
    include_runtime_stats: bool = True,
) -> str:
    """Combined per-stage span table + metrics summary.

    This is what the CLI's ``--obs-summary`` (and its ``--runtime-stats``
    alias) prints: stage wall/CPU/RSS totals from the tracer — worker
    spans included, since the executor stitches them back — followed by
    the counters/gauges/histograms of the active registry, the legacy
    per-dispatch ``RUNTIME_STATS`` table, the latest drift-monitor
    scores (when a monitoring pass ran), and the tail of the active run
    ledger (when one is installed).
    """
    from .tracing import get_tracer

    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    sections = [tracer.render(), metrics.render()]
    if include_runtime_stats:
        from ..telemetry.runtime_stats import RUNTIME_STATS

        if RUNTIME_STATS.records():
            sections.append(RUNTIME_STATS.render())
    if metrics.gauge("monitor_psi_total") is not None:
        sections.append(
            "drift monitor\n"
            f"  psi_total     {metrics.gauge('monitor_psi_total'):.6f}\n"
            f"  novelty_rate  "
            f"{metrics.gauge('monitor_novelty_rate') or 0.0:.4f}\n"
            f"  sse_ratio     "
            f"{metrics.gauge('monitor_sse_ratio') or 0.0:.3f}\n"
            f"  scenarios     {metrics.counter('monitor_scenarios'):g}"
        )
    from .ledger import get_ledger

    ledger = get_ledger()
    if ledger is not None:
        tail = ledger.tail(3)
        if tail:
            lines = [f"run ledger ({ledger.path}, last {len(tail)})"]
            for record in tail:
                lines.append(
                    f"  {record.timestamp or '-':<26} {record.kind:<10} "
                    f"{len(record.metrics)} metrics, "
                    f"{len(record.stages)} stages"
                )
            sections.append("\n".join(lines))
    return "\n\n".join(sections)
