"""Counters, gauges and histograms for pipeline-level accounting.

The registry complements the tracer: spans say *where time went*,
metrics say *how much work happened* — ``replays_total``,
``cache_hits_total``, ``scenarios_profiled``, per-stage task-latency
histograms.  Everything is JSON-able and **mergeable**, which is what
lets worker processes ship their increments back to the parent through
the executor's capture channel (:mod:`repro.runtime.executor`) instead
of losing them when the worker exits.

Instrumented code should use the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`) so worker-side capture can swap the
active registry under them.
"""

from __future__ import annotations

import math

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "get_metrics",
    "set_metrics",
    "inc",
    "set_gauge",
    "observe",
]


class Histogram:
    """Mergeable summary of an observation stream.

    Keeps count / sum / min / max plus power-of-two bucket counts (by
    ``math.frexp`` exponent), so two histograms — e.g. one per worker —
    merge exactly without retaining individual observations.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        exponent = math.frexp(value)[1] if value > 0.0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        hist = cls()
        hist.count = int(payload["count"])
        hist.total = float(payload["total"])
        hist.minimum = (
            float(payload["min"]) if payload["min"] is not None else math.inf
        )
        hist.maximum = (
            float(payload["max"]) if payload["max"] is not None else -math.inf
        )
        hist.buckets = {int(k): int(v) for k, v in payload["buckets"].items()}
        return hist

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for exponent, n in other.buckets.items():
            self.buckets[exponent] = self.buckets.get(exponent, 0) + n

    def bucket_rows(self) -> list[tuple[str, int]]:
        """Renderable ``(range label, count)`` rows, in bucket order.

        Merged worker histograms can carry zero-count entries at the
        extremes (a worker observed a range the merged stream never
        filled); the rows clamp to the first/last *non-zero* bucket so
        empty edge ranges are never printed, while interior zero-count
        buckets still show as gaps.
        """
        nonzero = sorted(e for e, n in self.buckets.items() if n > 0)
        if not nonzero:
            return []
        rows = []
        for exponent in range(nonzero[0], nonzero[-1] + 1):
            if exponent == 0:
                # frexp exponent 0 doubles as the <=0 catch-all bucket.
                label = "(-inf, 1)"
            else:
                label = f"[{2.0 ** (exponent - 1):g}, {2.0 ** exponent:g})"
            rows.append((label, self.buckets.get(exponent, 0)))
        return rows

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.6g})"


class MetricsRegistry:
    """Named counters, gauges and histograms for one process."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* to counter *name* (created at 0)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to its latest value."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram *name*."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain JSON-able dump (the worker → parent wire format)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge exactly.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, payload in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_dict(payload)
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = incoming
            else:
                hist.merge(incoming)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def render(self) -> str:
        """Human-readable counters / gauges / histograms summary."""
        lines = []
        if self._counters:
            lines.append("counters")
            for name in sorted(self._counters):
                lines.append(f"  {name:<34} {self._counters[name]:>12g}")
        if self._gauges:
            lines.append("gauges")
            for name in sorted(self._gauges):
                lines.append(f"  {name:<34} {self._gauges[name]:>12g}")
        if self._histograms:
            lines.append("histograms")
            for name in sorted(self._histograms):
                hist = self._histograms[name]
                lines.append(
                    f"  {name:<34} n={hist.count} mean={hist.mean:.6g} "
                    f"min={hist.minimum:.6g} max={hist.maximum:.6g}"
                )
                for label, count in hist.bucket_rows():
                    lines.append(f"    {label:<20} {count:>8}")
        return "\n".join(lines) if lines else "no metrics recorded"

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


#: The process-wide default registry.
METRICS = MetricsRegistry()

_REGISTRY: MetricsRegistry = METRICS


def get_metrics() -> MetricsRegistry:
    """The currently active registry (worker capture may swap it)."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as active; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def inc(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active registry."""
    _REGISTRY.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry."""
    _REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active registry."""
    _REGISTRY.observe(name, value)
