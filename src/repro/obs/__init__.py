"""Observability layer: span tracing, metrics, trace export.

``repro.obs`` is the measurement substrate of the reproduction — the
paper's headline claim is evaluation *cost* (§5.4, Fig. 13), and this
package is how the repo shows where that cost goes:

* :mod:`~repro.obs.tracing` — hierarchical :class:`Span`/:class:`Tracer`
  (context-manager and decorator APIs) recording wall-clock, CPU time,
  peak-RSS delta and attributes; disabled by default via a no-op tracer;
* :mod:`~repro.obs.metrics` — process-wide counters / gauges /
  histograms (``replays_total``, ``cache_hits_total``, …) that merge
  across process-pool workers;
* :mod:`~repro.obs.export` — JSONL and Chrome trace-event exporters
  (Perfetto / ``chrome://tracing``) plus the ``--obs-summary`` renderer.

Quick start::

    from repro import obs

    tracer = obs.enable()
    with obs.span("my-stage", n_items=3):
        ...
    obs.write_trace(tracer.spans(), "trace.json")   # open in Perfetto
    print(obs.render_summary())
"""

from .export import (
    chrome_trace_events,
    load_jsonl,
    prometheus_text,
    render_summary,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_trace,
)
from .ledger import (
    DEFAULT_BENCH_RULES,
    LEDGER_SCHEMA_VERSION,
    MetricRule,
    RegressionDetector,
    RegressionFinding,
    RegressionReport,
    RunLedger,
    RunRecord,
    disable_ledger,
    enable_ledger,
    env_fingerprint,
    get_ledger,
    record_run,
    set_ledger,
)
from .metrics import (
    METRICS,
    Histogram,
    MetricsRegistry,
    get_metrics,
    inc,
    observe,
    set_gauge,
    set_metrics,
)
from .monitor import (
    ClusterDrift,
    DriftMonitor,
    DriftReport,
    DriftState,
    DriftThresholds,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
    span,
    traced,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "span",
    "traced",
    # metrics
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "get_metrics",
    "set_metrics",
    "inc",
    "set_gauge",
    "observe",
    # export
    "write_trace",
    "spans_to_jsonl",
    "load_jsonl",
    "spans_to_chrome_trace",
    "chrome_trace_events",
    "prometheus_text",
    "render_summary",
    # monitor
    "ClusterDrift",
    "DriftMonitor",
    "DriftReport",
    "DriftState",
    "DriftThresholds",
    # ledger
    "DEFAULT_BENCH_RULES",
    "LEDGER_SCHEMA_VERSION",
    "MetricRule",
    "RegressionDetector",
    "RegressionFinding",
    "RegressionReport",
    "RunLedger",
    "RunRecord",
    "enable_ledger",
    "disable_ledger",
    "env_fingerprint",
    "get_ledger",
    "set_ledger",
    "record_run",
]
