"""Span-based tracing for the FLARE pipeline.

A :class:`Span` records one timed region — wall-clock, CPU time,
peak-RSS delta and free-form attributes — and spans nest through a
``contextvars`` variable, so a ``fit`` → ``profile`` → executor dispatch
→ worker task chain forms one tree.  The tracer is process-global and
**disabled by default**: the installed :class:`NullTracer` turns every
instrumentation point into a no-op context manager, so the library pays
(almost) nothing until a caller opts in via :func:`enable` or the CLI's
``--trace`` / ``--obs-summary`` flags.

Worker-side spans recorded inside process-pool tasks are serialized as
plain dicts (:meth:`Span.to_dict`) and stitched back under the parent
dispatch span by :meth:`Tracer.ingest` — see
:mod:`repro.runtime.executor` for the transport.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "span",
    "traced",
    "detached_context",
]

try:  # POSIX-only; the instrumentation degrades gracefully elsewhere.
    import resource

    def _peak_rss_kb() -> float:
        """High-water resident-set size of this process, in KiB."""
        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

except ImportError:  # pragma: no cover - non-POSIX fallback

    def _peak_rss_kb() -> float:
        return 0.0


#: Span id of the innermost open span in this execution context.
_CURRENT_SPAN: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass
class Span:
    """One timed region of the pipeline.

    Attributes
    ----------
    name:
        Stage label, e.g. ``"flare.fit"`` or ``"dispatch:replays"``.
    span_id / parent_id:
        Tree structure; ``parent_id`` is ``None`` for roots.
    pid:
        Process that executed the region (workers keep their own pid,
        which is how stitched traces separate lanes in Perfetto).
    start_unix:
        Wall-clock entry time (``time.time()``), seconds since epoch.
    wall_s / cpu_s:
        Elapsed wall-clock and process CPU time of the region.
    peak_rss_delta_kb:
        Growth of the process peak RSS while the region ran (KiB; 0 when
        the high-water mark did not move).
    attrs:
        Free-form JSON-able attributes.
    status:
        ``"ok"`` or ``"error"`` (an exception escaped the region).
    """

    name: str
    span_id: int
    parent_id: int | None
    pid: int = field(default_factory=os.getpid)
    start_unix: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    peak_rss_delta_kb: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"

    def to_dict(self) -> dict:
        """Plain JSON-able form (the worker → parent wire format)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "start_unix": self.start_unix,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_delta_kb": self.peak_rss_delta_kb,
            "attrs": dict(self.attrs),
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(**payload)


class Tracer:
    """Collects finished spans for one process.

    Spans are appended in completion order (children before parents);
    :meth:`spans` returns them as recorded.  The tracer itself is cheap
    but not free — install it only when a trace or summary was asked
    for, and leave :data:`NULL_TRACER` in place otherwise.
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span; yields the live :class:`Span` for attr updates."""
        record = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=_CURRENT_SPAN.get(),
            start_unix=time.time(),
            attrs=attrs,
        )
        token = _CURRENT_SPAN.set(record.span_id)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        rss0 = _peak_rss_kb()
        try:
            yield record
        except BaseException:
            record.status = "error"
            raise
        finally:
            record.wall_s = time.perf_counter() - wall0
            record.cpu_s = time.process_time() - cpu0
            record.peak_rss_delta_kb = max(0.0, _peak_rss_kb() - rss0)
            _CURRENT_SPAN.reset(token)
            self._spans.append(record)

    # ------------------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, completion order."""
        return tuple(self._spans)

    def clear(self) -> None:
        self._spans.clear()

    def current_span_id(self) -> int | None:
        """Id of the innermost open span (None outside any span)."""
        return _CURRENT_SPAN.get()

    def ingest(
        self, payload: list[dict], *, parent_id: int | None = None
    ) -> None:
        """Stitch serialized worker spans under *parent_id*.

        Worker span ids are remapped into this tracer's id space (two
        passes, since children complete — and therefore serialize —
        before their parents); worker-root spans (``parent_id`` None)
        are attached to *parent_id*.
        """
        mapping = {rec["span_id"]: next(self._ids) for rec in payload}
        for rec in payload:
            span = Span.from_dict(rec)
            span.span_id = mapping[rec["span_id"]]
            if rec["parent_id"] is None:
                span.parent_id = parent_id
            else:
                span.parent_id = mapping[rec["parent_id"]]
            self._spans.append(span)

    # ------------------------------------------------------------------
    def totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name aggregate: count, wall, cpu, max RSS delta."""
        out: dict[str, dict[str, float]] = {}
        for span in self._spans:
            agg = out.setdefault(
                span.name,
                {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "max_rss_kb": 0.0},
            )
            agg["count"] += 1
            agg["wall_s"] += span.wall_s
            agg["cpu_s"] += span.cpu_s
            agg["max_rss_kb"] = max(agg["max_rss_kb"], span.peak_rss_delta_kb)
        return out

    def render(self) -> str:
        """Human-readable per-stage span summary table."""
        lines = [
            "span                              count    wall_s     cpu_s"
            "  rss_kb"
        ]
        for name, agg in sorted(
            self.totals().items(), key=lambda kv: -kv[1]["wall_s"]
        ):
            lines.append(
                f"{name:<32} {int(agg['count']):>6}  {agg['wall_s']:>8.3f}"
                f"  {agg['cpu_s']:>8.3f}  {agg['max_rss_kb']:>6.0f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self._spans)})"


class _NullSpanContext:
    """Reusable no-op context manager the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


class NullTracer:
    """Disabled tracer: every span is a shared no-op context manager."""

    enabled = False
    _NULL = _NullSpanContext()

    def span(self, name: str, **attrs):
        return self._NULL

    def spans(self) -> tuple[Span, ...]:
        return ()

    def clear(self) -> None:
        pass

    def current_span_id(self) -> None:
        return None

    def ingest(self, payload, *, parent_id=None) -> None:
        pass

    def totals(self) -> dict:
        return {}

    def render(self) -> str:
        return "tracing disabled (no spans recorded)"

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared disabled tracer.
NULL_TRACER = NullTracer()

_TRACER: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The process-global tracer (the :data:`NULL_TRACER` by default)."""
    return _TRACER


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install *tracer* globally; returns the previous one (for restore)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enable(tracer: Tracer | None = None) -> Tracer:
    """Turn tracing on; returns the (new or given) live tracer."""
    live = tracer if tracer is not None else Tracer()
    set_tracer(live)
    return live


def disable() -> None:
    """Turn tracing back off (reinstalls the shared null tracer)."""
    set_tracer(NULL_TRACER)


def span(name: str, **attrs):
    """Open a span on the current global tracer (no-op when disabled)."""
    return _TRACER.span(name, **attrs)


@contextmanager
def detached_context():
    """Run with no current span.

    Process-pool workers forked while a span was open inherit the
    parent's context variable; a worker-side capture runs inside this so
    its spans are roots of the worker-local tree (and stitch cleanly
    under the parent dispatch span on ingest).
    """
    token = _CURRENT_SPAN.set(None)
    try:
        yield
    finally:
        _CURRENT_SPAN.reset(token)


def traced(name: str | None = None, **attrs):
    """Decorator form: trace every call of the wrapped function.

    Enablement is checked at call time, so decorating at import time is
    free until tracing is switched on.
    """

    def decorate(fn):
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _TRACER
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
