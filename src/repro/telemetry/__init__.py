"""Telemetry substrate: metric registry, Profiler daemon, relational store.

Implements the paper's data-collection layer (§4.2): the two-level
(machine / HP) counter surface of Figure 6, a measurement-noise model, the
Profiler that derives counters for every recorded co-location scenario,
and the relational database the samples and replayable job commands are
persisted to.
"""

from .database import Column, Database, Schema, Table
from .metrics import (
    MACHINE_ONLY_METRICS,
    PER_LEVEL_METRICS,
    MetricLevel,
    MetricSpec,
    all_metric_names,
    all_metric_specs,
    metric_name,
)
from .noise import MeasurementNoise
from .profiler import ProfiledDataset, Profiler, format_command, parse_command
from .runtime_stats import RUNTIME_STATS, RuntimeStatsRegistry, StageStats

__all__ = [
    "Column",
    "Schema",
    "Table",
    "Database",
    "MetricLevel",
    "MetricSpec",
    "PER_LEVEL_METRICS",
    "MACHINE_ONLY_METRICS",
    "metric_name",
    "all_metric_specs",
    "all_metric_names",
    "MeasurementNoise",
    "Profiler",
    "ProfiledDataset",
    "format_command",
    "parse_command",
    "StageStats",
    "RuntimeStatsRegistry",
    "RUNTIME_STATS",
]
