"""The Profiler: turns scenarios into raw metric vectors (paper §4.2).

The paper deploys a daemon to every server that periodically gathers
system and microarchitectural statistics (perf, topdown, /proc) and logs
them — with the commands of the running jobs — to a relational database.
Here the Profiler derives the same counter surface from the contention
model's solution of each recorded co-location scenario, adds measurement
noise, and (optionally) persists everything to the in-memory database.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.features import BASELINE, Feature
from ..cluster.scenario import Scenario, ScenarioDataset
from ..cluster.source import ScenarioSource, resolve_source_argument
from ..perfmodel.batch import resolve_solver_mode, solve_colocation_many
from ..perfmodel.contention import (
    ColocationPerformance,
    InstancePerformance,
    RunningInstance,
    solve_colocation,
)
from ..perfmodel.machine import MachinePerf
from .database import Column, Database, Schema
from .metrics import (
    PER_LEVEL_METRICS,
    TEMPORAL_BASES,
    MetricLevel,
    MetricSpec,
    all_metric_specs,
    temporal_metric_name,
)
from .noise import MeasurementNoise

__all__ = [
    "ProfiledBatch",
    "ProfiledDataset",
    "Profiler",
    "format_command",
    "parse_command",
]


def format_command(instance: RunningInstance) -> str:
    """Render the container launch command the Profiler records.

    Mirrors the paper's practice of logging "the commands and
    configurations of running jobs" so a scenario can be reconstructed
    later by the Replayer.
    """
    return (
        f"docker run --cpus {instance.signature.vcpus} "
        f"--memory {instance.signature.dram_gb:g}g "
        f"--job {instance.signature.name} --load {instance.load:.4f}"
    )


def parse_command(command: str) -> tuple[str, float]:
    """Recover (job name, load) from a recorded launch command."""
    tokens = command.split()
    try:
        job = tokens[tokens.index("--job") + 1]
        load = float(tokens[tokens.index("--load") + 1])
    except (ValueError, IndexError):
        raise ValueError(f"unparseable job command: {command!r}") from None
    return job, load


@dataclass(frozen=True)
class ProfiledDataset:
    """Scenario source + its collected raw-metric matrix.

    Attributes
    ----------
    dataset:
        The scenarios (identity, recorded instances, weights) — any
        :class:`~repro.cluster.ScenarioSource`, in-memory or sharded.
    machine:
        The machine configuration the metrics were collected under.
    specs:
        Registry entries for each matrix column.
    matrix:
        ``(n_scenarios, n_metrics)`` raw counter values.
    """

    dataset: ScenarioSource
    machine: MachinePerf
    specs: tuple[MetricSpec, ...]
    matrix: np.ndarray

    @property
    def metric_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)

    @property
    def n_scenarios(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_metrics(self) -> int:
        return self.matrix.shape[1]

    def column(self, metric: str) -> np.ndarray:
        """Values of one metric across all scenarios."""
        try:
            idx = self.metric_names.index(metric)
        except ValueError:
            raise KeyError(f"unknown metric {metric!r}") from None
        return self.matrix[:, idx].copy()


class ProfiledBatch:
    """One profiled slice of a streaming source (``Profiler.iter_profile``).

    Attributes
    ----------
    start_row:
        Global row index of the batch's first scenario.
    dataset:
        The decoded scenarios of this batch only.  Under shard-ref
        dispatch the workers never ship scenarios back, so this decodes
        lazily from the memory-mapped shard on first access — consumers
        that only need the matrix never pay for it.
    matrix:
        ``(len(dataset), n_metrics)`` raw counter values, noise applied.
    """

    __slots__ = ("start_row", "matrix", "_dataset")

    def __init__(
        self,
        *,
        start_row: int,
        dataset,
        matrix: np.ndarray,
    ) -> None:
        self.start_row = start_row
        self.matrix = matrix
        self._dataset = dataset

    @property
    def dataset(self) -> ScenarioDataset:
        if callable(self._dataset):
            self._dataset = self._dataset()
        return self._dataset


class Profiler:
    """Collects the Figure 6 metric surface for every scenario.

    Parameters
    ----------
    noise_sigma:
        Relative measurement noise (0 disables).
    seed:
        Seed for the noise stream.
    database:
        Optional :class:`Database`; when given, scenario metadata
        (including replayable job commands) and all metric samples are
        persisted into ``scenarios`` and ``samples`` tables.
    temporal_samples:
        When > 0, the Profiler additionally observes each scenario at
        this many jittered user-demand points and appends temporal
        standard-deviation metrics (paper §4.1's "IPC: 1.4±0.5"
        enrichment) for the :data:`TEMPORAL_BASES` counters.
    temporal_jitter:
        Relative magnitude of the demand jitter.
    per_job_metrics:
        Job names to add per-job presence metrics for
        (``InstanceCount-<job>`` and ``VCPUShare-<job>``).  The paper
        notes per-job metrics "would greatly improve the estimation
        accuracy for the job" but inflate the feature space, so they are
        recommended "only when necessary" (§5.3) — hence opt-in.
    solver:
        Contention-solver path for multi-scenario collection:
        ``"scalar"``, ``"batched"``, or ``"auto"`` (batched whenever a
        call holds more than one scenario).  The paths are
        bit-identical; the knob exists to keep the scalar reference
        selectable.
    memo:
        Optional content-addressed solve memo (``"off"``/``None``,
        ``"memory"``, ``"store:<path>"``, or a live
        :class:`~repro.perfmodel.memo.SolveMemo`).  Multi-scenario
        collection consults it before solving; spec strings ship to
        executor workers, each resolving its own per-process instance.
    """

    def __init__(
        self,
        *,
        noise_sigma: float = 0.02,
        seed: int = 7,
        database: Database | None = None,
        temporal_samples: int = 0,
        temporal_jitter: float = 0.15,
        per_job_metrics: tuple[str, ...] = (),
        solver: str = "auto",
        memo=None,
    ) -> None:
        if temporal_samples < 0:
            raise ValueError("temporal_samples must be non-negative")
        resolve_solver_mode(solver, 0)  # validate eagerly
        if isinstance(memo, str):
            from ..perfmodel.memo import validate_memo_spec

            validate_memo_spec(memo)  # validate eagerly, resolve lazily
        if not 0.0 <= temporal_jitter < 1.0:
            raise ValueError("temporal_jitter must be in [0, 1)")
        if len(set(per_job_metrics)) != len(per_job_metrics):
            raise ValueError("per_job_metrics must not repeat job names")
        self.temporal_samples = temporal_samples
        self.temporal_jitter = temporal_jitter
        self.per_job_metrics = tuple(per_job_metrics)
        specs = list(all_metric_specs(include_temporal=temporal_samples > 0))
        for job in self.per_job_metrics:
            specs.append(
                MetricSpec(
                    name=f"InstanceCount-{job}",
                    base=f"InstanceCount-{job}",
                    level=None,
                    category="per-job",
                    unit="count",
                    description=f"Instances of {job} in the co-location",
                )
            )
            specs.append(
                MetricSpec(
                    name=f"VCPUShare-{job}",
                    base=f"VCPUShare-{job}",
                    level=None,
                    category="per-job",
                    unit="fraction",
                    description=f"{job}'s share of allocated vCPUs",
                )
            )
        self.specs = tuple(specs)
        self.noise_sigma = noise_sigma
        self.seed = seed
        self.solver = solver
        self.memo = memo
        self.database = database
        if database is not None:
            self._ensure_tables(database)

    # ------------------------------------------------------------------
    def profile(
        self,
        source: ScenarioSource | None = None,
        feature: Feature = BASELINE,
        *,
        runtime=None,
        executor=None,
        dataset: ScenarioDataset | None = None,
    ) -> ProfiledDataset:
        """Collect metrics for every scenario under *feature*'s machine.

        Accepts any :class:`~repro.cluster.ScenarioSource`: an
        in-memory dataset is profiled in one piece (the historical
        path, unchanged), while a sharded store is profiled
        batch-by-batch through :meth:`iter_profile` and the rows
        assembled into one matrix.  The noise stream is consumed in
        global row order either way, so the matrix is bit-identical
        across backings, runtimes, dispatch modes and batch sizes.

        ``runtime`` optionally fans the noise-free collection out: it
        accepts a :class:`repro.runtime.RuntimeConfig`, an executor
        instance, a spec string (``"process:4"``), or an
        already-resolved runtime.  ``None`` keeps the historical inline
        path (no executor machinery, no environment lookup).
        Measurement noise is applied in the parent in row order from
        the single shared stream.  The legacy ``executor=`` and
        ``dataset=`` keywords still work with a
        :class:`DeprecationWarning`.
        """
        from ..obs import inc, span
        from .._deprecations import resolve_renamed_kwarg

        runtime = resolve_renamed_kwarg(
            runtime,
            executor,
            owner="Profiler.profile",
            old_name="executor",
            new_name="runtime",
            required=False,
        )
        source = resolve_source_argument(
            source, dataset, owner="Profiler.profile"
        )
        if not isinstance(source, ScenarioDataset):
            return self._profile_streaming(source, feature, runtime)
        dataset = source
        with span(
            "profiler.profile",
            n_scenarios=len(dataset),
            n_metrics=len(self.specs),
            feature=feature.name,
        ):
            machine = feature(dataset.shape.perf)
            noise = MeasurementNoise(
                self.noise_sigma, np.random.default_rng(self.seed)
            )
            matrix = np.empty((len(dataset), len(self.specs)))
            if runtime is not None:
                from ..runtime.config import resolve_runtime

                resolved = resolve_runtime(runtime)
                try:
                    cleans = self._collect_all(dataset, machine, resolved)
                finally:
                    if resolved is not runtime:
                        resolved.close()
            elif resolve_solver_mode(self.solver, len(dataset)) == "batched":
                cleans = self.collect_many(
                    dataset.scenarios, dataset, machine
                )
            else:
                cleans = (
                    self.collect(scenario, dataset, machine)
                    for scenario in dataset.scenarios
                )
            for row, (scenario, clean) in enumerate(
                zip(dataset.scenarios, cleans)
            ):
                matrix[row] = noise.apply(clean, self.specs)
                if self.database is not None:
                    self._persist(scenario, matrix[row])
            inc("scenarios_profiled", len(dataset))
        return ProfiledDataset(
            dataset=dataset, machine=machine, specs=self.specs, matrix=matrix
        )

    def _profile_streaming(
        self, source: ScenarioSource, feature: Feature, runtime
    ) -> ProfiledDataset:
        """profile() over a non-resident source, via iter_profile."""
        from ..obs import span

        with span(
            "profiler.profile",
            n_scenarios=len(source),
            n_metrics=len(self.specs),
            feature=feature.name,
            streaming=True,
        ):
            machine = feature(source.shape.perf)
            matrix = np.empty((len(source), len(self.specs)))
            for batch in self.iter_profile(
                source, feature, runtime=runtime
            ):
                stop = batch.start_row + batch.matrix.shape[0]
                matrix[batch.start_row : stop] = batch.matrix
        return ProfiledDataset(
            dataset=source, machine=machine, specs=self.specs, matrix=matrix
        )

    def iter_profile(
        self,
        source: ScenarioSource | None = None,
        feature: Feature = BASELINE,
        *,
        runtime=None,
        executor=None,
        window: int | None = None,
        noise_offset: int = 0,
        dataset: ScenarioDataset | None = None,
    ):
        """Profile a source batch-by-batch, yielding :class:`ProfiledBatch`.

        ``noise_offset`` advances the noise stream past that many rows
        before the first batch: profiling rows ``[w, n)`` of a source
        with ``noise_offset=w`` gives each row exactly the noise a full
        profile of all ``n`` rows would — the incremental-refit hook.

        This is the streaming producer behind the out-of-core fit: at
        most a *window* of batches is resident at once, so peak memory
        is bounded by batch size rather than dataset size.  With a
        parallel *runtime* over a shard-backed store, dispatch goes
        zero-copy: workers receive :class:`~repro.runtime.ShardRef`
        row-range descriptors and memory-map the store themselves, so
        no scenario payload crosses the process boundary in either
        direction.  Other sources (or ``dispatch="pickle"``) ship each
        batch as one pickled chunk — chunks align with shards, and a
        :class:`~repro.runtime.CheckpointJournal` resumes at that
        granularity.  Both item kinds are pure content, so a resumed
        run may use a different executor or window and still hit its
        journal.

        Measurement noise is applied in the parent, in global row
        order, from the single seeded stream — yielded matrices are
        bit-identical to the in-memory path's rows under any runtime,
        worker count, dispatch mode or batch size.  The legacy
        ``executor=`` and ``dataset=`` keywords still work with a
        :class:`DeprecationWarning`.
        """
        from .._deprecations import resolve_renamed_kwarg
        from ..obs import inc, span

        runtime = resolve_renamed_kwarg(
            runtime,
            executor,
            owner="Profiler.iter_profile",
            old_name="executor",
            new_name="runtime",
            required=False,
        )
        source = resolve_source_argument(
            source, dataset, owner="Profiler.iter_profile"
        )
        machine = feature(source.shape.perf)
        noise = MeasurementNoise(
            self.noise_sigma, np.random.default_rng(self.seed)
        )
        if noise_offset < 0:
            raise ValueError("noise_offset must be non-negative")
        noise.skip(noise_offset, len(self.specs))
        start_row = 0
        if runtime is None:
            for batch in source.iter_batches():
                with span(
                    "profiler.profile_batch",
                    n_scenarios=len(batch),
                    start_row=start_row,
                    feature=feature.name,
                ):
                    clean = np.empty((len(batch), len(self.specs)))
                    vectors = self.collect_many(
                        batch.scenarios, batch, machine
                    )
                    for row, vector in enumerate(vectors):
                        clean[row] = vector
                    matrix = self._finish_batch(batch, clean, noise)
                inc("scenarios_profiled", len(batch))
                yield ProfiledBatch(
                    start_row=start_row, dataset=batch, matrix=matrix
                )
                start_row += len(batch)
            return

        import copy
        import time

        from ..runtime.config import record_stage_cost, resolve_runtime
        from ..runtime.dispatch import DispatchError, choose_dispatch
        from ..runtime.executor import ProcessExecutor
        from ..runtime.resilience import TaskFailure

        resolved = resolve_runtime(runtime)
        try:
            pool = resolved.executor
            config = resolved.config
            mode = choose_dispatch(
                config.dispatch,
                store_backed=(
                    hasattr(source, "shard_refs")
                    and getattr(source, "supports_shard_refs", True)
                ),
                parallel=isinstance(pool, ProcessExecutor),
                journaled=getattr(pool, "checkpoint", None) is not None,
            )
            if mode == "shm":
                if config.dispatch == "shm":
                    raise DispatchError(
                        "dispatch='shm' does not apply to streaming "
                        "profiling; use 'shardref' (for stores) or "
                        "'pickle'"
                    )
                mode = "pickle"  # auto: streaming stays on batch chunks
            if window is None:
                window = 2 * getattr(pool, "max_workers", 2)

            if mode == "shardref":
                yield from self._iter_profile_shardref(
                    source, feature, machine, noise, pool, config, window
                )
                return

            worker_profiler = copy.copy(self)
            worker_profiler.database = None
            task = _CollectBatchTask(
                profiler=worker_profiler, machine=machine
            )
            pending: list[ScenarioDataset] = []

            def drain():
                nonlocal start_row
                begin = time.perf_counter()
                cleans = pool.map(
                    task, list(pending), chunk_size=1, stage="profile"
                )
                record_stage_cost(
                    "profile",
                    time.perf_counter() - begin,
                    sum(len(batch) for batch in pending),
                )
                for batch, clean in zip(pending, cleans):
                    if isinstance(clean, TaskFailure):
                        raise RuntimeError(
                            f"profiling lost the batch at row {start_row} "
                            f"({clean.error}); a partial metric matrix "
                            "would skew every downstream stage — rerun "
                            "with a non-skipping failure policy"
                        )
                    with span(
                        "profiler.profile_batch",
                        n_scenarios=len(batch),
                        start_row=start_row,
                        feature=feature.name,
                    ):
                        matrix = self._finish_batch(batch, clean, noise)
                    inc("scenarios_profiled", len(batch))
                    yield ProfiledBatch(
                        start_row=start_row, dataset=batch, matrix=matrix
                    )
                    start_row += len(batch)
                pending.clear()

            for batch in source.iter_batches():
                pending.append(batch)
                if len(pending) >= window:
                    yield from drain()
            if pending:
                yield from drain()
        finally:
            if resolved is not runtime:
                resolved.close()

    def _iter_profile_shardref(
        self, source, feature, machine, noise, pool, config, window
    ):
        """Zero-copy streaming dispatch over a shard-backed source.

        Refs are iterated in global row order (the noise stream
        requires it) and dispatched *window* refs at a time with one
        ref per chunk; refs are cost-sized, so several may cover one
        shard.  Worker matrices are reassembled into *shard-aligned*
        batches before yielding — consumers accumulate per batch, so
        batch boundaries must match the serial path's (one batch per
        shard) for the whole fit to stay bit-identical.  Workers
        return only metric matrices; the yielded batch's scenarios
        decode lazily from the parent's own shard mapping, and only
        when a consumer actually touches them (or eagerly when
        persistence needs them).
        """
        import copy
        import dataclasses
        import time

        from ..obs import inc, span
        from ..runtime.config import cost_aware_block, record_stage_cost
        from ..runtime.resilience import TaskFailure

        workers = getattr(pool, "max_workers", 1)
        if isinstance(config.chunk_size, int):
            rows_per_ref = config.chunk_size
        else:
            rows_per_ref = cost_aware_block(len(source), workers, "profile")
        refs = source.shard_refs(rows_per_ref=rows_per_ref)
        worker_profiler = copy.copy(self)
        worker_profiler.database = None
        task = _CollectShardRefTask(
            profiler=worker_profiler,
            machine=machine,
            job_names=tuple(source.job_names),
            signatures=dict(source.signatures),
            shape=source.shape,
        )
        start_row = 0
        shard_cleans: list[np.ndarray] = []
        shard_ref = None  # first ref of the shard being assembled

        def flush_shard():
            nonlocal start_row, shard_cleans, shard_ref
            clean = (
                np.concatenate(shard_cleans, axis=0)
                if len(shard_cleans) > 1
                else shard_cleans[0]
            )
            whole = dataclasses.replace(
                shard_ref,
                row_start=0,
                row_stop=shard_ref.shard_rows,
                global_row=shard_ref.global_row - shard_ref.row_start,
            )
            with span(
                "profiler.profile_batch",
                n_scenarios=clean.shape[0],
                start_row=start_row,
                feature=feature.name,
            ):
                if self.database is not None:
                    batch = _decode_ref(task, whole)
                    matrix = self._finish_batch(batch, clean, noise)
                    dataset_value = batch
                else:
                    matrix = np.empty_like(clean)
                    for row in range(clean.shape[0]):
                        matrix[row] = noise.apply(clean[row], self.specs)
                    dataset_value = lambda t=task, r=whole: _decode_ref(t, r)
            inc("scenarios_profiled", clean.shape[0])
            yield ProfiledBatch(
                start_row=start_row, dataset=dataset_value, matrix=matrix
            )
            start_row += clean.shape[0]
            shard_cleans = []
            shard_ref = None

        for group_start in range(0, len(refs), window):
            group = refs[group_start : group_start + window]
            begin = time.perf_counter()
            cleans = pool.map(task, group, chunk_size=1, stage="profile")
            record_stage_cost(
                "profile",
                time.perf_counter() - begin,
                sum(ref.rows for ref in group),
            )
            for ref, clean in zip(group, cleans):
                if isinstance(clean, TaskFailure):
                    raise RuntimeError(
                        "profiling lost the shard ref at global row "
                        f"{ref.global_row} ({clean.error}); a partial "
                        "metric matrix would skew every downstream stage "
                        "— rerun with a non-skipping failure policy"
                    )
                if (
                    shard_ref is not None
                    and ref.shard_index != shard_ref.shard_index
                ):
                    yield from flush_shard()
                if shard_ref is None:
                    shard_ref = ref
                shard_cleans.append(clean)
        if shard_cleans:
            yield from flush_shard()

    def _finish_batch(
        self,
        batch: ScenarioDataset,
        clean: np.ndarray,
        noise: MeasurementNoise,
    ) -> np.ndarray:
        """Apply noise in row order and persist: the parent-only steps."""
        matrix = np.empty_like(clean)
        for row, scenario in enumerate(batch.scenarios):
            matrix[row] = noise.apply(clean[row], self.specs)
            if self.database is not None:
                self._persist(scenario, matrix[row])
        return matrix

    def _collect_all(
        self,
        dataset: ScenarioDataset,
        machine: MachinePerf,
        resolved,
    ) -> list:
        """Fan collection out over a resolved runtime.

        The dispatch mode decides what crosses the process boundary.
        Under ``shm`` the dataset is columnarised once in the parent
        (the store codec's tables), published through shared memory,
        and workers receive bare ``(start, stop)`` row ranges — the
        batched analogue of the historical range layout with the
        per-chunk scenario pickling removed.  ``pickle`` keeps the
        historical layouts: one row range per task for the batched
        solver, one row per task for the scalar reference.  Either way
        the row blocking is identical, so results are bit-identical
        across modes.

        The dispatched profiler copy drops the database handle (it is
        not picklable and persistence must stay in the parent anyway);
        a scenario degraded to a ``TaskFailure`` by ``retry_then_skip``
        is a hard error here — a profiled matrix with missing rows
        would silently skew everything downstream.
        """
        import copy
        import time

        from ..runtime.config import cost_aware_block, record_stage_cost
        from ..runtime.dispatch import choose_dispatch
        from ..runtime.executor import ProcessExecutor
        from ..runtime.resilience import TaskFailure

        pool = resolved.executor
        config = resolved.config
        batched = resolve_solver_mode(self.solver, len(dataset)) == "batched"
        mode = choose_dispatch(
            config.dispatch,
            store_backed=False,
            parallel=isinstance(pool, ProcessExecutor),
            journaled=getattr(pool, "checkpoint", None) is not None,
        )
        if mode == "shm" and not batched:
            mode = "pickle"  # the scalar reference keeps per-row tasks
        signatures = None
        if mode == "shm":
            signatures = _signature_catalogue(dataset)
            if signatures is None:
                # Conflicting signatures under one job name cannot be
                # interned into the columnar tables; ship scenarios.
                mode = "pickle"

        workers = getattr(pool, "max_workers", 1)
        if isinstance(config.chunk_size, int):
            block = config.chunk_size
        else:
            block = cost_aware_block(len(dataset), workers, "profile")
        worker_profiler = copy.copy(self)
        worker_profiler.database = None
        ranges = [
            (start, min(start + block, len(dataset)))
            for start in range(0, len(dataset), block)
        ]

        if mode == "shm":
            from ..runtime.dispatch import SharedTables
            from ..store.format import encode_shard

            job_index: dict[str, int] = {}
            scenario_table, instance_table = encode_shard(
                dataset.scenarios, job_index
            )
            job_names = tuple(sorted(job_index, key=job_index.__getitem__))
            tables = SharedTables(scenario_table, instance_table)
            shared_task = _CollectSharedTask(
                profiler=worker_profiler,
                machine=machine,
                tables=tables.ref,
                job_names=job_names,
                signatures=signatures,
                shape=dataset.shape,
            )
            begin = time.perf_counter()
            try:
                blocks = pool.map(
                    shared_task, ranges, chunk_size=1, stage="profile"
                )
            finally:
                tables.release()
            record_stage_cost(
                "profile", time.perf_counter() - begin, len(dataset)
            )
            return _reassemble_blocks(ranges, blocks)

        if batched:
            range_task = _CollectRangeTask(
                profiler=worker_profiler, dataset=dataset, machine=machine
            )
            begin = time.perf_counter()
            blocks = pool.map(
                range_task, ranges, chunk_size=1, stage="profile"
            )
            record_stage_cost(
                "profile", time.perf_counter() - begin, len(dataset)
            )
            return _reassemble_blocks(ranges, blocks)

        task = _CollectTask(
            profiler=worker_profiler, dataset=dataset, machine=machine
        )
        begin = time.perf_counter()
        cleans = pool.map(
            task,
            range(len(dataset)),
            chunk_size=block,
            stage="profile",
        )
        record_stage_cost(
            "profile", time.perf_counter() - begin, len(dataset)
        )
        lost = [
            row
            for row, clean in enumerate(cleans)
            if isinstance(clean, TaskFailure)
        ]
        if lost:
            raise RuntimeError(
                f"profiling lost {len(lost)} scenario(s) (rows {lost[:5]}"
                f"{'…' if len(lost) > 5 else ''}); a partial metric matrix "
                "would skew every downstream stage — rerun with a "
                "non-skipping failure policy"
            )
        return cleans

    def collect(
        self,
        scenario: Scenario,
        dataset: ScenarioDataset,
        machine: MachinePerf,
    ) -> np.ndarray:
        """Noise-free metric vector for one scenario (registry order)."""
        solution = solve_colocation(machine, list(scenario.instances))
        return self._vector_from_solution(scenario, dataset, machine, solution)

    def collect_many(
        self,
        scenarios,
        dataset: ScenarioDataset,
        machine: MachinePerf,
        *,
        block_rows: int = 4096,
    ) -> list[np.ndarray]:
        """Noise-free metric vectors for many scenarios, batch-solved.

        Bit-identical to calling :meth:`collect` per scenario; the
        contention fixed point runs through the solver path selected by
        ``self.solver`` and large populations are processed in blocks
        of *block_rows* so the batch working set stays bounded.
        """
        vectors: list[np.ndarray] = []
        for start in range(0, len(scenarios), block_rows):
            block = scenarios[start : start + block_rows]
            solutions = solve_colocation_many(
                machine,
                [list(scenario.instances) for scenario in block],
                solver=self.solver,
                memo=self.memo,
            )
            vectors.extend(
                self._vector_from_solution(scenario, dataset, machine, solution)
                for scenario, solution in zip(block, solutions)
            )
        return vectors

    def collect_tables(
        self,
        scenario_table: np.ndarray,
        instance_table: np.ndarray,
        *,
        job_names,
        signatures: dict,
        shape,
        machine: MachinePerf,
    ) -> np.ndarray:
        """Noise-free metric matrix for a columnar scenario-table slice.

        This is the worker-side entry point of the zero-copy dispatch
        modes: the tables arrive memory-mapped (shard refs) or
        shared-memory backed, and the batched solver packs its arrays
        straight from them via :meth:`ScenarioBatch.from_tables` — no
        scenario pickling anywhere.  Metric derivation still needs the
        decoded instances, so the slice is rebuilt locally; the result
        is bit-identical to :meth:`collect_many` over that decode
        (same 4096-row solve blocking, same float64 loads).
        """
        from ..perfmodel.batch import ScenarioBatch, solve_colocation_batch
        from ..store.format import decode_shard

        names = list(job_names)
        dataset = decode_shard(
            scenario_table, instance_table, names, signatures, shape
        )
        if (
            self.memo is not None
            or resolve_solver_mode(self.solver, len(dataset)) != "batched"
        ):
            # The memo path routes through collect_many so hits short-
            # circuit before any batch packing (bit-identical either way).
            vectors = self.collect_many(dataset.scenarios, dataset, machine)
        else:
            vectors = []
            for start in range(0, len(scenario_table), 4096):
                block = ScenarioBatch.from_tables(
                    scenario_table[start : start + 4096],
                    instance_table,
                    names,
                    signatures,
                )
                solutions = solve_colocation_batch(machine, block)
                vectors.extend(
                    self._vector_from_solution(
                        scenario, dataset, machine, solution
                    )
                    for scenario, solution in zip(
                        dataset.scenarios[start : start + 4096], solutions
                    )
                )
        clean = np.empty((len(dataset), len(self.specs)))
        for row, vector in enumerate(vectors):
            clean[row] = vector
        return clean

    def _vector_from_solution(
        self,
        scenario: Scenario,
        dataset: ScenarioDataset,
        machine: MachinePerf,
        solution: ColocationPerformance,
    ) -> np.ndarray:
        """Derive the registry-ordered metric vector from a solved scenario."""
        shape = dataset.shape
        values: dict[str, float] = {}

        pairs = list(zip(scenario.instances, solution.instances))
        for level, selector in (
            (MetricLevel.MACHINE, lambda _: True),
            (MetricLevel.HP, lambda perf: perf.is_high_priority),
        ):
            subset = [(ri, pi) for ri, pi in pairs if selector(pi)]
            level_values = _level_metrics(subset, shape.vcpus, shape.dram_gb, machine)
            for base, value in level_values.items():
                values[f"{base}-{level.value}"] = value

        values.update(
            _machine_only_metrics(pairs, shape.vcpus, shape.dram_gb, solution)
        )
        if self.temporal_samples > 0:
            values.update(self._temporal_metrics(scenario, machine, values))
        for job in self.per_job_metrics:
            count = scenario.count_of(job)
            allocated = scenario.total_vcpus
            values[f"InstanceCount-{job}"] = float(count)
            values[f"VCPUShare-{job}"] = (
                count * 4.0 / allocated if allocated else 0.0
            )

        vector = np.array([values[spec.name] for spec in self.specs])
        return vector

    def _temporal_metrics(
        self,
        scenario: Scenario,
        machine: MachinePerf,
        base_values: dict[str, float],
    ) -> dict[str, float]:
        """Std-dev of key counters over jittered user-demand samples.

        Deterministic per (profiler seed, scenario id): load jitter uses a
        dedicated stream so temporal metrics never perturb the main noise
        sequence.

        Vectorised across samples: the jitter draw is one array call
        (``Generator.uniform(size=(S, n))`` consumes doubles in C order,
        i.e. sample-major instance-minor — the same stream as the
        historical nested scalar loop), the solves are one batch, and the
        four :data:`TEMPORAL_BASES` reduce over (sample × instance)
        counter matrices instead of building ~50 metrics per sample.
        Bit-identical to :meth:`_temporal_metrics_scalar`: row reductions
        of a C-contiguous matrix apply the same pairwise summation as the
        per-subset 1-D arrays, and the instruction-weighted LLC-MPKI keeps
        the same 1-D BLAS dot call per row.  High-priority membership is
        a signature property, so the HP column subset is fixed across
        samples.
        """
        rng = np.random.default_rng((self.seed, scenario.scenario_id))
        n_samples = self.temporal_samples
        instances = scenario.instances
        n_inst = len(instances)

        factors = 1.0 + rng.uniform(
            -self.temporal_jitter,
            self.temporal_jitter,
            size=(n_samples, n_inst),
        )
        base_loads = np.array([inst.load for inst in instances])
        loads = np.clip(base_loads * factors, 0.05, 1.0)
        jittered_samples = [
            [
                RunningInstance(signature=inst.signature, load=float(load))
                for inst, load in zip(instances, row)
            ]
            for row in loads
        ]
        solutions = solve_colocation_many(
            machine, jittered_samples, solver=self.solver, memo=self.memo
        )

        # One extraction pass over the solved samples.
        mips = np.empty((n_samples, n_inst))
        busy = np.empty((n_samples, n_inst))
        freq = np.empty((n_samples, n_inst))
        llc_mpki = np.empty((n_samples, n_inst))
        dram_gbps = np.empty((n_samples, n_inst))
        for row, solution in enumerate(solutions):
            perf = solution.instances
            mips[row] = [p.mips for p in perf]
            busy[row] = [p.busy_threads for p in perf]
            freq[row] = [p.frequency_ghz for p in perf]
            llc_mpki[row] = [p.llc_mpki for p in perf]
            dram_gbps[row] = [p.dram_gbps for p in perf]

        def level_series(columns: np.ndarray | None) -> dict[str, np.ndarray]:
            if columns is not None and columns.size == 0:
                zeros = np.zeros(n_samples)
                return {base: zeros for base in TEMPORAL_BASES}
            if columns is None:
                m, b, f = mips, busy, freq
                llc, dram = llc_mpki, dram_gbps
            else:
                m = np.ascontiguousarray(mips[:, columns])
                b = np.ascontiguousarray(busy[:, columns])
                f = np.ascontiguousarray(freq[:, columns])
                llc = np.ascontiguousarray(llc_mpki[:, columns])
                dram = np.ascontiguousarray(dram_gbps[:, columns])
            instr_rate = m * 1e6
            total_instr = instr_rate.sum(axis=1)
            cycles = b * f * 1e9
            total_cycles = cycles.sum(axis=1)
            ipc = np.divide(
                total_instr,
                total_cycles,
                out=np.zeros(n_samples),
                where=total_cycles > 0,
            )
            weighted_mpki = np.empty(n_samples)
            for row in range(n_samples):
                w_instr = (
                    instr_rate[row] / total_instr[row]
                    if total_instr[row] > 0
                    else instr_rate[row]
                )
                weighted_mpki[row] = llc[row] @ w_instr
            return {
                "MIPS": m.sum(axis=1),
                "IPC": ipc,
                "LLC-MPKI": weighted_mpki,
                "MemTotalGBps": dram.sum(axis=1),
            }

        hp_columns = np.flatnonzero(
            [inst.signature.is_high_priority for inst in instances]
        )
        per_level = {
            MetricLevel.MACHINE: level_series(None),
            MetricLevel.HP: level_series(hp_columns),
        }
        out = {}
        series = np.empty(n_samples + 1)
        for level, values in per_level.items():
            for base in TEMPORAL_BASES:
                series[0] = base_values[f"{base}-{level.value}"]
                series[1:] = values[base]
                out[temporal_metric_name(base, level)] = float(
                    series.std(ddof=0)
                )
        return out

    def _temporal_metrics_scalar(
        self,
        scenario: Scenario,
        machine: MachinePerf,
        base_values: dict[str, float],
    ) -> dict[str, float]:
        """Reference implementation of :meth:`_temporal_metrics`.

        The historical per-sample loop over :func:`_level_metrics`, kept
        as the ground truth the vectorised path must match bit-for-bit
        (see the differential test in ``tests/telemetry``).
        """
        rng = np.random.default_rng((self.seed, scenario.scenario_id))
        samples: dict[str, list[float]] = {}
        for level in (MetricLevel.MACHINE, MetricLevel.HP):
            for base in TEMPORAL_BASES:
                name = f"{base}-{level.value}"
                samples[name] = [base_values[name]]

        jittered_samples: list[list[RunningInstance]] = []
        for _ in range(self.temporal_samples):
            jittered = []
            for inst in scenario.instances:
                factor = 1.0 + rng.uniform(
                    -self.temporal_jitter, self.temporal_jitter
                )
                load = float(np.clip(inst.load * factor, 0.05, 1.0))
                jittered.append(
                    RunningInstance(signature=inst.signature, load=load)
                )
            jittered_samples.append(jittered)
        solutions = solve_colocation_many(
            machine, jittered_samples, solver=self.solver, memo=self.memo
        )
        for jittered, solution in zip(jittered_samples, solutions):
            pairs = list(zip(jittered, solution.instances))
            for level, selector in (
                (MetricLevel.MACHINE, lambda _: True),
                (MetricLevel.HP, lambda perf: perf.is_high_priority),
            ):
                subset = [(ri, pi) for ri, pi in pairs if selector(pi)]
                level_values = _level_metrics(
                    subset,
                    scenario.total_vcpus,
                    1.0,
                    machine,
                )
                for base in TEMPORAL_BASES:
                    samples[f"{base}-{level.value}"].append(
                        level_values[base]
                    )

        out = {}
        for level in (MetricLevel.MACHINE, MetricLevel.HP):
            for base in TEMPORAL_BASES:
                series = np.asarray(samples[f"{base}-{level.value}"])
                out[temporal_metric_name(base, level)] = float(
                    series.std(ddof=0)
                )
        return out

    # ------------------------------------------------------------------
    def _ensure_tables(self, database: Database) -> None:
        if "scenarios" not in database.table_names:
            database.create_table(
                "scenarios",
                Schema(
                    columns=(
                        Column("scenario_id", int),
                        Column("key_text", str),
                        Column("n_containers", int),
                        Column("n_occurrences", int),
                        Column("total_duration_s", float),
                        Column("commands", str),
                    ),
                    primary_key="scenario_id",
                ),
            )
        if "samples" not in database.table_names:
            database.create_table(
                "samples",
                Schema(
                    columns=(
                        Column("scenario_id", int),
                        Column("metric", str),
                        Column("value", float),
                    )
                ),
            )

    def _persist(self, scenario: Scenario, values: np.ndarray) -> None:
        assert self.database is not None
        scenarios = self.database.table("scenarios")
        try:
            scenarios.get(scenario.scenario_id)
        except KeyError:
            scenarios.insert(
                {
                    "scenario_id": scenario.scenario_id,
                    "key_text": ",".join(
                        f"{name}x{count}" for name, count in scenario.key
                    ),
                    "n_containers": len(scenario.instances),
                    "n_occurrences": scenario.n_occurrences,
                    "total_duration_s": scenario.total_duration_s,
                    "commands": ";".join(
                        format_command(inst) for inst in scenario.instances
                    ),
                }
            )
        samples = self.database.table("samples")
        samples.insert_many(
            {
                "scenario_id": scenario.scenario_id,
                "metric": spec.name,
                "value": float(value),
            }
            for spec, value in zip(self.specs, values)
        )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CollectTask:
    """Picklable per-row profiling task for executor fan-out."""

    profiler: "Profiler"
    dataset: ScenarioDataset
    machine: MachinePerf

    def __call__(self, row: int) -> np.ndarray:
        return self.profiler.collect(
            self.dataset.scenarios[row], self.dataset, self.machine
        )


@dataclass(frozen=True)
class _CollectRangeTask:
    """Picklable row-range profiling task for batched executor fan-out.

    The item is a ``(start, stop)`` row range; the worker solves the
    whole block as one contention batch and returns its metric vectors
    in row order.
    """

    profiler: "Profiler"
    dataset: ScenarioDataset
    machine: MachinePerf

    def __call__(self, row_range: tuple[int, int]) -> list[np.ndarray]:
        start, stop = row_range
        return self.profiler.collect_many(
            self.dataset.scenarios[start:stop], self.dataset, self.machine
        )


@dataclass(frozen=True)
class _CollectShardRefTask:
    """Picklable shard-ref profiling task: the worker reads the store.

    The item is a :class:`~repro.runtime.ShardRef`; the worker
    memory-maps (and caches) the referenced shard, slices its row
    range, and profiles it through :meth:`Profiler.collect_tables`.
    Refs are pure content, so checkpoint-journal keys and injected
    fault fates survive re-runs unchanged.
    """

    profiler: "Profiler"
    machine: MachinePerf
    job_names: tuple
    signatures: dict
    shape: object

    def __call__(self, ref) -> np.ndarray:
        from ..runtime.dispatch import shard_tables

        scenario_table, instance_table = shard_tables(ref)
        return self.profiler.collect_tables(
            scenario_table[ref.row_start : ref.row_stop],
            instance_table,
            job_names=self.job_names,
            signatures=self.signatures,
            shape=self.shape,
            machine=self.machine,
        )


@dataclass(frozen=True)
class _CollectSharedTask:
    """Picklable shared-memory profiling task for in-memory datasets.

    The dataset's columnar tables live in the parent's shared-memory
    segments (``tables`` names them); the item is a bare
    ``(start, stop)`` row range, so the per-chunk payload is a few
    hundred bytes regardless of scenario count.
    """

    profiler: "Profiler"
    machine: MachinePerf
    tables: object
    job_names: tuple
    signatures: dict
    shape: object

    def __call__(self, row_range: tuple[int, int]) -> np.ndarray:
        from ..runtime.dispatch import attach_shared_tables

        start, stop = row_range
        scenario_table, instance_table = attach_shared_tables(self.tables)
        return self.profiler.collect_tables(
            scenario_table[start:stop],
            instance_table,
            job_names=self.job_names,
            signatures=self.signatures,
            shape=self.shape,
            machine=self.machine,
        )


def _decode_ref(task: _CollectShardRefTask, ref) -> ScenarioDataset:
    """Decode one ref's scenarios from the parent's own shard mapping."""
    from ..runtime.dispatch import shard_tables
    from ..store.format import decode_shard

    scenario_table, instance_table = shard_tables(ref)
    return decode_shard(
        scenario_table[ref.row_start : ref.row_stop],
        instance_table,
        list(task.job_names),
        task.signatures,
        task.shape,
    )


def _signature_catalogue(dataset: ScenarioDataset) -> dict | None:
    """Job-name → signature map, or ``None`` if any name is ambiguous."""
    signatures: dict = {}
    for scenario in dataset.scenarios:
        for instance in scenario.instances:
            name = instance.signature.name
            existing = signatures.get(name)
            if existing is None:
                signatures[name] = instance.signature
            elif existing != instance.signature:
                return None
    return signatures


def _reassemble_blocks(ranges, blocks) -> list:
    """Flatten per-range worker matrices back to per-row vectors."""
    from ..runtime.resilience import TaskFailure

    cleans: list = []
    lost_ranges = []
    for (start, stop), block_rows in zip(ranges, blocks):
        if isinstance(block_rows, TaskFailure):
            lost_ranges.append((start, stop))
            cleans.extend([block_rows] * (stop - start))
        else:
            cleans.extend(block_rows)
    if lost_ranges:
        raise RuntimeError(
            f"profiling lost {len(lost_ranges)} row range(s) "
            f"({lost_ranges[:5]}{'…' if len(lost_ranges) > 5 else ''}); "
            "a partial metric matrix would skew every downstream "
            "stage — rerun with a non-skipping failure policy"
        )
    return cleans


@dataclass(frozen=True)
class _CollectBatchTask:
    """Picklable per-batch profiling task for streaming fan-out.

    The item *is* the batch dataset, so a checkpoint journal keys each
    chunk by batch content — independent of how batches were grouped
    into dispatch windows.  Each shard is solved as one contention
    batch through the profiler's solver knob (``collect_many`` falls
    back to per-scenario scalar solves when so configured).
    """

    profiler: "Profiler"
    machine: MachinePerf

    def __call__(self, batch: ScenarioDataset) -> np.ndarray:
        clean = np.empty((len(batch), len(self.profiler.specs)))
        vectors = self.profiler.collect_many(
            batch.scenarios, batch, self.machine
        )
        for row, vector in enumerate(vectors):
            clean[row] = vector
        return clean


# ----------------------------------------------------------------------
def _level_metrics(
    subset: list[tuple[RunningInstance, InstancePerformance]],
    shape_vcpus: int,
    shape_dram_gb: float,
    machine: MachinePerf,
) -> dict[str, float]:
    """Aggregate one scope's counters over the selected instances."""
    if not subset:
        return {base: 0.0 for base, *_ in PER_LEVEL_METRICS}

    perf = [pi for _, pi in subset]
    sigs = [ri.signature for ri, _ in subset]

    mips = np.array([p.mips for p in perf])
    instr_rate = mips * 1e6
    total_instr = float(instr_rate.sum())
    busy = np.array([p.busy_threads for p in perf])
    cycles = busy * np.array([p.frequency_ghz for p in perf]) * 1e9
    total_cycles = float(cycles.sum())
    w_instr = instr_rate / total_instr if total_instr > 0 else instr_rate
    w_cycles = cycles / total_cycles if total_cycles > 0 else cycles

    def instrw(values) -> float:
        return float(np.asarray(values, dtype=np.float64) @ w_instr)

    def cyclew(values) -> float:
        return float(np.asarray(values, dtype=np.float64) @ w_cycles)

    allocated = float(sum(s.vcpus for s in sigs))
    dram_used = float(sum(s.dram_gb for s in sigs))
    total_mips = float(mips.sum())
    ipc = total_instr / total_cycles if total_cycles > 0 else 0.0

    llc_apki = np.array([s.llc_apki for s in sigs])
    llc_mpki = np.array([p.llc_mpki for p in perf])
    access_rate = instr_rate * llc_apki / 1000.0
    miss_rate = instr_rate * llc_mpki / 1000.0
    total_access = float(access_rate.sum())
    miss_ratio = float(miss_rate.sum()) / total_access if total_access > 0 else 0.0

    write_frac = np.array([s.write_fraction for s in sigs])
    dram_gbps = np.array([p.dram_gbps for p in perf])
    read_gbps = float((dram_gbps / (1.0 + write_frac)).sum())
    total_gbps = float(dram_gbps.sum())
    write_gbps = total_gbps - read_gbps

    network = float(sum(p.network_gbps for p in perf))
    disk = float(sum(p.disk_mbps for p in perf))

    stacks = [p.cpi_stack for p in perf]
    topdowns = [s.topdown() for s in stacks]

    return {
        "MIPS": total_mips,
        "IPC": ipc,
        "CPI": 1.0 / ipc if ipc > 0 else 0.0,
        "MIPSPerThread": total_mips / float(busy.sum()) if busy.sum() > 0 else 0.0,
        "MIPSPerVCPU": total_mips / allocated if allocated > 0 else 0.0,
        "SpinPct": instrw([s.spin_fraction for s in sigs]),
        "BusyThreads": float(busy.sum()),
        "CPUUtil": min(float(busy.sum()) / machine.hardware_threads, 1.0),
        "AllocatedVCPUs": allocated,
        "VCPUUtil": allocated / shape_vcpus,
        "ContainerCount": float(len(subset)),
        "DRAMUsedGB": dram_used,
        "DRAMUtil": dram_used / shape_dram_gb,
        "L1I-APKI": instrw([s.l1i_apki for s in sigs]),
        "L1D-APKI": instrw([s.l1d_apki for s in sigs]),
        "L1D-MPKI": instrw([s.l2_apki for s in sigs]),
        "L2-APKI": instrw([s.l2_apki for s in sigs]),
        "L2-MPKI": instrw(llc_apki),
        "LLC-APKI": instrw(llc_apki),
        "LLC-MPKI": instrw(llc_mpki),
        "LLC-MissRatio": miss_ratio,
        "LLC-HitRatio": 1.0 - miss_ratio if total_access > 0 else 0.0,
        "LLC-MissesPerSec": float(miss_rate.sum()) * 1000.0,
        "CacheOccupancyMB": float(sum(p.cache_share_mb for p in perf)),
        "Branch-MPKI": instrw([s.branch_mpki for s in sigs]),
        "Topdown-Retiring": cyclew([t.retiring for t in topdowns]),
        "Topdown-FrontendBound": cyclew([t.frontend_bound for t in topdowns]),
        "Topdown-BadSpeculation": cyclew([t.bad_speculation for t in topdowns]),
        "Topdown-BackendBound": cyclew([t.backend_bound for t in topdowns]),
        "Topdown-MemoryBound": cyclew([t.memory_bound for t in topdowns]),
        "Topdown-CoreBound": cyclew([t.core_bound for t in topdowns]),
        "CPIStack-Base": instrw([s.base for s in stacks]),
        "CPIStack-Frontend": instrw([s.frontend for s in stacks]),
        "CPIStack-Branch": instrw([s.branch for s in stacks]),
        "CPIStack-L2": instrw([s.l2 for s in stacks]),
        "CPIStack-LLCHit": instrw([s.llc_hit for s in stacks]),
        "CPIStack-DRAM": instrw([s.dram for s in stacks]),
        "CPIStack-SMT": instrw([s.smt for s in stacks]),
        "MemReadGBps": read_gbps,
        "MemWriteGBps": write_gbps,
        "MemTotalGBps": total_gbps,
        "MemTotalBytesPerSec": total_gbps * 1e9,
        "MemBWUtil": min(total_gbps / machine.mem_bw_gbps, 1.0),
        "NetworkGbps": network,
        "NetworkUtil": min(network / machine.network_gbps, 1.0),
        "DiskMBps": disk,
        "DiskUtil": min(disk / machine.disk_mbps, 1.0),
    }


def _machine_only_metrics(
    pairs: list[tuple[RunningInstance, InstancePerformance]],
    shape_vcpus: int,
    shape_dram_gb: float,
    solution: ColocationPerformance,
) -> dict[str, float]:
    """Environment/OS-level counters that exist only at machine scope."""
    allocated = sum(ri.signature.vcpus for ri, _ in pairs)
    hp_allocated = sum(
        ri.signature.vcpus for ri, pi in pairs if pi.is_high_priority
    )
    dram_used = sum(ri.signature.dram_gb for ri, _ in pairs)
    busy = sum(pi.busy_threads for _, pi in pairs)
    containers = len(pairs)
    dram_gbps = sum(pi.dram_gbps for _, pi in pairs)
    return {
        "MemLatencyNs": solution.mem_latency_ns,
        "MemFreeGB": shape_dram_gb - dram_used,
        "FreeVCPUs": float(shape_vcpus - allocated),
        "HPVCPUShare": hp_allocated / allocated if allocated else 0.0,
        "LoadAverage": busy,
        # Synthetic OS counters: plausible functions of machine activity,
        # giving refinement realistic near-duplicates to find.
        "ContextSwitchesPerSec": 120.0 * busy + 40.0 * containers,
        "PageFaultsPerSec": 900.0 * dram_gbps + 30.0 * containers,
        "ProcessCount": 60.0 + 12.0 * containers,
    }

