"""Lightweight in-memory relational store for profiling data.

The paper's Profiler records statistics "along with the commands and
configurations of running jobs ... in our relational database" (§4.2).
This module provides that substrate: typed tables with schemas, primary
keys, predicate queries and ordering — enough for the Profiler to persist
scenario metadata and metric samples, and for the Replayer to look up the
recorded job commands when reconstructing a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

__all__ = ["Column", "Schema", "Table", "Database"]

_TYPE_NAMES = {int: "INT", float: "REAL", str: "TEXT", bool: "BOOL"}


@dataclass(frozen=True)
class Column:
    """One typed column of a table schema."""

    name: str
    dtype: type
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.dtype not in _TYPE_NAMES:
            raise TypeError(
                f"unsupported column type {self.dtype!r}; "
                f"expected one of {sorted(t.__name__ for t in _TYPE_NAMES)}"
            )

    def validate(self, value: Any) -> Any:
        """Check/coerce *value* for this column."""
        if value is None:
            if not self.nullable:
                raise ValueError(f"column {self.name!r} is not nullable")
            return None
        # bool is a subclass of int; keep them distinct.
        if self.dtype is int and isinstance(value, bool):
            raise TypeError(f"column {self.name!r} expects int, got bool")
        if self.dtype is float and isinstance(value, int) and not isinstance(
            value, bool
        ):
            return float(value)
        if not isinstance(value, self.dtype):
            raise TypeError(
                f"column {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__}"
            )
        return value


@dataclass(frozen=True)
class Schema:
    """Ordered collection of columns with an optional primary key."""

    columns: tuple[Column, ...]
    primary_key: str | None = None

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError("duplicate column names in schema")
        if self.primary_key is not None and self.primary_key not in names:
            raise ValueError(
                f"primary key {self.primary_key!r} is not a column"
            )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r}")

    def validate_row(self, row: dict[str, Any]) -> dict[str, Any]:
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        validated = {}
        for col in self.columns:
            validated[col.name] = col.validate(row.get(col.name))
        return validated


class Table:
    """One relation: schema + rows, with insert/select/update/delete."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._rows: list[dict[str, Any]] = []
        self._pk_index: dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return (dict(row) for row in self._rows)

    # ------------------------------------------------------------------
    def insert(self, row: dict[str, Any]) -> None:
        """Insert one row; enforces schema types and PK uniqueness."""
        validated = self.schema.validate_row(row)
        pk = self.schema.primary_key
        if pk is not None:
            key = validated[pk]
            if key in self._pk_index:
                raise ValueError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index[key] = len(self._rows)
        self._rows.append(validated)

    def insert_many(self, rows: Iterable[dict[str, Any]]) -> int:
        """Insert rows in order; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def get(self, key: Any) -> dict[str, Any]:
        """Primary-key lookup."""
        pk = self.schema.primary_key
        if pk is None:
            raise ValueError(f"table {self.name!r} has no primary key")
        try:
            return dict(self._rows[self._pk_index[key]])
        except KeyError:
            raise KeyError(
                f"no row with {pk}={key!r} in table {self.name!r}"
            ) from None

    def select(
        self,
        where: Callable[[dict[str, Any]], bool] | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Filtered, optionally ordered copy of matching rows."""
        rows = [dict(r) for r in self._rows if where is None or where(r)]
        if order_by is not None:
            self.schema.column(order_by)  # raises on unknown column
            rows.sort(key=lambda r: r[order_by], reverse=descending)
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be non-negative")
            rows = rows[:limit]
        return rows

    def update(
        self,
        where: Callable[[dict[str, Any]], bool],
        changes: dict[str, Any],
    ) -> int:
        """Apply *changes* to matching rows; returns the count updated."""
        if self.schema.primary_key is not None and (
            self.schema.primary_key in changes
        ):
            raise ValueError("cannot update the primary key")
        for name, value in changes.items():
            self.schema.column(name).validate(value)
        updated = 0
        for row in self._rows:
            if where(row):
                row.update(changes)
                updated += 1
        return updated

    def delete(self, where: Callable[[dict[str, Any]], bool]) -> int:
        """Delete matching rows; returns the count removed."""
        keep = [r for r in self._rows if not where(r)]
        removed = len(self._rows) - len(keep)
        self._rows = keep
        self._rebuild_pk_index()
        return removed

    def _rebuild_pk_index(self) -> None:
        pk = self.schema.primary_key
        if pk is None:
            return
        self._pk_index = {row[pk]: i for i, row in enumerate(self._rows)}


class Database:
    """Named collection of tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create a table; rejects duplicates."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r}") from None

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no table {name!r}")
        del self._tables[name]

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))
