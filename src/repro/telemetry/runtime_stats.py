"""Execution-stage statistics recorded by the parallel runtime.

Every :meth:`repro.runtime.Executor.map` call reports one
:class:`StageStats` record — stage label, executor kind, task/chunk
counts and wall-clock — into the process-wide :data:`RUNTIME_STATS`
registry, the same place the Profiler-side telemetry lives.  This is the
observability hook for the paper's cost claims (§5.4): it shows where
the evaluation time goes and what parallel dispatch buys.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["StageStats", "RuntimeStatsRegistry", "RUNTIME_STATS"]


@dataclass(frozen=True)
class StageStats:
    """One executor dispatch: how much work, how long, on what backend.

    Attributes
    ----------
    stage:
        Label of the fan-out loop (e.g. ``"sampling-trials"``).
    executor:
        Executor kind that ran it (``"serial"`` / ``"process"``).
    n_tasks:
        Individual tasks dispatched.
    n_chunks:
        Pickled work units the tasks were batched into.
    wall_s:
        End-to-end wall-clock of the dispatch, in seconds.
    """

    stage: str
    executor: str
    n_tasks: int
    n_chunks: int
    wall_s: float

    @property
    def tasks_per_second(self) -> float:
        return self.n_tasks / self.wall_s if self.wall_s > 0 else 0.0


class RuntimeStatsRegistry:
    """Bounded in-memory log of executor dispatches."""

    def __init__(self, maxlen: int = 512) -> None:
        self._records: deque[StageStats] = deque(maxlen=maxlen)

    def record(self, stats: StageStats) -> None:
        self._records.append(stats)

    def records(self) -> tuple[StageStats, ...]:
        """All retained records, oldest first."""
        return tuple(self._records)

    def stages(self) -> tuple[str, ...]:
        """Distinct stage labels seen, in first-appearance order."""
        seen: dict[str, None] = {}
        for rec in self._records:
            seen.setdefault(rec.stage, None)
        return tuple(seen)

    def totals(self) -> dict[str, dict[str, float]]:
        """Per-stage aggregate: dispatches, tasks, chunks, wall seconds."""
        out: dict[str, dict[str, float]] = {}
        for rec in self._records:
            agg = out.setdefault(
                rec.stage,
                {"dispatches": 0, "tasks": 0, "chunks": 0, "wall_s": 0.0},
            )
            agg["dispatches"] += 1
            agg["tasks"] += rec.n_tasks
            agg["chunks"] += rec.n_chunks
            agg["wall_s"] += rec.wall_s
        return out

    def render(self) -> str:
        """Human-readable per-stage summary table."""
        lines = ["stage                     tasks  chunks   wall_s"]
        for stage, agg in self.totals().items():
            lines.append(
                f"{stage:<24} {int(agg['tasks']):>6}  {int(agg['chunks']):>6}"
                f"  {agg['wall_s']:>7.3f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self._records.clear()


#: Process-wide registry the runtime reports into.
RUNTIME_STATS = RuntimeStatsRegistry()
