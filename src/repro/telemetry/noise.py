"""Measurement-noise model for collected counters.

Production metric pipelines are noisy: sampling-based counters, timer
jitter, interrupt skew.  The Profiler perturbs every collected value with
multiplicative Gaussian noise so that downstream refinement/PCA face
realistic (not laboratory-clean) inputs, as the paper's own data does.
"""

from __future__ import annotations

import numpy as np

from .metrics import MetricSpec

__all__ = ["MeasurementNoise"]


class MeasurementNoise:
    """Multiplicative Gaussian perturbation of metric vectors.

    Parameters
    ----------
    sigma:
        Relative standard deviation (0.02 = 2 % jitter).  Zero disables
        noise entirely (useful for exact-value tests).
    rng:
        Random generator; pass a seeded generator for reproducibility.
    """

    def __init__(self, sigma: float, rng: np.random.Generator) -> None:
        if sigma < 0.0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self._rng = rng

    def skip(self, n_rows: int, n_metrics: int) -> None:
        """Advance the stream past *n_rows* rows without applying noise.

        Draws exactly what :meth:`apply` would consume for those rows,
        one row at a time, so a consumer that skips the first *k* rows
        and then applies noise to row *k* gets the same factors a
        start-from-zero consumer would — the property that lets an
        incremental refit profile only fresh rows yet stay on the full
        run's noise stream.  A zero-sigma stream consumes nothing, in
        apply and here alike.
        """
        if self.sigma == 0.0:
            return
        for _ in range(n_rows):
            self._rng.normal(0.0, self.sigma, size=n_metrics)

    def apply(
        self, values: np.ndarray, specs: tuple[MetricSpec, ...]
    ) -> np.ndarray:
        """Return a noisy copy of *values* (one vector, registry order).

        Fraction-unit metrics are clipped back into [0, 1]; all metrics
        are clipped at zero (a counter cannot go negative).
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != (len(specs),):
            raise ValueError(
                f"expected {len(specs)} values, got shape {arr.shape}"
            )
        if self.sigma == 0.0:
            return arr.copy()
        factors = 1.0 + self._rng.normal(0.0, self.sigma, size=arr.shape)
        noisy = arr * factors
        np.maximum(noisy, 0.0, out=noisy)
        for i, spec in enumerate(specs):
            if spec.is_fraction and noisy[i] > 1.0:
                noisy[i] = 1.0
        return noisy
