"""Raw metric registry: the counters the Profiler collects (Figure 6).

FLARE's two-level collection records every metric at *machine* scope (sum
over all jobs — the running environment) and at *HP* scope (High Priority
jobs only — the jobs whose performance is managed).  Names follow the
paper's convention, e.g. ``LLC-APKI-Machine`` and ``LLC-APKI-HP``.

The registry intentionally contains redundant derived counters (e.g. total
memory bytes/s, which is just GB/s rescaled; hit ratio = 1 − miss ratio) —
real monitoring stacks export such duplicates, and the refinement step
(paper §4.2: 100+ → ~85 metrics) exists precisely to prune them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "MetricLevel",
    "MetricSpec",
    "PER_LEVEL_METRICS",
    "MACHINE_ONLY_METRICS",
    "metric_name",
    "all_metric_specs",
    "all_metric_names",
]


class MetricLevel(enum.Enum):
    """Scope of a two-level metric."""

    MACHINE = "Machine"
    HP = "HP"


@dataclass(frozen=True)
class MetricSpec:
    """Description of one raw counter.

    Attributes
    ----------
    name:
        Full metric name as it appears in the dataset columns.
    base:
        Level-independent base name (equals ``name`` for machine-only
        metrics).
    level:
        ``MetricLevel`` for two-level metrics; None for machine-only.
    category:
        Counter family ("performance", "cache", "topdown", "memory",
        "cpu", "io", "os").
    unit:
        Physical unit; ``"fraction"`` marks metrics clipped to [0, 1]
        after measurement noise.
    description:
        What the counter measures.
    """

    name: str
    base: str
    level: MetricLevel | None
    category: str
    unit: str
    description: str

    @property
    def is_fraction(self) -> bool:
        return self.unit == "fraction"


# (base name, category, unit, description)
PER_LEVEL_METRICS: tuple[tuple[str, str, str, str], ...] = (
    ("MIPS", "performance", "Minstr/s", "Million instructions retired per second"),
    ("IPC", "performance", "instr/cycle", "Instructions per cycle"),
    ("CPI", "performance", "cycle/instr", "Cycles per instruction"),
    ("MIPSPerThread", "performance", "Minstr/s", "MIPS per busy hardware thread"),
    ("MIPSPerVCPU", "performance", "Minstr/s", "MIPS per allocated vCPU"),
    ("SpinPct", "performance", "fraction", "Fraction of instructions in spin loops"),
    ("BusyThreads", "cpu", "threads", "Average busy hardware threads"),
    ("CPUUtil", "cpu", "fraction", "Busy threads over hardware threads"),
    ("AllocatedVCPUs", "cpu", "vcpus", "vCPUs allocated to containers"),
    ("VCPUUtil", "cpu", "fraction", "Allocated vCPUs over schedulable vCPUs"),
    ("ContainerCount", "cpu", "count", "Number of running containers"),
    ("DRAMUsedGB", "memory", "GB", "DRAM allocated to containers"),
    ("DRAMUtil", "memory", "fraction", "DRAM allocated over machine DRAM"),
    ("L1I-APKI", "cache", "acc/Kinstr", "L1 instruction-cache accesses per kilo-instruction"),
    ("L1D-APKI", "cache", "acc/Kinstr", "L1 data-cache accesses per kilo-instruction"),
    ("L1D-MPKI", "cache", "miss/Kinstr", "L1D misses per kilo-instruction (= L2 accesses)"),
    ("L2-APKI", "cache", "acc/Kinstr", "L2 accesses per kilo-instruction"),
    ("L2-MPKI", "cache", "miss/Kinstr", "L2 misses per kilo-instruction (= LLC accesses)"),
    ("LLC-APKI", "cache", "acc/Kinstr", "LLC accesses per kilo-instruction"),
    ("LLC-MPKI", "cache", "miss/Kinstr", "LLC misses per kilo-instruction"),
    ("LLC-MissRatio", "cache", "fraction", "LLC misses over LLC accesses"),
    ("LLC-HitRatio", "cache", "fraction", "LLC hits over LLC accesses (redundant with miss ratio)"),
    ("LLC-MissesPerSec", "cache", "miss/s", "Absolute LLC miss rate"),
    ("CacheOccupancyMB", "cache", "MB", "LLC capacity occupied"),
    ("Branch-MPKI", "performance", "miss/Kinstr", "Branch mispredictions per kilo-instruction"),
    ("Topdown-Retiring", "topdown", "fraction", "Topdown: useful-work slot fraction"),
    ("Topdown-FrontendBound", "topdown", "fraction", "Topdown: frontend-starved slot fraction"),
    ("Topdown-BadSpeculation", "topdown", "fraction", "Topdown: wasted-speculation slot fraction"),
    ("Topdown-BackendBound", "topdown", "fraction", "Topdown: backend-stalled slot fraction"),
    ("Topdown-MemoryBound", "topdown", "fraction", "Topdown: memory-subsystem stall fraction"),
    ("Topdown-CoreBound", "topdown", "fraction", "Topdown: core-resource stall fraction"),
    ("CPIStack-Base", "topdown", "cycle/instr", "CPI stack: issue/dependency component"),
    ("CPIStack-Frontend", "topdown", "cycle/instr", "CPI stack: frontend stalls"),
    ("CPIStack-Branch", "topdown", "cycle/instr", "CPI stack: misprediction recovery"),
    ("CPIStack-L2", "topdown", "cycle/instr", "CPI stack: L2 hit stalls"),
    ("CPIStack-LLCHit", "topdown", "cycle/instr", "CPI stack: LLC hit stalls"),
    ("CPIStack-DRAM", "topdown", "cycle/instr", "CPI stack: DRAM stalls"),
    ("CPIStack-SMT", "topdown", "cycle/instr", "CPI stack: core-sharing penalty"),
    ("MemReadGBps", "memory", "GB/s", "DRAM read bandwidth"),
    ("MemWriteGBps", "memory", "GB/s", "DRAM write bandwidth"),
    ("MemTotalGBps", "memory", "GB/s", "DRAM total bandwidth"),
    ("MemTotalBytesPerSec", "memory", "B/s", "DRAM total bandwidth in bytes/s (redundant rescale)"),
    ("MemBWUtil", "memory", "fraction", "DRAM bandwidth over machine peak"),
    ("NetworkGbps", "io", "Gb/s", "Network traffic"),
    ("NetworkUtil", "io", "fraction", "Network traffic over NIC capacity"),
    ("DiskMBps", "io", "MB/s", "Disk traffic"),
    ("DiskUtil", "io", "fraction", "Disk traffic over device capability"),
)

#: Machine-scope-only counters (environment / OS level).
MACHINE_ONLY_METRICS: tuple[tuple[str, str, str, str], ...] = (
    ("MemLatencyNs", "memory", "ns", "Loaded DRAM access latency"),
    ("MemFreeGB", "memory", "GB", "Unallocated machine DRAM"),
    ("FreeVCPUs", "cpu", "vcpus", "Unallocated schedulable vCPUs"),
    ("HPVCPUShare", "cpu", "fraction", "HP share of allocated vCPUs"),
    ("LoadAverage", "os", "threads", "1-minute load average (≈ busy threads)"),
    ("ContextSwitchesPerSec", "os", "1/s", "OS context switches per second"),
    ("PageFaultsPerSec", "os", "1/s", "Minor page faults per second"),
    ("ProcessCount", "os", "count", "Processes visible to the OS"),
)


#: Bases that get a temporal standard-deviation companion when the
#: Profiler's temporal extension is enabled (paper §4.1: "one may include
#: standard deviations (e.g., IPC: 1.4±0.5) to enrich the temporal
#: information").
TEMPORAL_BASES: tuple[str, ...] = (
    "MIPS",
    "IPC",
    "LLC-MPKI",
    "MemTotalGBps",
)


def metric_name(base: str, level: MetricLevel) -> str:
    """Full column name of a two-level metric at *level*."""
    return f"{base}-{level.value}"


def temporal_metric_name(base: str, level: MetricLevel) -> str:
    """Column name of a temporal (std-dev) companion metric."""
    return f"{base}-Std-{level.value}"


def all_metric_specs(*, include_temporal: bool = False) -> tuple[MetricSpec, ...]:
    """The complete ordered metric registry (machine block, HP block,
    machine-only block, optional temporal block)."""
    specs: list[MetricSpec] = []
    for level in (MetricLevel.MACHINE, MetricLevel.HP):
        for base, category, unit, description in PER_LEVEL_METRICS:
            specs.append(
                MetricSpec(
                    name=metric_name(base, level),
                    base=base,
                    level=level,
                    category=category,
                    unit=unit,
                    description=f"{description} ({level.value} scope)",
                )
            )
    for base, category, unit, description in MACHINE_ONLY_METRICS:
        specs.append(
            MetricSpec(
                name=base,
                base=base,
                level=None,
                category=category,
                unit=unit,
                description=description,
            )
        )
    if include_temporal:
        for level in (MetricLevel.MACHINE, MetricLevel.HP):
            for base in TEMPORAL_BASES:
                specs.append(
                    MetricSpec(
                        name=temporal_metric_name(base, level),
                        base=f"{base}-Std",
                        level=level,
                        category="temporal",
                        unit="std",
                        description=(
                            f"Temporal standard deviation of {base} "
                            f"({level.value} scope)"
                        ),
                    )
                )
    return tuple(specs)


def all_metric_names(*, include_temporal: bool = False) -> tuple[str, ...]:
    """Column names in registry order."""
    return tuple(
        spec.name for spec in all_metric_specs(include_temporal=include_temporal)
    )
