"""Stable public API of the FLARE reproduction.

This module is the supported import surface: everything listed in
``__all__`` keeps its name and signature across releases, while internal
module layout (``repro.core``, ``repro.stats``, …) may change freely.
Prefer::

    from repro.api import Flare, FlareConfig, run_simulation, FEATURE_1_CACHE

over reaching into submodules.  The legacy top-level re-exports
(``from repro import Flare``), deprecated in 1.1, were removed in 1.2;
accessing one raises an ``AttributeError`` pointing here.

The surface groups into:

* **simulation** — build a scenario dataset (`run_simulation`,
  `DatacenterConfig`, machine shapes);
* **pipeline** — fit and query FLARE (`Flare`, `FlareConfig`,
  `AnalyzerConfig`, `Replayer`, fleet evaluation);
* **features** — the Table 4 features and the `Feature` type;
* **baselines** — full-datacenter, random-sampling, stratified and
  load-testing comparisons;
* **runtime** — the unified execution configuration (`RuntimeConfig`,
  `resolve_runtime`) over the deterministic parallel engine
  (`Executor`, `SerialExecutor`, `ProcessExecutor`, `resolve_executor`)
  with zero-copy scenario dispatch (`ShardRef`, `DispatchError`,
  `active_shared_segments`; see docs/runtime.md), the digest-keyed
  artefact cache (`RuntimeCache`), and the failure model
  (`ResilienceConfig`, `FailurePolicy`, `RetryPolicy`, `TaskFailure`,
  `partition_failures`, `FaultSpec`, `CheckpointJournal`;
  see docs/resilience.md);
* **observability** — span tracing, the metrics registry and trace
  export (`Tracer`, `Span`, `METRICS`, `write_trace`, `render_summary`,
  `prometheus_text`), plus the fleet-health observatory: model drift
  monitoring (`DriftMonitor`, `Flare.health`) and the append-only run
  ledger with statistical regression gates (`RunLedger`, `record_run`,
  `RegressionDetector`, `DEFAULT_BENCH_RULES`; see :mod:`repro.obs`
  and docs/observability.md);
* **persistence** — dataset/model save & load round-trips, plus the
  sharded columnar scenario store for out-of-core pipelines
  (`ScenarioSource`, `ShardedScenarioStore`, `StoreWriter`,
  `open_store`, `write_store`, `compact_store`; see docs/store.md);
* **perfmodel** — the contention solver's batched path
  (`ScenarioBatch`, `solve_colocation`, `solve_colocation_batch`,
  `solve_colocation_many`, `SOLVER_MODES`) and the content-addressed
  solve memo (`SolveMemo`, `resolve_memo`, `MEMO_MODES`; see
  docs/perfmodel.md).
"""

from __future__ import annotations

from .baselines import (
    DatacenterTruth,
    LoadTestResult,
    SamplingEvaluation,
    evaluate_by_sampling,
    evaluate_by_stratified_sampling,
    evaluate_full_datacenter,
    evaluate_job_by_sampling,
    load_test_all_jobs,
    load_test_job,
    sampling_cost_curve,
    stratify_by_metric,
)
from .cluster import (
    BASELINE,
    DEFAULT_SHAPE,
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    FEATURE_3_SMT,
    PAPER_FEATURES,
    SMALL_SHAPE,
    DatacenterConfig,
    Feature,
    MachineShape,
    ScenarioDataset,
    ScenarioSource,
    SimulationResult,
    SubmissionConfig,
    ensure_dataset,
    run_simulation,
)
from .core import (
    AnalyzerConfig,
    FeatureImpactEstimate,
    Flare,
    FlareConfig,
    FleetEvaluator,
    FleetSegment,
    Replayer,
)
from .io.serialization import (
    load_dataset,
    load_model,
    save_dataset,
    save_model,
)
from .store import (
    DEFAULT_SHARD_SIZE,
    ShardedScenarioStore,
    StoreCorruptionError,
    StoreError,
    StoreWriter,
    compact_store,
    open_store,
    write_store,
)
from .obs import (
    DEFAULT_BENCH_RULES,
    METRICS,
    DriftMonitor,
    DriftReport,
    DriftState,
    DriftThresholds,
    MetricRule,
    MetricsRegistry,
    RegressionDetector,
    RegressionReport,
    RunLedger,
    RunRecord,
    Span,
    Tracer,
    enable_ledger,
    get_ledger,
    get_metrics,
    get_tracer,
    prometheus_text,
    record_run,
    render_summary,
    write_trace,
)
from .runtime import (
    CheckpointJournal,
    DispatchError,
    Executor,
    FailurePolicy,
    FaultSpec,
    ProcessExecutor,
    ResilienceConfig,
    ResolvedRuntime,
    RetryPolicy,
    RuntimeCache,
    RuntimeConfig,
    SerialExecutor,
    ShardRef,
    TaskFailure,
    active_shared_segments,
    available_workers,
    default_cache,
    partition_failures,
    resolve_executor,
    resolve_runtime,
)
from .perfmodel import (
    MEMO_MODES,
    SOLVER_MODES,
    ColocationPerformance,
    MachinePerf,
    RunningInstance,
    ScenarioBatch,
    SolveMemo,
    resolve_memo,
    solve_colocation,
    solve_colocation_batch,
    solve_colocation_many,
)
from .telemetry import RUNTIME_STATS, Database, ProfiledDataset, Profiler
from .workloads import HP_JOB_NAMES, HP_JOBS, LP_JOB_NAMES, LP_JOBS, get_job

__all__ = [
    # simulation
    "DatacenterConfig",
    "SubmissionConfig",
    "SimulationResult",
    "run_simulation",
    "MachineShape",
    "DEFAULT_SHAPE",
    "SMALL_SHAPE",
    "ScenarioDataset",
    # features
    "Feature",
    "BASELINE",
    "FEATURE_1_CACHE",
    "FEATURE_2_DVFS",
    "FEATURE_3_SMT",
    "PAPER_FEATURES",
    # pipeline
    "Flare",
    "FlareConfig",
    "AnalyzerConfig",
    "FeatureImpactEstimate",
    "Replayer",
    "FleetEvaluator",
    "FleetSegment",
    "Profiler",
    "ProfiledDataset",
    "Database",
    # baselines
    "DatacenterTruth",
    "evaluate_full_datacenter",
    "SamplingEvaluation",
    "evaluate_by_sampling",
    "evaluate_job_by_sampling",
    "evaluate_by_stratified_sampling",
    "stratify_by_metric",
    "sampling_cost_curve",
    "LoadTestResult",
    "load_test_job",
    "load_test_all_jobs",
    # runtime
    "RuntimeConfig",
    "ResolvedRuntime",
    "resolve_runtime",
    "DispatchError",
    "ShardRef",
    "active_shared_segments",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "available_workers",
    "RuntimeCache",
    "default_cache",
    "RUNTIME_STATS",
    # resilience
    "FailurePolicy",
    "RetryPolicy",
    "ResilienceConfig",
    "TaskFailure",
    "partition_failures",
    "FaultSpec",
    "CheckpointJournal",
    # observability
    "Tracer",
    "Span",
    "MetricsRegistry",
    "METRICS",
    "get_tracer",
    "get_metrics",
    "write_trace",
    "render_summary",
    "prometheus_text",
    # fleet health (drift monitor + run ledger)
    "DriftMonitor",
    "DriftReport",
    "DriftState",
    "DriftThresholds",
    "RunLedger",
    "RunRecord",
    "record_run",
    "enable_ledger",
    "get_ledger",
    "MetricRule",
    "RegressionDetector",
    "RegressionReport",
    "DEFAULT_BENCH_RULES",
    # persistence
    "save_dataset",
    "load_dataset",
    "save_model",
    "load_model",
    # scenario store
    "ScenarioSource",
    "ensure_dataset",
    "ShardedScenarioStore",
    "StoreWriter",
    "StoreError",
    "StoreCorruptionError",
    "DEFAULT_SHARD_SIZE",
    "open_store",
    "write_store",
    "compact_store",
    # perfmodel / batched solver
    "MachinePerf",
    "RunningInstance",
    "ColocationPerformance",
    "ScenarioBatch",
    "SOLVER_MODES",
    "MEMO_MODES",
    "SolveMemo",
    "resolve_memo",
    "solve_colocation",
    "solve_colocation_batch",
    "solve_colocation_many",
    # workloads
    "HP_JOBS",
    "HP_JOB_NAMES",
    "LP_JOBS",
    "LP_JOB_NAMES",
    "get_job",
]
