"""FLARE: fast, light-weight, accurate datacenter performance evaluation.

Reproduction of *Fast, Light-weight, and Accurate Performance Evaluation
using Representative Datacenter Behaviors* (Middleware '23).  The library
simulates a multi-tenant datacenter, profiles every job co-location
scenario it exhibits, extracts a small set of representative scenarios via
PCA + clustering, and evaluates shape-preserving features (cache sizing,
DVFS, SMT, software changes) on just those representatives.

Quickstart::

    from repro import (
        DatacenterConfig, run_simulation, Flare, FEATURE_1_CACHE,
    )

    result = run_simulation(DatacenterConfig(seed=1))
    flare = Flare().fit(result.dataset)
    estimate = flare.evaluate(FEATURE_1_CACHE)
    print(f"estimated MIPS reduction: {estimate.reduction_pct:.1f}%")
"""

from .baselines import (
    DatacenterTruth,
    LoadTestResult,
    SamplingEvaluation,
    evaluate_by_sampling,
    evaluate_full_datacenter,
    evaluate_job_by_sampling,
    load_test_all_jobs,
    load_test_job,
    sampling_cost_curve,
)
from .cluster import (
    BASELINE,
    DEFAULT_SHAPE,
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    FEATURE_3_SMT,
    PAPER_FEATURES,
    SMALL_SHAPE,
    DatacenterConfig,
    Feature,
    MachineShape,
    ScenarioDataset,
    SimulationResult,
    SubmissionConfig,
    run_simulation,
)
from .core import (
    AnalyzerConfig,
    FeatureImpactEstimate,
    FleetEvaluator,
    FleetSegment,
    Flare,
    FlareConfig,
    Replayer,
)
from .telemetry import Database, ProfiledDataset, Profiler
from .workloads import HP_JOB_NAMES, HP_JOBS, LP_JOB_NAMES, LP_JOBS, get_job

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation
    "DatacenterConfig",
    "SubmissionConfig",
    "SimulationResult",
    "run_simulation",
    "MachineShape",
    "DEFAULT_SHAPE",
    "SMALL_SHAPE",
    "ScenarioDataset",
    # features
    "Feature",
    "BASELINE",
    "FEATURE_1_CACHE",
    "FEATURE_2_DVFS",
    "FEATURE_3_SMT",
    "PAPER_FEATURES",
    # FLARE
    "Flare",
    "FlareConfig",
    "AnalyzerConfig",
    "FeatureImpactEstimate",
    "Replayer",
    "FleetEvaluator",
    "FleetSegment",
    "Profiler",
    "ProfiledDataset",
    "Database",
    # baselines
    "DatacenterTruth",
    "evaluate_full_datacenter",
    "SamplingEvaluation",
    "evaluate_by_sampling",
    "evaluate_job_by_sampling",
    "sampling_cost_curve",
    "LoadTestResult",
    "load_test_job",
    "load_test_all_jobs",
    # workloads
    "HP_JOBS",
    "HP_JOB_NAMES",
    "LP_JOBS",
    "LP_JOB_NAMES",
    "get_job",
]
