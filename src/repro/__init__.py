"""FLARE: fast, light-weight, accurate datacenter performance evaluation.

Reproduction of *Fast, Light-weight, and Accurate Performance Evaluation
using Representative Datacenter Behaviors* (Middleware '23).  The library
simulates a multi-tenant datacenter, profiles every job co-location
scenario it exhibits, extracts a small set of representative scenarios via
PCA + clustering, and evaluates shape-preserving features (cache sizing,
DVFS, SMT, software changes) on just those representatives.

Quickstart::

    from repro.api import (
        DatacenterConfig, run_simulation, Flare, FEATURE_1_CACHE,
    )

    result = run_simulation(DatacenterConfig(seed=1))
    flare = Flare().fit(result.dataset)
    estimate = flare.evaluate(FEATURE_1_CACHE)
    print(f"estimated MIPS reduction: {estimate.reduction_pct:.1f}%")

:mod:`repro.api` is the supported entry-point surface.  The historical
top-level re-exports (``from repro import Flare``) keep working through
lazy shims but emit a ``DeprecationWarning``; new code should import
from ``repro.api``.
"""

from __future__ import annotations

import importlib
import warnings

__version__ = "1.1.0"

#: Names served (with a DeprecationWarning) from :mod:`repro.api`.
_API_SHIMS = frozenset(
    {
        # simulation
        "DatacenterConfig",
        "SubmissionConfig",
        "SimulationResult",
        "run_simulation",
        "MachineShape",
        "DEFAULT_SHAPE",
        "SMALL_SHAPE",
        "ScenarioDataset",
        # features
        "Feature",
        "BASELINE",
        "FEATURE_1_CACHE",
        "FEATURE_2_DVFS",
        "FEATURE_3_SMT",
        "PAPER_FEATURES",
        # FLARE
        "Flare",
        "FlareConfig",
        "AnalyzerConfig",
        "FeatureImpactEstimate",
        "Replayer",
        "FleetEvaluator",
        "FleetSegment",
        "Profiler",
        "ProfiledDataset",
        "Database",
        # baselines
        "DatacenterTruth",
        "evaluate_full_datacenter",
        "SamplingEvaluation",
        "evaluate_by_sampling",
        "evaluate_job_by_sampling",
        "sampling_cost_curve",
        "LoadTestResult",
        "load_test_job",
        "load_test_all_jobs",
        # workloads
        "HP_JOBS",
        "HP_JOB_NAMES",
        "LP_JOBS",
        "LP_JOB_NAMES",
        "get_job",
    }
)

_SUBMODULES = frozenset(
    {
        "api",
        "baselines",
        "cli",
        "cluster",
        "core",
        "experiments",
        "io",
        "obs",
        "perfmodel",
        "reporting",
        "runtime",
        "stats",
        "telemetry",
        "workloads",
    }
)

__all__ = ["__version__", *sorted(_API_SHIMS)]


def __getattr__(name: str):
    if name in _API_SHIMS:
        warnings.warn(
            f"importing {name!r} from the top-level 'repro' package is "
            f"deprecated; use 'from repro.api import {name}'",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import api

        return getattr(api, name)
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(__all__) | _SUBMODULES)
