"""FLARE: fast, light-weight, accurate datacenter performance evaluation.

Reproduction of *Fast, Light-weight, and Accurate Performance Evaluation
using Representative Datacenter Behaviors* (Middleware '23).  The library
simulates a multi-tenant datacenter, profiles every job co-location
scenario it exhibits, extracts a small set of representative scenarios via
PCA + clustering, and evaluates shape-preserving features (cache sizing,
DVFS, SMT, software changes) on just those representatives.

Quickstart::

    from repro.api import (
        DatacenterConfig, run_simulation, Flare, FEATURE_1_CACHE,
    )

    result = run_simulation(DatacenterConfig(seed=1))
    flare = Flare().fit(result.dataset)
    estimate = flare.evaluate(FEATURE_1_CACHE)
    print(f"estimated MIPS reduction: {estimate.reduction_pct:.1f}%")

:mod:`repro.api` is the single supported entry-point surface.  The
historical top-level re-exports (``from repro import Flare``) were
deprecated in 1.1 and removed in 1.2; importing a class from ``repro``
directly now raises :class:`AttributeError` naming the ``repro.api``
replacement.
"""

from __future__ import annotations

import importlib

__version__ = "1.2.0"

_SUBMODULES = frozenset(
    {
        "api",
        "baselines",
        "cli",
        "cluster",
        "core",
        "experiments",
        "io",
        "obs",
        "perfmodel",
        "reporting",
        "runtime",
        "stats",
        "telemetry",
        "workloads",
    }
)

__all__ = ["__version__"]


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    from . import api

    if name in getattr(api, "__all__", ()):
        raise AttributeError(
            f"'repro.{name}' was removed in 1.2; import it from the "
            f"stable facade instead: 'from repro.api import {name}'"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(__all__) | _SUBMODULES)
