"""Job catalogue: CloudSuite-derived HP services + SPEC-derived LP batch.

Mirrors Table 3 of the paper.  ``all_jobs()`` is the flat registry the
submission system and the Replayer both draw from — the same signature
object is used when a job runs in the simulated datacenter and when it is
reconstructed on the testbed, just as the paper replays the recorded
container commands.
"""

from ..perfmodel.signatures import JobSignature
from .cloudsuite import HP_JOB_NAMES, HP_JOBS, hp_job
from .spec import LP_JOB_NAMES, LP_JOBS, lp_job

__all__ = [
    "HP_JOBS",
    "HP_JOB_NAMES",
    "hp_job",
    "LP_JOBS",
    "LP_JOB_NAMES",
    "lp_job",
    "all_jobs",
    "get_job",
]


def all_jobs() -> dict[str, JobSignature]:
    """Full registry of HP + LP job signatures, keyed by job name."""
    registry: dict[str, JobSignature] = {}
    registry.update(HP_JOBS)
    registry.update(LP_JOBS)
    return registry


def get_job(name: str) -> JobSignature:
    """Look up any job (HP or LP) by name."""
    if name in HP_JOBS:
        return HP_JOBS[name]
    if name in LP_JOBS:
        return LP_JOBS[name]
    raise KeyError(
        f"unknown job {name!r}; expected one of "
        f"{sorted(HP_JOBS) + sorted(LP_JOBS)}"
    )
