"""High-priority (HP) job signatures, modelled on CloudSuite (Table 3).

The paper runs eight CloudSuite services as HP jobs.  Each signature below
encodes the published first-order characterisation of that service
(Ferdman et al., ASPLOS'12 "Clearing the Clouds"; Palit et al., ISPASS'16):
scale-out services are frontend-bound with large instruction footprints and
low IPC; analytics jobs are memory-bound; caching/streaming are network
heavy with modest core demand.  Working-set parameters are tuned so that
LLC sensitivity varies widely across jobs — the property that makes
Feature 1 (cache sizing) interesting (paper Figures 2–3).

Every instance is a 4-vCPU container, matching the paper's resource
management policy (§5.1).
"""

from __future__ import annotations

from ..perfmodel.mrc import MissRatioCurve
from ..perfmodel.signatures import JobSignature, Priority

__all__ = ["HP_JOBS", "HP_JOB_NAMES", "hp_job"]


def _hp(
    name: str,
    description: str,
    *,
    dram_gb: float,
    base_cpi: float,
    frontend_cpi: float,
    branch_mpki: float,
    l1i_apki: float,
    l1d_apki: float,
    l2_apki: float,
    llc_apki: float,
    mrc: MissRatioCurve,
    mem_blocking_factor: float,
    write_fraction: float,
    active_fraction: float,
    network_bytes_per_instr: float = 0.0,
    disk_bytes_per_instr: float = 0.0,
) -> JobSignature:
    return JobSignature(
        name=name,
        description=description,
        priority=Priority.HIGH,
        vcpus=4,
        dram_gb=dram_gb,
        base_cpi=base_cpi,
        frontend_cpi=frontend_cpi,
        branch_mpki=branch_mpki,
        l1i_apki=l1i_apki,
        l1d_apki=l1d_apki,
        l2_apki=l2_apki,
        llc_apki=llc_apki,
        mrc=mrc,
        mem_blocking_factor=mem_blocking_factor,
        write_fraction=write_fraction,
        active_fraction=active_fraction,
        network_bytes_per_instr=network_bytes_per_instr,
        disk_bytes_per_instr=disk_bytes_per_instr,
    )


#: The eight HP services of Table 3, keyed by the paper's job codes.
HP_JOBS: dict[str, JobSignature] = {
    # Hadoop + Mahout naive-Bayes training: batch, steady map/reduce
    # churn over large inputs; disk-fed, moderately memory-bound.
    "DA": _hp(
        "DA",
        "Data Analytics — Apache Hadoop with Mahout, TrainNB phase",
        dram_gb=16.0,
        base_cpi=0.62,
        frontend_cpi=0.22,
        branch_mpki=5.0,
        l1i_apki=310.0,
        l1d_apki=360.0,
        l2_apki=48.0,
        llc_apki=14.0,
        mrc=MissRatioCurve(half_capacity_mb=9.0, shape=1.1, floor=0.10),
        mem_blocking_factor=0.45,
        write_fraction=0.35,
        active_fraction=0.92,
        network_bytes_per_instr=0.004,
        disk_bytes_per_instr=0.012,
    ),
    # memcached: tiny request kernels, network-dominated, data set far
    # exceeds any LLC so misses are mostly compulsory.
    "DC": _hp(
        "DC",
        "Data Caching — memcached, 4 threads, 4 GB working set, 100K QPS",
        dram_gb=6.0,
        base_cpi=0.55,
        frontend_cpi=0.30,
        branch_mpki=7.5,
        l1i_apki=330.0,
        l1d_apki=340.0,
        l2_apki=40.0,
        llc_apki=10.0,
        mrc=MissRatioCurve(half_capacity_mb=3.0, shape=0.7, floor=0.38),
        mem_blocking_factor=0.70,
        write_fraction=0.20,
        active_fraction=0.80,
        network_bytes_per_instr=0.030,
    ),
    # Cassandra: Java heap churn, large instruction footprint, disk +
    # memory bound with a sizeable cacheable hot set.
    "DS": _hp(
        "DS",
        "Data Serving — Apache Cassandra, 20 threads, 16 GB DRAM",
        dram_gb=16.0,
        base_cpi=0.70,
        frontend_cpi=0.42,
        branch_mpki=9.0,
        l1i_apki=380.0,
        l1d_apki=370.0,
        l2_apki=55.0,
        llc_apki=16.0,
        mrc=MissRatioCurve(half_capacity_mb=12.0, shape=1.0, floor=0.14),
        mem_blocking_factor=0.60,
        write_fraction=0.40,
        active_fraction=0.70,
        network_bytes_per_instr=0.010,
        disk_bytes_per_instr=0.020,
    ),
    # Spark graph analytics (PageRank-style): pointer chasing over edge
    # lists — the most latency-bound HP job.
    "GA": _hp(
        "GA",
        "Graph Analytics — Apache Spark, 4 vCPU / 4 GB executor",
        dram_gb=8.0,
        base_cpi=0.58,
        frontend_cpi=0.12,
        branch_mpki=6.0,
        l1i_apki=240.0,
        l1d_apki=400.0,
        l2_apki=70.0,
        llc_apki=24.0,
        mrc=MissRatioCurve(half_capacity_mb=16.0, shape=0.9, floor=0.22),
        mem_blocking_factor=0.80,
        write_fraction=0.25,
        active_fraction=0.95,
    ),
    # Spark in-memory analytics (ALS recommendation): dense linear algebra
    # mixed with shuffle phases; cache-friendly relative to GA.
    "IA": _hp(
        "IA",
        "In-memory Analytics — Apache Spark, 4 vCPU / 4 GB executor",
        dram_gb=8.0,
        base_cpi=0.48,
        frontend_cpi=0.10,
        branch_mpki=3.5,
        l1i_apki=220.0,
        l1d_apki=420.0,
        l2_apki=52.0,
        llc_apki=15.0,
        mrc=MissRatioCurve(half_capacity_mb=10.0, shape=1.3, floor=0.08),
        mem_blocking_factor=0.40,
        write_fraction=0.30,
        active_fraction=0.95,
    ),
    # Nginx video streaming: sendfile loops, almost pure sequential I/O;
    # little cache reuse but also little dependence on it.
    "MS": _hp(
        "MS",
        "Media Streaming — Nginx, 4 threads, 50 connections",
        dram_gb=6.0,
        base_cpi=0.52,
        frontend_cpi=0.18,
        branch_mpki=4.0,
        l1i_apki=280.0,
        l1d_apki=330.0,
        l2_apki=35.0,
        llc_apki=12.0,
        mrc=MissRatioCurve(half_capacity_mb=2.0, shape=0.6, floor=0.55),
        mem_blocking_factor=0.25,
        write_fraction=0.15,
        active_fraction=0.78,
        network_bytes_per_instr=0.060,
        disk_bytes_per_instr=0.025,
    ),
    # Solr web search: index traversal with a hot posting-list set that
    # rewards LLC capacity — the classic cache-sensitive service.
    "WSC": _hp(
        "WSC",
        "Web Search — Apache Solr, 12 GB index, Tomcat-managed threads",
        dram_gb=12.0,
        base_cpi=0.66,
        frontend_cpi=0.38,
        branch_mpki=8.0,
        l1i_apki=360.0,
        l1d_apki=350.0,
        l2_apki=50.0,
        llc_apki=13.0,
        mrc=MissRatioCurve(half_capacity_mb=14.0, shape=1.4, floor=0.06),
        mem_blocking_factor=0.65,
        write_fraction=0.20,
        active_fraction=0.65,
        network_bytes_per_instr=0.006,
    ),
    # LAMP web serving: PHP interpretation is branchy and frontend-bound
    # with modest data-side demand.
    "WSV": _hp(
        "WSV",
        "Web Serving — Nginx + PHP + MySQL + memcached",
        dram_gb=8.0,
        base_cpi=0.72,
        frontend_cpi=0.48,
        branch_mpki=11.0,
        l1i_apki=400.0,
        l1d_apki=340.0,
        l2_apki=45.0,
        llc_apki=9.0,
        mrc=MissRatioCurve(half_capacity_mb=6.0, shape=1.0, floor=0.12),
        mem_blocking_factor=0.55,
        write_fraction=0.30,
        active_fraction=0.72,
        network_bytes_per_instr=0.012,
        disk_bytes_per_instr=0.004,
    ),
}

#: Job codes in the order the paper's figures list them.
HP_JOB_NAMES: tuple[str, ...] = tuple(HP_JOBS)


def hp_job(name: str) -> JobSignature:
    """Look up an HP job signature by its paper code (e.g. ``"WSC"``)."""
    try:
        return HP_JOBS[name]
    except KeyError:
        raise KeyError(
            f"unknown HP job {name!r}; expected one of {sorted(HP_JOBS)}"
        ) from None
