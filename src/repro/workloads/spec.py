"""Low-priority (LP) batch job signatures, modelled on SPEC CPU2006.

The paper fills free machine quota with LP containers, each running four
copies of one SPEC CPU2006 benchmark to consume 4 vCPUs (Table 3).  The
six benchmarks span the compute-bound ↔ memory-bound spectrum, which is
what gives LP jobs their interference diversity.  CPI/MPKI personalities
follow the published SPEC characterisations (Phansalkar et al., ISCA'07;
Jaleel's memory-behaviour tables).
"""

from __future__ import annotations

from ..perfmodel.mrc import MissRatioCurve
from ..perfmodel.signatures import JobSignature, Priority

__all__ = ["LP_JOBS", "LP_JOB_NAMES", "lp_job"]


def _lp(
    name: str,
    description: str,
    *,
    base_cpi: float,
    frontend_cpi: float,
    branch_mpki: float,
    l1i_apki: float,
    l1d_apki: float,
    l2_apki: float,
    llc_apki: float,
    mrc: MissRatioCurve,
    mem_blocking_factor: float,
    write_fraction: float = 0.25,
) -> JobSignature:
    # LP containers crunch continuously: active_fraction 1.0, no I/O.
    return JobSignature(
        name=name,
        description=description,
        priority=Priority.LOW,
        vcpus=4,
        dram_gb=4.0,
        base_cpi=base_cpi,
        frontend_cpi=frontend_cpi,
        branch_mpki=branch_mpki,
        l1i_apki=l1i_apki,
        l1d_apki=l1d_apki,
        l2_apki=l2_apki,
        llc_apki=llc_apki,
        mrc=mrc,
        mem_blocking_factor=mem_blocking_factor,
        write_fraction=write_fraction,
        active_fraction=1.0,
        spin_fraction=0.0,
    )


#: The six SPEC CPU2006 LP jobs of Table 3 (4 copies per container).
LP_JOBS: dict[str, JobSignature] = {
    # Perl interpreter: branchy, big code footprint, caches well.
    "perlbench": _lp(
        "perlbench",
        "400.perlbench — Perl interpreter (4 copies)",
        base_cpi=0.60,
        frontend_cpi=0.25,
        branch_mpki=10.0,
        l1i_apki=350.0,
        l1d_apki=380.0,
        l2_apki=30.0,
        llc_apki=3.0,
        mrc=MissRatioCurve(half_capacity_mb=2.0, shape=1.5, floor=0.04),
        mem_blocking_factor=0.50,
    ),
    # Chess search: almost pure integer compute, negligible LLC traffic.
    "sjeng": _lp(
        "sjeng",
        "458.sjeng — chess AI (4 copies)",
        base_cpi=0.55,
        frontend_cpi=0.10,
        branch_mpki=12.0,
        l1i_apki=260.0,
        l1d_apki=300.0,
        l2_apki=18.0,
        llc_apki=1.5,
        mrc=MissRatioCurve(half_capacity_mb=1.0, shape=1.5, floor=0.05),
        mem_blocking_factor=0.40,
    ),
    # Quantum simulation: pure streaming over a huge vector — saturates
    # bandwidth, but prefetchable so little latency sensitivity.
    "libquantum": _lp(
        "libquantum",
        "462.libquantum — quantum computer simulation (4 copies)",
        base_cpi=0.45,
        frontend_cpi=0.05,
        branch_mpki=1.5,
        l1i_apki=150.0,
        l1d_apki=430.0,
        l2_apki=90.0,
        llc_apki=35.0,
        mrc=MissRatioCurve(half_capacity_mb=1.5, shape=0.5, floor=0.80),
        mem_blocking_factor=0.20,
        write_fraction=0.45,
    ),
    # XML transformation: pointer-rich tree walks with a mid-size hot set.
    "xalancbmk": _lp(
        "xalancbmk",
        "483.xalancbmk — XSLT processor (4 copies)",
        base_cpi=0.58,
        frontend_cpi=0.20,
        branch_mpki=9.0,
        l1i_apki=320.0,
        l1d_apki=420.0,
        l2_apki=60.0,
        llc_apki=12.0,
        mrc=MissRatioCurve(half_capacity_mb=7.0, shape=1.2, floor=0.10),
        mem_blocking_factor=0.60,
    ),
    # Discrete-event network simulation: heap-allocated event graph,
    # latency-sensitive pointer chasing.
    "omnetpp": _lp(
        "omnetpp",
        "471.omnetpp — discrete event simulation (4 copies)",
        base_cpi=0.62,
        frontend_cpi=0.15,
        branch_mpki=8.0,
        l1i_apki=300.0,
        l1d_apki=410.0,
        l2_apki=65.0,
        llc_apki=18.0,
        mrc=MissRatioCurve(half_capacity_mb=10.0, shape=0.9, floor=0.18),
        mem_blocking_factor=0.75,
    ),
    # Vehicle scheduling: the canonical memory-bound SPEC benchmark —
    # sparse network traversal, very high MPKI, strongly latency-bound.
    "mcf": _lp(
        "mcf",
        "429.mcf — combinatorial optimisation (4 copies)",
        base_cpi=0.50,
        frontend_cpi=0.08,
        branch_mpki=11.0,
        l1i_apki=180.0,
        l1d_apki=450.0,
        l2_apki=110.0,
        llc_apki=30.0,
        mrc=MissRatioCurve(half_capacity_mb=20.0, shape=0.8, floor=0.30),
        mem_blocking_factor=0.85,
        write_fraction=0.30,
    ),
}

#: LP job names in Table 3 order.
LP_JOB_NAMES: tuple[str, ...] = tuple(LP_JOBS)


def lp_job(name: str) -> JobSignature:
    """Look up an LP job signature by SPEC short name (e.g. ``"mcf"``)."""
    try:
        return LP_JOBS[name]
    except KeyError:
        raise KeyError(
            f"unknown LP job {name!r}; expected one of {sorted(LP_JOBS)}"
        ) from None
