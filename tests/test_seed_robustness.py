"""Seed robustness: the headline result must not be single-seed luck.

Re-runs the full simulate → fit → evaluate → compare-to-truth loop for
several independent datacenter seeds at reduced scale and asserts that
FLARE's accuracy advantage holds for every one of them.
"""

import pytest

from repro.api import (
    AnalyzerConfig,
    DatacenterConfig,
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    Flare,
    FlareConfig,
    evaluate_full_datacenter,
    run_simulation,
)

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module", params=SEEDS)
def fitted_world(request):
    seed = request.param
    sim = run_simulation(
        DatacenterConfig(seed=seed, target_unique_scenarios=150)
    )
    flare = Flare(
        FlareConfig(analyzer=AnalyzerConfig(n_clusters=8, kmeans_restarts=4))
    ).fit(sim.dataset)
    return seed, sim, flare


class TestSeedRobustness:
    @pytest.mark.parametrize("feature", [FEATURE_1_CACHE, FEATURE_2_DVFS])
    def test_accuracy_holds_across_seeds(self, fitted_world, feature):
        seed, sim, flare = fitted_world
        truth = evaluate_full_datacenter(sim.dataset, feature)
        error = abs(
            flare.evaluate(feature).reduction_pct
            - truth.overall_reduction_pct
        )
        assert error < 1.5, f"seed {seed}: error {error:.2f}pp"

    def test_cost_reduction_holds_across_seeds(self, fitted_world):
        seed, sim, flare = fitted_world
        estimate = flare.evaluate(FEATURE_1_CACHE)
        hp_scenarios = sum(
            1 for s in sim.dataset.scenarios if s.hp_instances
        )
        assert hp_scenarios / estimate.evaluation_cost > 10.0

    def test_structure_not_degenerate(self, fitted_world):
        seed, sim, flare = fitted_world
        weights = flare.analysis.cluster_weights
        # No cluster swallows the datacenter; none are weightless-empty.
        assert weights.max() < 0.6
        assert (weights > 0.0).sum() >= 6
