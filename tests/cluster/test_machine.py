"""Unit tests for machine shapes and runtime machine state."""

import pytest

from repro.cluster import DEFAULT_SHAPE, SMALL_SHAPE, Machine, MachineShape
from repro.cluster.job import JobInstance, JobRequest
from repro.perfmodel import MachinePerf
from repro.workloads import HP_JOBS


def make_instance(job="WSC", machine_id=0, load=1.0, duration=3600.0):
    return JobInstance(
        request=JobRequest(
            signature=HP_JOBS[job], load=load, duration_s=duration
        ),
        machine_id=machine_id,
        start_time=0.0,
    )


class TestShapes:
    def test_default_shape_matches_table2(self):
        assert DEFAULT_SHAPE.vcpus == 48
        assert DEFAULT_SHAPE.dram_gb == 256.0
        assert DEFAULT_SHAPE.perf.llc_mb == 60.0
        assert DEFAULT_SHAPE.perf.max_freq_ghz == 2.9

    def test_small_shape_matches_table5(self):
        assert SMALL_SHAPE.vcpus == 32
        assert SMALL_SHAPE.dram_gb == 128.0
        assert SMALL_SHAPE.perf.llc_mb == 40.0
        assert SMALL_SHAPE.vcpus < DEFAULT_SHAPE.vcpus

    def test_shape_thread_consistency_enforced(self):
        with pytest.raises(ValueError, match="hardware threads"):
            MachineShape(
                name="bad",
                vcpus=64,
                dram_gb=128.0,
                perf=MachinePerf(physical_cores=24),
            )

    def test_invalid_shape_params(self):
        with pytest.raises(ValueError):
            MachineShape(name="x", vcpus=0, dram_gb=1.0, perf=MachinePerf())
        with pytest.raises(ValueError):
            MachineShape(name="x", vcpus=48, dram_gb=0.0, perf=MachinePerf())


class TestMachineState:
    def test_empty_machine(self):
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        assert m.used_vcpus == 0
        assert m.free_vcpus == 48
        assert m.vcpu_utilization == 0.0

    def test_place_updates_accounting(self):
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        m.place(make_instance("WSC"))
        assert m.used_vcpus == 4
        assert m.used_dram_gb == HP_JOBS["WSC"].dram_gb
        assert m.vcpu_utilization == pytest.approx(4 / 48)

    def test_remove_restores_capacity(self):
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        inst = make_instance("GA")
        m.place(inst)
        m.remove(inst)
        assert m.used_vcpus == 0

    def test_remove_unknown_raises(self):
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        with pytest.raises(ValueError, match="not on machine"):
            m.remove(make_instance())

    def test_no_vcpu_overcommit(self):
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        for _ in range(12):  # 48 vCPUs
            m.place(make_instance("GA"))
        assert m.free_vcpus == 0
        assert not m.fits(4, 1.0)
        with pytest.raises(ValueError, match="cannot fit"):
            m.place(make_instance("GA"))

    def test_no_dram_overcommit(self):
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        # DS requests 16 GB; 16 instances would need 256 GB and 64 vCPUs,
        # so build a DRAM-bound case with 12 vCPU-fitting DS requests.
        for _ in range(12):
            m.place(make_instance("DS"))  # 192 GB used, 48 vCPUs
        assert not m.fits(4, 100.0)
        assert m.fits(0, 10.0) is False or m.free_vcpus == 0

    def test_fits_boundary_exact(self):
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        assert m.fits(48, 256.0)
        assert not m.fits(49, 1.0)
        assert not m.fits(1, 257.0)

    def test_instance_ids_unique(self):
        a, b = make_instance(), make_instance()
        assert a.instance_id != b.instance_id


class TestJobRequest:
    def test_end_time(self):
        inst = make_instance(duration=1800.0)
        assert inst.end_time == pytest.approx(inst.start_time + 1800.0)

    def test_job_name(self):
        assert make_instance("DC").job_name == "DC"

    def test_invalid_request(self):
        with pytest.raises(ValueError):
            JobRequest(signature=HP_JOBS["DC"], load=0.0, duration_s=10.0)
        with pytest.raises(ValueError):
            JobRequest(signature=HP_JOBS["DC"], load=1.0, duration_s=0.0)
