"""Integration-level tests for the datacenter simulation."""

import pytest

from repro.cluster import (
    DatacenterConfig,
    BestFitPackingScheduler,
    SubmissionConfig,
    run_simulation,
)
from repro.cluster.machine import SMALL_SHAPE


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        cfg = DatacenterConfig(seed=7, target_unique_scenarios=40)
        a = run_simulation(cfg)
        b = run_simulation(cfg)
        assert [s.key for s in a.dataset.scenarios] == [
            s.key for s in b.dataset.scenarios
        ]
        assert a.stats.n_submitted == b.stats.n_submitted

    def test_different_seed_different_dataset(self):
        a = run_simulation(DatacenterConfig(seed=1, target_unique_scenarios=40))
        b = run_simulation(DatacenterConfig(seed=2, target_unique_scenarios=40))
        assert [s.key for s in a.dataset.scenarios] != [
            s.key for s in b.dataset.scenarios
        ]


class TestTargets:
    def test_stops_at_target_unique(self):
        result = run_simulation(
            DatacenterConfig(seed=3, target_unique_scenarios=50)
        )
        assert result.n_unique_scenarios == 50

    def test_runs_to_horizon_without_target(self):
        result = run_simulation(
            DatacenterConfig(
                seed=3,
                target_unique_scenarios=None,
                max_days=0.05,
                submission=SubmissionConfig(arrival_rate_per_hour=30.0),
            )
        )
        assert result.stats.sim_time_s == pytest.approx(0.05 * 86400.0)
        assert result.n_unique_scenarios > 0

    def test_paper_scale_reaches_895(self):
        result = run_simulation(DatacenterConfig(seed=2023))
        assert result.n_unique_scenarios == 895


class TestAccounting:
    def test_submissions_balance(self):
        result = run_simulation(
            DatacenterConfig(seed=4, target_unique_scenarios=60)
        )
        stats = result.stats
        assert stats.n_submitted == stats.n_placed + stats.n_denied
        assert stats.n_completed <= stats.n_placed

    def test_saturation_produces_denials(self):
        # One machine + very high arrival rate must deny requests.
        result = run_simulation(
            DatacenterConfig(
                seed=5,
                n_machines=1,
                target_unique_scenarios=None,
                max_days=0.2,
                submission=SubmissionConfig(arrival_rate_per_hour=400.0),
            )
        )
        assert result.stats.n_denied > 0
        assert 0.0 < result.stats.denial_rate < 1.0

    def test_scenarios_respect_machine_capacity(self):
        result = run_simulation(
            DatacenterConfig(seed=6, target_unique_scenarios=80)
        )
        shape = result.dataset.shape
        for scenario in result.dataset.scenarios:
            assert scenario.total_vcpus <= shape.vcpus
            dram = sum(i.signature.dram_gb for i in scenario.instances)
            assert dram <= shape.dram_gb + 1e-9

    def test_weights_sum_to_one(self):
        result = run_simulation(
            DatacenterConfig(seed=6, target_unique_scenarios=80)
        )
        assert result.dataset.weights().sum() == pytest.approx(1.0)


class TestVariants:
    def test_small_shape_simulation(self):
        result = run_simulation(
            DatacenterConfig(
                shape=SMALL_SHAPE, seed=8, target_unique_scenarios=40
            )
        )
        assert result.dataset.shape is SMALL_SHAPE
        for scenario in result.dataset.scenarios:
            assert scenario.total_vcpus <= SMALL_SHAPE.vcpus

    def test_alternative_scheduler_changes_mixes(self):
        cfg = DatacenterConfig(seed=9, target_unique_scenarios=60)
        default = run_simulation(cfg)
        packed = run_simulation(cfg, scheduler=BestFitPackingScheduler())
        assert {s.key for s in default.dataset.scenarios} != {
            s.key for s in packed.dataset.scenarios
        }

    def test_packing_scheduler_reaches_higher_occupancy_sooner(self):
        cfg = DatacenterConfig(seed=10, target_unique_scenarios=60)
        default = run_simulation(cfg)
        packed = run_simulation(cfg, scheduler=BestFitPackingScheduler())
        mean_occ = lambda r: sum(
            s.occupancy(r.dataset.shape) for s in r.dataset.scenarios
        ) / len(r.dataset)
        assert mean_occ(packed) > mean_occ(default) * 0.8


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_machines": 0},
            {"max_days": 0.0},
            {"target_unique_scenarios": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            DatacenterConfig(**kwargs)
