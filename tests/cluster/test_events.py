"""Unit tests for the discrete-event engine."""

import pytest

from repro.cluster import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        hits = []
        q.schedule(5.0, lambda: hits.append("late"))
        q.schedule(1.0, lambda: hits.append("early"))
        q.run()
        assert hits == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        q = EventQueue()
        hits = []
        for i in range(5):
            q.schedule(3.0, lambda i=i: hits.append(i))
        q.run()
        assert hits == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule(7.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [7.5]
        assert q.now == 7.5

    def test_schedule_after(self):
        q = EventQueue()
        hits = []
        q.schedule(2.0, lambda: q.schedule_after(3.0, lambda: hits.append(q.now)))
        q.run()
        assert hits == [5.0]

    def test_schedule_in_past_raises(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError, match="before current time"):
            q.schedule(1.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        hits = []
        ev = q.schedule(1.0, lambda: hits.append("x"))
        ev.cancel()
        q.run()
        assert hits == []

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1


class TestRun:
    def test_until_stops_clock_at_horizon(self):
        q = EventQueue()
        hits = []
        q.schedule(1.0, lambda: hits.append(1))
        q.schedule(10.0, lambda: hits.append(10))
        q.run(until=5.0)
        assert hits == [1]
        assert q.now == 5.0

    def test_until_then_resume(self):
        q = EventQueue()
        hits = []
        q.schedule(10.0, lambda: hits.append(10))
        q.run(until=5.0)
        q.run()
        assert hits == [10]

    def test_stop_predicate_halts_early(self):
        q = EventQueue()
        hits = []
        for t in range(1, 6):
            q.schedule(float(t), lambda t=t: hits.append(t))
        q.run(stop=lambda: len(hits) >= 2)
        assert hits == [1, 2]

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_events_scheduled_during_run_fire(self):
        q = EventQueue()
        hits = []

        def chain(n):
            hits.append(n)
            if n < 3:
                q.schedule_after(1.0, lambda: chain(n + 1))

        q.schedule(0.0, lambda: chain(0))
        q.run()
        assert hits == [0, 1, 2, 3]

    def test_run_until_advances_clock_with_no_events(self):
        q = EventQueue()
        q.run(until=42.0)
        assert q.now == 42.0
