"""Unit tests for trace-based dataset ingestion."""

import pytest

from repro.cluster import (
    DEFAULT_SHAPE,
    TraceEvent,
    TraceEventType,
    dataset_from_trace,
)

START = TraceEventType.START
STOP = TraceEventType.STOP


def ev(t, machine, cid, kind, job="", load=1.0):
    return TraceEvent(
        time_s=t,
        machine_id=machine,
        container_id=cid,
        event=kind,
        job=job,
        load=load,
    )


class TestBasicIngestion:
    def test_single_container_lifecycle(self):
        dataset = dataset_from_trace(
            [
                ev(0.0, 0, "c1", START, "WSC", 0.8),
                ev(100.0, 0, "c1", STOP),
            ],
            DEFAULT_SHAPE,
        )
        assert len(dataset) == 1
        scenario = dataset[0]
        assert scenario.key == (("WSC", 1),)
        assert scenario.total_duration_s == pytest.approx(100.0)
        assert scenario.instances[0].load == pytest.approx(0.8)

    def test_colocation_intervals(self):
        dataset = dataset_from_trace(
            [
                ev(0.0, 0, "a", START, "WSC"),
                ev(50.0, 0, "b", START, "GA"),
                ev(150.0, 0, "a", STOP),
                ev(300.0, 0, "b", STOP),
            ],
            DEFAULT_SHAPE,
        )
        durations = {s.key: s.total_duration_s for s in dataset.scenarios}
        assert durations[(("WSC", 1),)] == pytest.approx(50.0)
        assert durations[(("GA", 1), ("WSC", 1))] == pytest.approx(100.0)
        assert durations[(("GA", 1),)] == pytest.approx(150.0)

    def test_machines_are_independent(self):
        dataset = dataset_from_trace(
            [
                ev(0.0, 0, "a", START, "WSC"),
                ev(0.0, 1, "b", START, "WSC"),
                ev(10.0, 0, "a", STOP),
                ev(30.0, 1, "b", STOP),
            ],
            DEFAULT_SHAPE,
        )
        # Same mix on both machines -> one scenario, summed durations.
        assert len(dataset) == 1
        assert dataset[0].total_duration_s == pytest.approx(40.0)
        assert dataset[0].n_occurrences == 2

    def test_open_containers_closed_at_horizon(self):
        dataset = dataset_from_trace(
            [ev(0.0, 0, "a", START, "DC")],
            DEFAULT_SHAPE,
            end_time_s=500.0,
        )
        assert dataset[0].total_duration_s == pytest.approx(500.0)

    def test_custom_catalogue(self):
        import dataclasses

        from repro.workloads import HP_JOBS

        custom = dataclasses.replace(HP_JOBS["WSC"], name="XJOB")
        dataset = dataset_from_trace(
            [ev(0.0, 0, "a", START, "XJOB"), ev(5.0, 0, "a", STOP)],
            DEFAULT_SHAPE,
            catalogue={"XJOB": custom},
        )
        assert dataset[0].instances[0].signature.name == "XJOB"

    def test_empty_trace(self):
        dataset = dataset_from_trace([], DEFAULT_SHAPE)
        assert len(dataset) == 0


class TestStrictValidation:
    def test_unknown_job_raises(self):
        with pytest.raises(ValueError, match="unknown job"):
            dataset_from_trace(
                [ev(0.0, 0, "a", START, "NOPE")], DEFAULT_SHAPE
            )

    def test_stop_without_start_raises(self):
        with pytest.raises(ValueError, match="STOP without START"):
            dataset_from_trace([ev(0.0, 0, "a", STOP)], DEFAULT_SHAPE)

    def test_duplicate_start_raises(self):
        with pytest.raises(ValueError, match="duplicate START"):
            dataset_from_trace(
                [
                    ev(0.0, 0, "a", START, "WSC"),
                    ev(1.0, 0, "a", START, "GA"),
                ],
                DEFAULT_SHAPE,
            )

    def test_backwards_time_raises(self):
        with pytest.raises(ValueError, match="backwards"):
            dataset_from_trace(
                [
                    ev(10.0, 0, "a", START, "WSC"),
                    ev(5.0, 0, "b", START, "GA"),
                ],
                DEFAULT_SHAPE,
            )

    def test_capacity_violation_raises(self):
        events = [
            ev(float(i), 0, f"c{i}", START, "GA") for i in range(13)
        ]  # 13 × 4 vCPU > 48
        with pytest.raises(ValueError, match="over capacity"):
            dataset_from_trace(events, DEFAULT_SHAPE)

    def test_bad_horizon_raises(self):
        with pytest.raises(ValueError, match="precedes"):
            dataset_from_trace(
                [ev(100.0, 0, "a", START, "WSC")],
                DEFAULT_SHAPE,
                end_time_s=50.0,
            )


class TestLenientMode:
    def test_skips_malformed_events(self):
        dataset = dataset_from_trace(
            [
                ev(0.0, 0, "a", START, "WSC"),
                ev(1.0, 0, "zzz", STOP),  # no matching START
                ev(2.0, 0, "b", START, "NOPE"),  # unknown job
                ev(50.0, 0, "a", STOP),
            ],
            DEFAULT_SHAPE,
            strict=False,
        )
        assert len(dataset) == 1
        assert dataset[0].key == (("WSC", 1),)


class TestPipelineCompatibility:
    def test_trace_dataset_feeds_flare(self):
        """A trace-derived dataset runs through the full pipeline."""
        from repro.cluster import FEATURE_1_CACHE
        from repro.core import Flare, FlareConfig
        from repro.core.analyzer import AnalyzerConfig

        jobs = ["WSC", "GA", "DC", "mcf", "IA", "DS"]
        events = []
        t = 0.0
        for i, job in enumerate(jobs * 3):
            events.append(ev(t, i % 2, f"c{i}", START, job, 0.85))
            t += 40.0
        for i in range(len(jobs) * 3):
            events.append(ev(t, i % 2, f"c{i}", STOP))
            t += 25.0
        dataset = dataset_from_trace(events, DEFAULT_SHAPE)
        assert len(dataset) >= 4
        flare = Flare(
            FlareConfig(
                analyzer=AnalyzerConfig(n_clusters=3, kmeans_restarts=2)
            )
        ).fit(dataset)
        estimate = flare.evaluate(FEATURE_1_CACHE)
        assert estimate.reduction_pct > 0.0
