"""Unit tests for the job submission system."""

import numpy as np
import pytest

from repro.cluster import SubmissionConfig, SubmissionSystem
from repro.perfmodel import Priority
from repro.workloads import HP_JOBS, LP_JOBS


def make_system(seed=0, **kwargs):
    return SubmissionSystem(
        SubmissionConfig(**kwargs), np.random.default_rng(seed)
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_rate_per_hour": 0.0},
            {"hp_fraction": -0.1},
            {"hp_fraction": 1.1},
            {"min_duration_s": 0.0},
            {"mean_extra_duration_s": -1.0},
            {"load_choices": ()},
            {"load_choices": (0.0,)},
            {"load_choices": (1.5,)},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            SubmissionConfig(**kwargs)

    def test_unknown_mix_job_raises(self):
        with pytest.raises(ValueError, match="unknown jobs"):
            make_system(hp_mix={"NOPE": 1.0})

    def test_negative_mix_weight_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_system(hp_mix={"WSC": -1.0})


class TestArrivals:
    def test_interarrival_mean_matches_rate(self):
        system = make_system(seed=1, arrival_rate_per_hour=120.0)
        gaps = [system.next_interarrival_s() for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(30.0, rel=0.1)

    def test_deterministic_for_seed(self):
        a = make_system(seed=3)
        b = make_system(seed=3)
        for _ in range(20):
            ra, rb = a.next_request(), b.next_request()
            assert ra.signature.name == rb.signature.name
            assert ra.load == rb.load
            assert ra.duration_s == rb.duration_s


class TestRequests:
    def test_duration_floor_respected(self):
        system = make_system(seed=2, min_duration_s=1800.0)
        for _ in range(200):
            assert system.next_request().duration_s >= 1800.0

    def test_zero_extra_duration_is_exact(self):
        system = make_system(
            seed=2, min_duration_s=600.0, mean_extra_duration_s=0.0
        )
        assert system.next_request().duration_s == 600.0

    def test_loads_come_from_choices(self):
        choices = (0.7, 0.85, 1.0)
        system = make_system(seed=4, load_choices=choices)
        seen = {system.next_request().load for _ in range(200)}
        assert seen <= set(choices)
        assert len(seen) == 3

    def test_hp_fraction_respected(self):
        system = make_system(seed=5, hp_fraction=0.7)
        kinds = [
            system.next_request().signature.priority for _ in range(3000)
        ]
        hp_share = sum(1 for k in kinds if k is Priority.HIGH) / len(kinds)
        assert hp_share == pytest.approx(0.7, abs=0.03)

    def test_hp_fraction_extremes(self):
        all_hp = make_system(seed=6, hp_fraction=1.0)
        assert all(
            all_hp.next_request().signature.priority is Priority.HIGH
            for _ in range(50)
        )
        all_lp = make_system(seed=6, hp_fraction=0.0)
        assert all(
            all_lp.next_request().signature.priority is Priority.LOW
            for _ in range(50)
        )

    def test_mix_weights_bias_selection(self):
        system = make_system(
            seed=7, hp_fraction=1.0, hp_mix={"WSC": 10.0, "GA": 0.0}
        )
        names = [system.next_request().signature.name for _ in range(500)]
        assert names.count("GA") == 0
        assert names.count("WSC") > 500 / len(HP_JOBS)

    def test_requests_reference_catalogue_signatures(self):
        system = make_system(seed=8)
        for _ in range(50):
            req = system.next_request()
            assert req.signature.name in {**HP_JOBS, **LP_JOBS}


class TestBursts:
    def test_default_burst_is_one(self):
        system = make_system(seed=1)
        assert all(system.next_burst_size() == 1 for _ in range(20))

    def test_burst_sizes_from_choices(self):
        system = make_system(seed=2, burst_choices=(1, 2, 4))
        seen = {system.next_burst_size() for _ in range(300)}
        assert seen == {1, 2, 4}

    def test_invalid_bursts(self):
        import pytest

        with pytest.raises(ValueError):
            SubmissionConfig(burst_choices=())
        with pytest.raises(ValueError):
            SubmissionConfig(burst_choices=(0,))

    def test_single_choice_does_not_touch_rng(self):
        """Sampling a burst of the single-choice default must not advance
        the random stream, so seeded results stay reproducible."""
        a = make_system(seed=3)
        b = make_system(seed=3)
        for _ in range(10):
            a.next_burst_size()
        ra, rb = a.next_request(), b.next_request()
        assert ra.signature.name == rb.signature.name
        assert ra.load == rb.load

    def test_burst_simulation_produces_multi_instance_mixes(self):
        from repro.cluster import DatacenterConfig, run_simulation

        result = run_simulation(
            DatacenterConfig(
                seed=4,
                target_unique_scenarios=80,
                submission=SubmissionConfig(burst_choices=(2, 3)),
            )
        )
        multi = [
            s
            for s in result.dataset.scenarios
            if any(count >= 2 for _, count in s.key)
        ]
        assert len(multi) > len(result.dataset) * 0.3

    def test_burst_denials_counted_per_instance(self):
        from repro.cluster import DatacenterConfig, run_simulation

        result = run_simulation(
            DatacenterConfig(
                seed=5,
                n_machines=1,
                target_unique_scenarios=None,
                max_days=0.3,
                submission=SubmissionConfig(
                    arrival_rate_per_hour=200.0, burst_choices=(4,)
                ),
            )
        )
        stats = result.stats
        assert stats.n_submitted == stats.n_placed + stats.n_denied
        assert stats.n_denied > 0
