"""Unit tests for the diurnal demand cycle."""

import numpy as np
import pytest

from repro.cluster import DatacenterConfig, SubmissionConfig, SubmissionSystem, run_simulation
from repro.perfmodel import Priority


def make_system(seed=0, **kwargs):
    return SubmissionSystem(
        SubmissionConfig(**kwargs), np.random.default_rng(seed)
    )


class TestDemandMultiplier:
    def test_disabled_by_default(self):
        system = make_system()
        for t in (0.0, 1e4, 5e5):
            assert system.demand_multiplier(t) == 1.0

    def test_sinusoidal_extremes(self):
        system = make_system(diurnal_amplitude=0.4, diurnal_period_s=86400.0)
        peak = system.demand_multiplier(86400.0 / 4.0)
        trough = system.demand_multiplier(3.0 * 86400.0 / 4.0)
        assert peak == pytest.approx(1.4)
        assert trough == pytest.approx(0.6)

    def test_periodicity(self):
        system = make_system(diurnal_amplitude=0.3)
        assert system.demand_multiplier(1000.0) == pytest.approx(
            system.demand_multiplier(1000.0 + 86400.0)
        )

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SubmissionConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            SubmissionConfig(diurnal_amplitude=-0.1)
        with pytest.raises(ValueError):
            SubmissionConfig(diurnal_period_s=0.0)


class TestInhomogeneousArrivals:
    def test_thinning_preserves_mean_rate(self):
        """Over whole cycles the time-average rate equals the base rate."""
        system = make_system(
            seed=3, arrival_rate_per_hour=120.0, diurnal_amplitude=0.5
        )
        t, count = 0.0, 0
        horizon = 10 * 86400.0
        while t < horizon:
            t += system.next_interarrival_s(t)
            count += 1
        expected = 120.0 * horizon / 3600.0
        assert count == pytest.approx(expected, rel=0.05)

    def test_peak_hours_busier_than_trough_hours(self):
        system = make_system(
            seed=4, arrival_rate_per_hour=200.0, diurnal_amplitude=0.8
        )
        day = 86400.0
        t, peak_count, trough_count = 0.0, 0, 0
        while t < 20 * day:
            t += system.next_interarrival_s(t)
            phase = (t % day) / day
            if 0.0 <= phase < 0.5:
                peak_count += 1  # sin > 0 half of the cycle
            else:
                trough_count += 1
        assert peak_count > trough_count * 1.5


class TestDiurnalLoads:
    def test_hp_loads_follow_cycle(self):
        system = make_system(
            seed=5, diurnal_amplitude=0.5, hp_fraction=1.0,
            load_choices=(0.8,),
        )
        day = 86400.0
        peak_load = system.next_request(day / 4.0).load
        trough_load = system.next_request(3.0 * day / 4.0).load
        assert peak_load > 0.8
        assert trough_load < 0.8

    def test_lp_loads_unmodulated(self):
        system = make_system(
            seed=6, diurnal_amplitude=0.5, hp_fraction=0.0,
            load_choices=(0.8,),
        )
        request = system.next_request(86400.0 / 4.0)
        assert request.signature.priority is Priority.LOW
        assert request.load == pytest.approx(0.8)

    def test_loads_stay_in_valid_range(self):
        system = make_system(seed=7, diurnal_amplitude=0.9, hp_fraction=1.0)
        for i in range(200):
            request = system.next_request(now_s=i * 500.0)
            assert 0.0 < request.load <= 1.0


class TestDiurnalSimulation:
    def test_simulation_runs_with_cycle(self):
        result = run_simulation(
            DatacenterConfig(
                seed=8,
                target_unique_scenarios=60,
                submission=SubmissionConfig(diurnal_amplitude=0.4),
            )
        )
        assert result.n_unique_scenarios == 60
        loads = {
            i.load
            for s in result.dataset.scenarios
            for i in s.instances
        }
        # Modulation produces loads outside the discrete choices.
        assert len(loads) > 3

    def test_deterministic(self):
        cfg = DatacenterConfig(
            seed=9,
            target_unique_scenarios=40,
            submission=SubmissionConfig(diurnal_amplitude=0.4),
        )
        a = run_simulation(cfg)
        b = run_simulation(cfg)
        assert [s.key for s in a.dataset.scenarios] == [
            s.key for s in b.dataset.scenarios
        ]
