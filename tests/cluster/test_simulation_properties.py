"""Property-based tests for datacenter-simulation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DatacenterConfig, SubmissionConfig, run_simulation
from repro.io import dataset_from_dict, dataset_to_dict

configs = st.builds(
    DatacenterConfig,
    seed=st.integers(0, 10_000),
    n_machines=st.integers(1, 6),
    target_unique_scenarios=st.integers(5, 40),
    max_days=st.just(2.0),
    submission=st.builds(
        SubmissionConfig,
        arrival_rate_per_hour=st.floats(20.0, 200.0),
        hp_fraction=st.floats(0.2, 0.9),
    ),
)


@settings(max_examples=25, deadline=None)
@given(configs)
def test_no_scenario_overcommits_machines(config):
    result = run_simulation(config)
    shape = result.dataset.shape
    for scenario in result.dataset.scenarios:
        assert scenario.total_vcpus <= shape.vcpus
        dram = sum(i.signature.dram_gb for i in scenario.instances)
        assert dram <= shape.dram_gb + 1e-9
        assert scenario.hp_vcpus + scenario.lp_vcpus == scenario.total_vcpus


@settings(max_examples=25, deadline=None)
@given(configs)
def test_observed_machine_time_bounded(config):
    """Total recorded scenario time cannot exceed machines × wall time."""
    result = run_simulation(config)
    total = sum(s.total_duration_s for s in result.dataset.scenarios)
    assert total <= config.n_machines * result.stats.sim_time_s + 1e-6


@settings(max_examples=25, deadline=None)
@given(configs)
def test_submission_accounting_balances(config):
    result = run_simulation(config)
    stats = result.stats
    assert stats.n_submitted == stats.n_placed + stats.n_denied
    assert 0 <= stats.n_completed <= stats.n_placed
    assert 0.0 <= stats.denial_rate <= 1.0


@settings(max_examples=25, deadline=None)
@given(configs)
def test_weights_form_distribution(config):
    result = run_simulation(config)
    weights = result.dataset.weights()
    if weights.size:
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0.0).all()


@settings(max_examples=20, deadline=None)
@given(configs)
def test_dataset_serialization_round_trip(config):
    dataset = run_simulation(config).dataset
    rebuilt = dataset_from_dict(dataset_to_dict(dataset))
    assert len(rebuilt) == len(dataset)
    for a, b in zip(dataset.scenarios, rebuilt.scenarios):
        assert a.key == b.key
        assert a.total_duration_s == b.total_duration_s
        for ia, ib in zip(a.instances, b.instances):
            assert ia.signature == ib.signature
            assert ia.load == ib.load
    np.testing.assert_allclose(rebuilt.weights(), dataset.weights())


@settings(max_examples=20, deadline=None)
@given(configs)
def test_scenario_ids_dense_and_keys_unique(config):
    dataset = run_simulation(config).dataset
    ids = [s.scenario_id for s in dataset.scenarios]
    assert ids == list(range(len(dataset)))
    keys = [s.key for s in dataset.scenarios]
    assert len(keys) == len(set(keys))
