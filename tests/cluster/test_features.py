"""Unit tests for the Table 4 features."""

import pytest

from repro.cluster import (
    BASELINE,
    FEATURE_1_CACHE,
    FEATURE_2_DVFS,
    FEATURE_3_SMT,
    PAPER_FEATURES,
    Feature,
)
from repro.perfmodel import MachinePerf


class TestPaperFeatures:
    def test_baseline_is_identity(self):
        m = MachinePerf()
        assert BASELINE(m) == m

    def test_feature1_shrinks_llc_proportionally(self):
        m = MachinePerf(llc_mb=60.0)
        assert FEATURE_1_CACHE(m).llc_mb == pytest.approx(24.0)  # 12/30

    def test_feature1_scales_with_socket_llc(self):
        small = MachinePerf(llc_mb=40.0)
        assert FEATURE_1_CACHE(small).llc_mb == pytest.approx(16.0)

    def test_feature2_caps_frequency(self):
        m = MachinePerf(max_freq_ghz=2.9)
        assert FEATURE_2_DVFS(m).max_freq_ghz == 1.8

    def test_feature3_disables_smt(self):
        m = MachinePerf()
        out = FEATURE_3_SMT(m)
        assert not out.smt_enabled
        assert out.hardware_threads == m.hardware_threads

    def test_features_leave_other_params_untouched(self):
        m = MachinePerf()
        for feature in PAPER_FEATURES:
            out = feature(m)
            assert out.physical_cores == m.physical_cores
            assert out.mem_bw_gbps == m.mem_bw_gbps

    def test_three_paper_features(self):
        assert [f.name for f in PAPER_FEATURES] == [
            "feature1",
            "feature2",
            "feature3",
        ]

    def test_descriptions_non_empty(self):
        for feature in (BASELINE, *PAPER_FEATURES):
            assert feature.description


class TestShapePreservation:
    def test_shape_changing_feature_rejected(self):
        bad = Feature(
            name="bad",
            description="halves the cores",
            apply=lambda m: MachinePerf(physical_cores=m.physical_cores // 2),
        )
        with pytest.raises(ValueError, match="changed the machine shape"):
            bad(MachinePerf())

    def test_custom_shape_preserving_feature_ok(self):
        tweak = Feature(
            name="latency",
            description="slower DRAM",
            apply=lambda m: MachinePerf(mem_latency_ns=m.mem_latency_ns * 1.2),
        )
        out = tweak(MachinePerf())
        assert out.mem_latency_ns == pytest.approx(102.0)
