"""Unit tests for the schedulers."""

import numpy as np
import pytest

from repro.cluster import (
    DEFAULT_SHAPE,
    BestFitPackingScheduler,
    LeastUtilizedScheduler,
    Machine,
    RandomFitScheduler,
)
from repro.cluster.job import JobInstance, JobRequest
from repro.workloads import HP_JOBS


def request(job="WSC"):
    return JobRequest(signature=HP_JOBS[job], load=1.0, duration_s=3600.0)


def machines(n=3):
    return [Machine(machine_id=i, shape=DEFAULT_SHAPE) for i in range(n)]


def fill(machine, n, job="GA"):
    for _ in range(n):
        machine.place(
            JobInstance(
                request=request(job),
                machine_id=machine.machine_id,
                start_time=0.0,
            )
        )


class TestLeastUtilized:
    def test_picks_emptiest(self):
        ms = machines(3)
        fill(ms[0], 3)
        fill(ms[1], 1)
        fill(ms[2], 2)
        chosen = LeastUtilizedScheduler().select_machine(ms, request())
        assert chosen is ms[1]

    def test_tie_breaks_by_machine_id(self):
        ms = machines(3)
        chosen = LeastUtilizedScheduler().select_machine(ms, request())
        assert chosen is ms[0]

    def test_denies_when_saturated(self):
        ms = machines(2)
        fill(ms[0], 12)
        fill(ms[1], 12)
        assert LeastUtilizedScheduler().select_machine(ms, request()) is None

    def test_skips_infeasible_machines(self):
        ms = machines(2)
        fill(ms[0], 12)  # full
        fill(ms[1], 11)
        chosen = LeastUtilizedScheduler().select_machine(ms, request())
        assert chosen is ms[1]

    def test_respects_dram_limits(self):
        ms = machines(2)
        fill(ms[0], 12, job="DS")  # 192 GB
        # DS needs 16 GB; machine 0 full on vCPUs anyway; use big request.
        chosen = LeastUtilizedScheduler().select_machine(ms, request("DS"))
        assert chosen is ms[1]


class TestBestFitPacking:
    def test_picks_fullest_feasible(self):
        ms = machines(3)
        fill(ms[0], 3)
        fill(ms[1], 11)
        fill(ms[2], 7)
        chosen = BestFitPackingScheduler().select_machine(ms, request())
        assert chosen is ms[1]

    def test_overflows_to_next_fullest(self):
        ms = machines(2)
        fill(ms[0], 12)
        fill(ms[1], 5)
        chosen = BestFitPackingScheduler().select_machine(ms, request())
        assert chosen is ms[1]

    def test_denies_when_all_full(self):
        ms = machines(1)
        fill(ms[0], 12)
        assert BestFitPackingScheduler().select_machine(ms, request()) is None


class TestRandomFit:
    def test_only_picks_feasible(self):
        rng = np.random.default_rng(0)
        ms = machines(3)
        fill(ms[0], 12)
        scheduler = RandomFitScheduler(rng)
        for _ in range(20):
            chosen = scheduler.select_machine(ms, request())
            assert chosen in (ms[1], ms[2])

    def test_deterministic_with_seeded_rng(self):
        ms = machines(5)
        a = RandomFitScheduler(np.random.default_rng(7))
        b = RandomFitScheduler(np.random.default_rng(7))
        picks_a = [a.select_machine(ms, request()).machine_id for _ in range(10)]
        picks_b = [b.select_machine(ms, request()).machine_id for _ in range(10)]
        assert picks_a == picks_b

    def test_denies_when_nothing_fits(self):
        ms = machines(1)
        fill(ms[0], 12)
        scheduler = RandomFitScheduler(np.random.default_rng(0))
        assert scheduler.select_machine(ms, request()) is None

    def test_scheduler_names(self):
        assert LeastUtilizedScheduler().name == "least-utilized"
        assert BestFitPackingScheduler().name == "best-fit-packing"
        assert RandomFitScheduler(np.random.default_rng(0)).name == "random-fit"
