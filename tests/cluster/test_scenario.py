"""Unit tests for scenario identity, recording and datasets."""

import numpy as np
import pytest

from repro.cluster import DEFAULT_SHAPE, Machine, ScenarioRecorder
from repro.cluster.job import JobInstance, JobRequest
from repro.workloads import HP_JOBS, LP_JOBS


def place(machine, job, load=1.0, start=0.0):
    catalogue = {**HP_JOBS, **LP_JOBS}
    inst = JobInstance(
        request=JobRequest(
            signature=catalogue[job], load=load, duration_s=3600.0
        ),
        machine_id=machine.machine_id,
        start_time=start,
    )
    machine.place(inst)
    return inst


class TestRecorder:
    def test_records_first_composition(self):
        recorder = ScenarioRecorder(DEFAULT_SHAPE)
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        place(m, "WSC")
        recorder.on_composition_change(m, 0.0)
        assert recorder.n_unique == 1

    def test_same_mix_on_two_machines_is_one_scenario(self):
        recorder = ScenarioRecorder(DEFAULT_SHAPE)
        m0 = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        m1 = Machine(machine_id=1, shape=DEFAULT_SHAPE)
        place(m0, "WSC")
        place(m1, "WSC")
        recorder.on_composition_change(m0, 0.0)
        recorder.on_composition_change(m1, 0.0)
        assert recorder.n_unique == 1

    def test_mix_identity_ignores_order(self):
        recorder = ScenarioRecorder(DEFAULT_SHAPE)
        m0 = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        m1 = Machine(machine_id=1, shape=DEFAULT_SHAPE)
        place(m0, "WSC")
        place(m0, "GA")
        place(m1, "GA")
        place(m1, "WSC")
        recorder.on_composition_change(m0, 0.0)
        recorder.on_composition_change(m1, 0.0)
        assert recorder.n_unique == 1

    def test_duration_accounting(self):
        recorder = ScenarioRecorder(DEFAULT_SHAPE)
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        inst = place(m, "WSC")
        recorder.on_composition_change(m, 0.0)
        place(m, "GA", start=100.0)
        recorder.on_composition_change(m, 100.0)  # WSC-only lasted 100 s
        m.remove(inst)
        recorder.on_composition_change(m, 250.0)  # WSC+GA lasted 150 s
        recorder.finalize(400.0)  # GA-only lasted 150 s

        dataset = recorder.dataset()
        durations = {s.key: s.total_duration_s for s in dataset.scenarios}
        assert durations[(("WSC", 1),)] == pytest.approx(100.0)
        assert durations[(("GA", 1), ("WSC", 1))] == pytest.approx(150.0)
        assert durations[(("GA", 1),)] == pytest.approx(150.0)

    def test_recurrence_accumulates(self):
        recorder = ScenarioRecorder(DEFAULT_SHAPE)
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        inst = place(m, "WSC")
        recorder.on_composition_change(m, 0.0)
        ga = place(m, "GA", start=10.0)
        recorder.on_composition_change(m, 10.0)
        m.remove(ga)
        recorder.on_composition_change(m, 20.0)  # back to WSC-only
        recorder.finalize(50.0)
        dataset = recorder.dataset()
        wsc_only = next(
            s for s in dataset.scenarios if s.key == (("WSC", 1),)
        )
        assert wsc_only.n_occurrences == 2
        assert wsc_only.total_duration_s == pytest.approx(10.0 + 30.0)

    def test_empty_machine_not_a_scenario(self):
        recorder = ScenarioRecorder(DEFAULT_SHAPE)
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        inst = place(m, "WSC")
        recorder.on_composition_change(m, 0.0)
        m.remove(inst)
        recorder.on_composition_change(m, 10.0)
        recorder.finalize(100.0)
        assert recorder.n_unique == 1  # only the WSC mix

    def test_scenario_ids_dense_in_observation_order(self):
        recorder = ScenarioRecorder(DEFAULT_SHAPE)
        m = Machine(machine_id=0, shape=DEFAULT_SHAPE)
        place(m, "WSC")
        recorder.on_composition_change(m, 0.0)
        place(m, "GA", start=1.0)
        recorder.on_composition_change(m, 1.0)
        dataset = recorder.dataset()
        assert [s.scenario_id for s in dataset.scenarios] == [0, 1]


class TestScenarioProperties:
    def test_vcpu_accounting(self, tiny_dataset):
        s = tiny_dataset[4]  # IA + MS + DS + omnetpp
        assert s.total_vcpus == 16
        assert s.hp_vcpus == 12
        assert s.lp_vcpus == 4

    def test_occupancy(self, tiny_dataset):
        s = tiny_dataset[0]  # 2 jobs x 4 vCPU on 48
        assert s.occupancy(tiny_dataset.shape) == pytest.approx(8 / 48)

    def test_count_of(self, tiny_dataset):
        s = tiny_dataset[2]  # DA x2 + WSV
        assert s.count_of("DA") == 2
        assert s.count_of("WSV") == 1
        assert s.count_of("GA") == 0

    def test_job_names_sorted(self, tiny_dataset):
        names = tiny_dataset[2].job_names()
        assert list(names) == sorted(names)

    def test_hp_instances_filtered(self, tiny_dataset):
        s = tiny_dataset[1]  # DC + mcf
        hp = s.hp_instances
        assert len(hp) == 1
        assert hp[0].signature.name == "DC"


class TestDataset:
    def test_weights_normalised(self, tiny_dataset):
        w = tiny_dataset.weights()
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0.0).all()

    def test_weights_proportional_to_duration(self, tiny_dataset):
        w = tiny_dataset.weights()
        # Scenario 0 observed 7200 s, scenario 1 observed 3600 s.
        assert w[0] / w[1] == pytest.approx(2.0)

    def test_scenarios_with_job(self, tiny_dataset):
        hosting = tiny_dataset.scenarios_with_job("WSC")
        assert {s.scenario_id for s in hosting} == {0, 5}

    def test_with_weights_from(self, tiny_dataset):
        new = tiny_dataset.with_weights_from({tiny_dataset[0].key: 100.0})
        w = new.weights()
        assert w[0] == pytest.approx(w.max())
        # Unlisted scenarios get zero duration -> epsilon weight.
        assert w[1] < w[0]

    def test_indexing_and_len(self, tiny_dataset):
        assert len(tiny_dataset) == 6
        assert tiny_dataset[3].scenario_id == 3

    def test_empty_weights(self):
        from repro.cluster import ScenarioDataset

        empty = ScenarioDataset(shape=DEFAULT_SHAPE, scenarios=())
        assert empty.weights().size == 0
