"""Shared fixtures for the test suite.

Expensive artefacts (a simulated datacenter, a fitted FLARE model) are
built once per session at a reduced scale; cheap hand-built scenarios are
provided for precise unit tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import DatacenterConfig, ScenarioDataset, run_simulation
from repro.cluster.machine import DEFAULT_SHAPE
from repro.cluster.scenario import Scenario
from repro.core import Flare, FlareConfig
from repro.core.analyzer import AnalyzerConfig
from repro.perfmodel import RunningInstance
from repro.workloads import HP_JOBS, LP_JOBS


def make_scenario(
    scenario_id: int,
    jobs: list[tuple[str, float]],
    *,
    duration_s: float = 3600.0,
    occurrences: int = 1,
) -> Scenario:
    """Build a scenario from (job name, load) pairs."""
    catalogue = {**HP_JOBS, **LP_JOBS}
    instances = tuple(
        RunningInstance(signature=catalogue[name], load=load)
        for name, load in sorted(jobs)
    )
    counts: dict[str, int] = {}
    for name, _ in jobs:
        counts[name] = counts.get(name, 0) + 1
    return Scenario(
        scenario_id=scenario_id,
        key=tuple(sorted(counts.items())),
        instances=instances,
        n_occurrences=occurrences,
        total_duration_s=duration_s,
    )


@pytest.fixture(scope="session")
def tiny_dataset() -> ScenarioDataset:
    """Six hand-built scenarios covering HP-only, mixed, and LP-only."""
    scenarios = (
        make_scenario(0, [("WSC", 1.0), ("GA", 1.0)], duration_s=7200.0),
        make_scenario(1, [("DC", 0.85), ("mcf", 1.0)], duration_s=3600.0),
        make_scenario(2, [("DA", 1.0), ("DA", 0.7), ("WSV", 0.85)]),
        make_scenario(3, [("sjeng", 1.0), ("libquantum", 1.0)]),
        make_scenario(
            4,
            [("IA", 1.0), ("MS", 0.7), ("DS", 0.85), ("omnetpp", 1.0)],
            duration_s=1800.0,
        ),
        make_scenario(5, [("WSC", 0.7)], duration_s=5400.0),
    )
    return ScenarioDataset(shape=DEFAULT_SHAPE, scenarios=scenarios)


@pytest.fixture(scope="session")
def small_sim():
    """A reduced simulated datacenter (shared, treat as read-only)."""
    return run_simulation(
        DatacenterConfig(seed=42, target_unique_scenarios=120)
    )


@pytest.fixture(scope="session")
def small_flare(small_sim) -> Flare:
    """A fitted FLARE model over the reduced datacenter."""
    config = FlareConfig(
        analyzer=AnalyzerConfig(
            n_clusters=8, cluster_counts=tuple(range(2, 13, 2))
        )
    )
    return Flare(config).fit(small_sim.dataset)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
