"""Unit tests for the experiment context."""

import pytest

from repro.cluster import FEATURE_1_CACHE
from repro.experiments import get_context


class TestGetContext:
    def test_small_scale_dimensions(self, ctx):
        assert len(ctx.dataset) == 160
        assert ctx.n_clusters == 8

    def test_memoised(self, ctx):
        assert get_context("small", seed=5) is ctx

    def test_distinct_seeds_distinct_contexts(self, ctx):
        other = get_context("small", seed=6)
        assert other is not ctx
        assert [s.key for s in other.dataset.scenarios] != [
            s.key for s in ctx.dataset.scenarios
        ]

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_context("huge")

    def test_truth_memoised(self, ctx):
        a = ctx.truth(FEATURE_1_CACHE)
        b = ctx.truth(FEATURE_1_CACHE)
        assert a is b
        assert a.overall_reduction_pct > 0.0
