"""Tests for the analysis-pipeline experiments (Figures 7–10)."""

import numpy as np
import pytest

from repro.experiments import (
    fig07_pca_variance,
    fig08_pc_interpretation,
    fig09_cluster_selection,
    fig10_cluster_radar,
)


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig07_pca_variance.run(ctx)

    def test_selected_components_reach_target(self, result):
        cum = result.cumulative_ratio[result.selected_components - 1]
        assert cum >= result.variance_target - 1e-9

    def test_selection_is_minimal(self, result):
        if result.selected_components > 1:
            below = result.cumulative_ratio[result.selected_components - 2]
            assert below < result.variance_target

    def test_cumulative_monotone(self, result):
        assert (np.diff(result.cumulative_ratio) >= -1e-12).all()

    def test_components_for_arbitrary_targets(self, result):
        assert result.components_for(0.5) <= result.components_for(0.95)
        with pytest.raises(ValueError):
            result.components_for(0.0)

    def test_render(self, result):
        assert "Figure 7" in result.render()


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig08_pc_interpretation.run(ctx)

    def test_matches_retained_components(self, result, ctx):
        assert result.n_components == ctx.flare.analysis.n_components

    def test_some_components_mix_scopes(self, result):
        """The paper's co-location-specific trait: PCs combining machine-
        and HP-scope metrics (e.g. their PC10)."""
        assert len(result.components_mixing_scopes()) >= 1

    def test_render_lists_every_pc(self, result):
        text = result.render()
        for interp in result.interpretations:
            assert f"PC{interp.index}" in text


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig09_cluster_selection.run(ctx)

    def test_sse_decreases_with_k(self, result):
        assert (np.diff(result.sweep.sse) < 0.0).all()

    def test_silhouette_in_range(self, result):
        assert (result.sweep.silhouette >= -1.0).all()
        assert (result.sweep.silhouette <= 1.0).all()

    def test_knee_within_sweep(self, result):
        assert result.knee_k in result.sweep.cluster_counts

    def test_chosen_k_matches_context(self, result, ctx):
        assert result.chosen_k == ctx.n_clusters

    def test_lookup_helpers(self, result):
        k = int(result.sweep.cluster_counts[0])
        assert result.sse_at(k) == result.sweep.sse[0]
        assert result.silhouette_at(k) == result.sweep.silhouette[0]

    def test_render(self, result):
        assert "Figure 9" in result.render()


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig10_cluster_radar.run(ctx)

    def test_dimensions(self, result, ctx):
        assert result.n_clusters == ctx.n_clusters
        assert result.n_components == ctx.flare.analysis.n_components

    def test_weights_sum_to_one(self, result):
        assert result.weights.sum() == pytest.approx(1.0)

    def test_no_dominant_cluster(self, result):
        """Paper: the datacenter is a wide mix of behaviours with similar
        importance — no group dominates."""
        assert result.max_weight() < 0.5

    def test_clusters_are_distinct(self, result):
        assert result.min_center_separation() > 0.5

    def test_differing_pcs_detects_differences(self, result):
        diffs = result.differing_pcs(0, 1, threshold=0.25)
        assert len(diffs) >= 1

    def test_spreads_nonnegative(self, result):
        assert (result.spreads >= 0.0).all()

    def test_render(self, result):
        text = result.render()
        assert "Cluster 0" in text
        assert "PC0" in text


class TestFig09Gap:
    def test_gap_statistic_optional(self, ctx):
        from repro.experiments import fig09_cluster_selection

        result = fig09_cluster_selection.run(
            ctx, with_gap=True, gap_counts=(2, 4, 8), gap_references=3
        )
        assert result.gap is not None
        suggested = result.gap.suggested_k()
        assert suggested in (2, 4, 8)
        assert "gap-statistic" in result.render()

    def test_gap_absent_by_default(self, ctx):
        from repro.experiments import fig09_cluster_selection

        result = fig09_cluster_selection.run(ctx)
        assert result.gap is None
