"""Tests for the headline accuracy/cost experiments (Figures 11–13).

The assertions encode the paper's qualitative claims: clusters respond
differently to the same feature, FLARE tracks the truth closely while
equal-cost sampling spreads much wider, and sampling cannot match FLARE
even at ~10× the budget.
"""

import numpy as np
import pytest

from repro.cluster import PAPER_FEATURES
from repro.experiments import (
    fig11_cluster_impacts,
    fig12_accuracy,
    fig13_cost_accuracy,
)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig11_cluster_impacts.run(ctx)

    def test_matrix_dimensions(self, result, ctx):
        assert result.reductions_pct.shape == (ctx.n_clusters, 3)

    def test_groups_respond_differently(self, result):
        for j in range(len(result.features)):
            assert result.spread_of(j) > 1.0

    def test_most_impacted_cluster_valid(self, result):
        cid = result.most_impacted_cluster(0)
        assert cid in result.cluster_ids

    def test_measured_cells_nonnegative(self, result):
        live = result.reductions_pct[~np.isnan(result.reductions_pct)]
        assert (live >= -1.0).all()

    def test_render(self, result):
        text = result.render()
        assert "Figure 11" in text
        assert "feature1" in text


class TestFig12a:
    @pytest.fixture(scope="class")
    def rows(self, ctx):
        return fig12_accuracy.run_all_job(ctx, n_trials=400, seed=0)

    def test_one_row_per_feature(self, rows):
        assert [r.feature.name for r in rows] == [
            f.name for f in PAPER_FEATURES
        ]

    def test_flare_error_below_one_percent(self, rows):
        """The paper's headline: FLARE errors ~1 % absolute."""
        for row in rows:
            assert row.flare_error_pct < 1.0

    def test_flare_beats_equal_cost_sampling_worst_case(self, rows):
        for row in rows:
            assert row.flare_error_pct < row.sampling_max_error_pct

    def test_sampling_centred_on_truth(self, rows):
        for row in rows:
            assert row.sampling.mean == pytest.approx(row.truth_pct, abs=0.5)

    def test_ci_contains_truth(self, rows):
        for row in rows:
            low, high = row.sampling_ci95
            assert low <= row.truth_pct <= high


class TestFig12b:
    @pytest.fixture(scope="class")
    def rows(self, ctx):
        return fig12_accuracy.run_per_job(
            ctx, jobs=("WSC", "GA", "DC"), n_trials=300, seed=0
        )

    def test_rows_cover_feature_job_grid(self, rows):
        assert len(rows) == 3 * 3

    def test_flare_tracks_per_job_truth(self, rows):
        for row in rows:
            assert row.flare_error_pct < max(2.0, 0.3 * abs(row.truth_pct))

    def test_sampling_mean_near_truth(self, rows):
        for row in rows:
            assert row.sampling_mean_pct == pytest.approx(
                row.truth_pct, abs=1.0
            )

    def test_full_run_renders(self, ctx):
        result = fig12_accuracy.run(ctx, n_trials=100, seed=1)
        text = result.render()
        assert "Figure 12a" in text
        assert "Figure 12b" in text


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig13_cost_accuracy.run(ctx)

    def test_curve_decreases_with_cost(self, result):
        errs = result.sampling_expected_max_error_pct
        assert (np.diff(errs) < 0.0).all()

    def test_sampling_cannot_match_flare_at_10x(self, result):
        """The paper's §5.4 finding."""
        assert result.sampling_multiplier_to_match_flare() is None
        assert result.sampling_expected_max_error_pct[-1] > (
            result.flare_max_error_pct
        )

    def test_cost_reduction_factor(self, result, ctx):
        expected = result.datacenter_cost / ctx.n_clusters
        assert result.cost_reduction_vs_datacenter == pytest.approx(expected)
        assert result.cost_reduction_vs_datacenter > 10.0

    def test_flare_error_small(self, result):
        assert result.flare_max_error_pct < 1.0

    def test_render(self, result):
        text = result.render()
        assert "Figure 13" in text
        assert "cheaper than" in text
