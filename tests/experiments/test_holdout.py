"""Tests for hold-out validation."""

import pytest

from repro.experiments import holdout


class TestSplitDataset:
    def test_halves_partition_dataset(self, ctx):
        train, held = holdout.split_dataset(ctx.dataset)
        assert len(train) + len(held) == len(ctx.dataset)
        train_keys = {s.key for s in train.scenarios}
        held_keys = {s.key for s in held.scenarios}
        assert not train_keys & held_keys

    def test_ids_redensified(self, ctx):
        train, held = holdout.split_dataset(ctx.dataset)
        for half in (train, held):
            assert [s.scenario_id for s in half.scenarios] == list(
                range(len(half))
            )

    def test_durations_preserved(self, ctx):
        train, held = holdout.split_dataset(ctx.dataset)
        total = sum(s.total_duration_s for s in ctx.dataset.scenarios)
        split_total = sum(
            s.total_duration_s for s in train.scenarios
        ) + sum(s.total_duration_s for s in held.scenarios)
        assert split_total == pytest.approx(total)


class TestHoldoutValidation:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return holdout.run(ctx)

    def test_covers_all_features(self, result):
        assert [r.feature.name for r in result.rows] == [
            "feature1", "feature2", "feature3",
        ]

    def test_generalises_to_unseen_scenarios(self, result):
        """The core claim: behaviour groups fitted on half the scenarios
        estimate the never-seen half within ~1.5 pp."""
        assert result.max_reweighted_error() < 1.5

    def test_reweighting_not_worse_overall(self, result):
        stale = sum(r.train_error_pct for r in result.rows)
        adapted = sum(r.reweighted_error_pct for r in result.rows)
        assert adapted <= stale + 0.5

    def test_render(self, result):
        assert "Hold-out validation" in result.render()
