"""Tests for the sampling-strategies extension experiment."""

import pytest

from repro.experiments import sampling_strategies


@pytest.fixture(scope="module")
def result(ctx):
    return sampling_strategies.run(ctx, n_trials=400, seed=1)


class TestSamplingStrategies:
    def test_four_strategies(self, result):
        assert len(result.rows) == 4
        assert result.row("FLARE")

    def test_flare_beats_all_sampling_variants(self, result):
        flare = result.row("FLARE").mean_abs_error_pct
        for row in result.rows:
            if row.strategy == "FLARE":
                continue
            assert flare < row.mean_abs_error_pct

    def test_stratification_helps_only_modestly(self, result):
        """§3.2's no-single-metric finding: stratifying on one intuitive
        metric cannot close the gap to FLARE."""
        naive = result.row("random sampling").mean_abs_error_pct
        flare = result.row("FLARE").mean_abs_error_pct
        for strategy in (
            "stratified (occupancy)",
            "stratified (HP cache pressure)",
        ):
            stratified = result.row(strategy).mean_abs_error_pct
            # Better than some large improvement threshold would imply the
            # single metric explains the impact — it must not.
            assert stratified > flare * 1.5

    def test_unknown_strategy_raises(self, result):
        with pytest.raises(KeyError):
            result.row("nope")

    def test_render(self, result):
        assert "Sampling strategies" in result.render()
