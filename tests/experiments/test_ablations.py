"""Tests for the design-choice ablations."""

import pytest

from repro.experiments import ablations


class TestPipelineVariants:
    @pytest.fixture(scope="class")
    def report(self, ctx):
        return ablations.run_pipeline_variants(ctx)

    def test_all_variants_present(self, report):
        variants = {row.variant for row in report.rows}
        assert any("paper" in v for v in variants)
        assert any("no-pca" in v for v in variants)
        assert any("no-whiten" in v for v in variants)
        assert any("hierarchical" in v for v in variants)
        assert any("random-representative" in v for v in variants)
        assert any("uniform-weights" in v for v in variants)

    def test_errors_cover_all_features(self, report):
        for row in report.rows:
            assert set(row.errors_pct) == {"feature1", "feature2", "feature3"}
            for err in row.errors_pct.values():
                assert err >= 0.0

    def test_paper_pipeline_is_accurate(self, report):
        paper = report.row("paper (PCA+whiten+kmeans)")
        assert paper.max_error_pct < 1.0

    def test_all_variants_remain_sane(self, report):
        """Every variant still clusters the same behaviours, so none
        should be catastrophically wrong — the ablation quantifies small
        deltas, not failures."""
        for row in report.rows:
            assert row.max_error_pct < 3.0

    def test_row_lookup(self, report):
        with pytest.raises(KeyError):
            report.row("nonexistent")

    def test_render(self, report):
        text = report.render()
        assert "Ablation" in text
        assert "feature1" in text


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def rows(self, ctx):
        return ablations.run_threshold_sweep(ctx, thresholds=(0.999, 0.9))

    def test_lower_threshold_keeps_fewer_metrics(self, rows):
        kept = [k for _, k, _ in rows]
        assert kept[0] > kept[1]

    def test_errors_stay_bounded(self, rows):
        for _, _, err in rows:
            assert 0.0 <= err < 2.0


class TestKSensitivity:
    @pytest.fixture(scope="class")
    def rows(self, ctx):
        return ablations.run_k_sensitivity(ctx, cluster_counts=(3, 8, 16))

    def test_too_few_clusters_hurt(self, rows):
        by_k = dict(rows)
        assert by_k[3] > by_k[8]

    def test_more_clusters_do_not_materially_improve(self, rows):
        """Paper §5.4: increasing the cluster count does not improve the
        estimation quality (while it does raise the cost)."""
        by_k = dict(rows)
        assert by_k[16] > by_k[8] - 0.5
