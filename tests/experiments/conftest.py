"""Shared context for experiment tests (small scale, one per session)."""

import pytest

from repro.experiments import get_context


@pytest.fixture(scope="session")
def ctx():
    return get_context("small", seed=5)
