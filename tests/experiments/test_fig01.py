"""Tests for the Figure 1 methodology landscape."""

import pytest

from repro.experiments import fig01_landscape


@pytest.fixture(scope="module")
def result(ctx):
    return fig01_landscape.run(ctx, n_trials=300, seed=1)


class TestFig01:
    def test_all_methods_present(self, result):
        methods = {p.method for p in result.points}
        assert methods == {
            "load-testing benchmarks",
            "sampling-based",
            "FLARE",
            "full datacenter (truth)",
        }

    def test_paper_ordering_of_errors(self, result):
        """Figure 1's layout: load-testing and sampling imprecise, FLARE
        and the full datacenter accurate."""
        flare = result.point("FLARE")
        assert flare.worst_error_pct < result.point("sampling-based").worst_error_pct
        assert flare.worst_error_pct < (
            result.point("load-testing benchmarks").worst_error_pct
        )
        assert result.point("full datacenter (truth)").worst_error_pct == 0.0

    def test_paper_ordering_of_costs(self, result):
        """FLARE at sampling-like cost, both far below the datacenter."""
        flare = result.point("FLARE")
        full = result.point("full datacenter (truth)")
        assert flare.cost_scenarios == result.point("sampling-based").cost_scenarios
        assert full.cost_scenarios / flare.cost_scenarios > 10.0

    def test_unknown_method_raises(self, result):
        with pytest.raises(KeyError):
            result.point("nope")

    def test_render(self, result):
        assert "Figure 1" in result.render()
