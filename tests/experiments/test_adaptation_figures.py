"""Tests for the adaptation experiments (Figure 14 and §5.6)."""

import pytest

from repro.cluster import FEATURE_2_DVFS, RandomFitScheduler
from repro.experiments import fig14_heterogeneous, sec56_scheduler_change


class TestFig14a:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig14_heterogeneous.run_transfer(ctx)

    def test_many_scenarios_infeasible_on_small(self, result):
        """§5.5: identical co-locations cannot be reproduced on a
        different machine shape."""
        assert result.infeasible_fraction > 0.2

    def test_feasible_scenarios_occupy_small_machine_more(self, result):
        # A mix occupying X% of 48 vCPUs occupies 1.5X% of 32 vCPUs.
        assert result.mean_occupancy_small_feasible != pytest.approx(
            result.mean_occupancy_default, abs=1e-6
        )

    def test_render(self, result):
        assert "Figure 14a" in result.render()


class TestFig14b:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig14_heterogeneous.run(ctx)

    def test_covers_all_hp_jobs(self, result):
        assert len(result.rows) == 8

    def test_rederived_flare_tracks_small_truth(self, result):
        """§5.5: a fresh representative set on the new shape restores
        estimation accuracy."""
        assert result.mean_flare_error() < 1.5

    def test_flare_more_accurate_than_loadtesting(self, result):
        assert result.mean_flare_error() < result.mean_loadtest_error()

    def test_uses_small_shape(self, result):
        assert result.shape.name == "small"
        assert result.feature is FEATURE_2_DVFS

    def test_render(self, result):
        text = result.render()
        assert "Figure 14b" in text


class TestSec56:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return sec56_scheduler_change.run(ctx)

    def test_exact_keys_rarely_recur(self, result):
        """Why reweighting must classify behaviours, not match keys."""
        assert result.exact_key_coverage < 0.5

    def test_reweighting_improves_estimate(self, result):
        assert result.improved
        assert result.reweighted_error_pct < 1.5

    def test_render(self, result):
        text = result.render()
        assert "scheduler change" in text
        assert "best-fit-packing" in text

    def test_alternative_scheduler_accepted(self, ctx):
        import numpy as np

        result = sec56_scheduler_change.run(
            ctx,
            scheduler=RandomFitScheduler(np.random.default_rng(0)),
        )
        assert result.scheduler_name == "random-fit"
        assert result.reweighted_error_pct < 2.0
