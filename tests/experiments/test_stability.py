"""Tests for the clustering-stability experiment."""

import pytest

from repro.experiments import stability


@pytest.fixture(scope="module")
def result(ctx):
    return stability.run(ctx, n_seeds=3)


class TestStability:
    def test_ari_bounds(self, result):
        for ari in result.seed_ari:
            assert -1.0 <= ari <= 1.0
        assert -1.0 <= result.noise_ari <= 1.0

    def test_partitions_not_random(self, result):
        """Reclusterings must agree far above chance (ARI ~0)."""
        assert result.min_seed_ari > 0.2
        assert result.noise_ari > 0.2

    def test_estimates_more_stable_than_partitions(self, result, ctx):
        """The deployment-relevant number: even where partitions shuffle,
        the weighted estimate moves by at most a couple of points."""
        truth = ctx.truth(result.feature).overall_reduction_pct
        assert result.estimate_spread_pct < max(2.0, 0.15 * truth)

    def test_validation(self, ctx):
        with pytest.raises(ValueError):
            stability.run(ctx, n_seeds=1)

    def test_render(self, result):
        text = result.render()
        assert "stability" in text
        assert "ARI" in text
