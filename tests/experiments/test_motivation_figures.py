"""Tests for the motivation experiments (Figures 2 and 3).

These assert the *shape* of the paper's findings, not absolute numbers:
load-testing deviates from in-datacenter truth, occupancy is step-like and
diverse, and per-scenario impact correlates with no single metric.
"""

import numpy as np
import pytest

from repro.cluster import FEATURE_1_CACHE
from repro.experiments import fig02_loadtesting_pitfall, fig03_scenario_landscape
from repro.workloads import HP_JOB_NAMES


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig02_loadtesting_pitfall.run(ctx)

    def test_one_row_per_hp_job(self, result):
        assert [r.job_name for r in result.rows] == list(HP_JOB_NAMES)

    def test_impacts_positive(self, result):
        for row in result.rows:
            assert row.loadtest_reduction_pct > 0.0
            assert row.datacenter_reduction_pct > 0.0

    def test_loadtesting_deviates_from_datacenter(self, result):
        """The paper's core motivation: load-testing alone misestimates
        in-datacenter impact for at least some services."""
        assert result.max_deviation_pct > 0.5
        deviating = [r for r in result.rows if r.deviation_pct > 0.3]
        assert len(deviating) >= 3

    def test_datacenter_variance_nonzero(self, result):
        # Scenarios react differently -> non-trivial std (error bars).
        assert max(r.datacenter_std_pct for r in result.rows) > 0.3

    def test_render(self, result):
        text = result.render()
        assert "Figure 2" in text
        for job in HP_JOB_NAMES:
            assert job in text


class TestFig03a:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig03_scenario_landscape.run_occupancy(ctx)

    def test_sorted_by_occupancy(self, result):
        assert (np.diff(result.total_occupancy) >= -1e-12).all()

    def test_step_like_pattern(self, result, ctx):
        """Occupancy can only take multiples of 4/48 vCPUs — the visible
        steps of Figure 3a."""
        shape = ctx.dataset.shape
        levels = np.unique(np.round(result.total_occupancy * shape.vcpus))
        assert (levels % 4 == 0).all()
        assert result.distinct_levels <= shape.vcpus // 4

    def test_hp_plus_lp_equals_total(self, result):
        np.testing.assert_allclose(
            result.hp_occupancy + result.lp_occupancy,
            result.total_occupancy,
            atol=1e-12,
        )

    def test_wide_occupancy_spread(self, result):
        assert result.total_occupancy.min() < 0.3
        assert result.total_occupancy.max() > 0.9

    def test_render(self, result):
        assert "Figure 3a" in result.render()


class TestFig03b:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig03_scenario_landscape.run_impact_vs_mpki(ctx)

    def test_impact_not_explained_by_mpki(self, result):
        """The paper's key motivating observation (§3.2)."""
        assert abs(result.pearson_r) < 0.5

    def test_impacts_heterogeneous(self, result):
        spread = result.reductions_pct.max() - result.reductions_pct.min()
        assert spread > 2.0

    def test_no_single_metric_explains_impact(self, result, ctx):
        name, r = result.best_single_metric_r(ctx)
        assert name
        assert abs(r) < 0.95

    def test_arrays_aligned(self, result):
        assert result.reductions_pct.shape == result.hp_llc_mpki.shape

    def test_render(self, result):
        text = result.render()
        assert "pearson" in text
        assert FEATURE_1_CACHE.name in text
