"""The stable ``repro.api`` surface and the legacy-path deprecation shims."""

import importlib
import warnings

import numpy as np
import pytest

import repro


class TestApiSurface:
    def test_imports_cleanly_without_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api = importlib.reload(importlib.import_module("repro.api"))
        assert api.Flare is not None

    def test_all_exports_resolve(self):
        from repro import api

        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_all_is_sorted_within_no_duplicates(self):
        from repro import api

        assert len(api.__all__) == len(set(api.__all__))

    def test_runtime_names_exported(self):
        from repro.api import (  # noqa: F401
            Executor,
            ProcessExecutor,
            RuntimeCache,
            SerialExecutor,
            default_cache,
            resolve_executor,
        )


class TestDeprecatedTopLevelImports:
    def test_top_level_attribute_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            flare_cls = repro.Flare
        from repro.api import Flare

        assert flare_cls is Flare

    def test_every_shim_name_resolves_to_api(self):
        from repro import api

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in repro.__all__:
                if name == "__version__":
                    continue
                assert getattr(repro, name) is getattr(api, name), name

    def test_submodule_access_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.runtime is not None
            assert repro.workloads is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestKeywordOnlyKnobs:
    def test_percentile_interval_positional_confidence_warns(self):
        from repro.stats.sampling import percentile_interval

        values = np.linspace(0.0, 1.0, 101)
        with pytest.warns(DeprecationWarning, match="confidence"):
            legacy = percentile_interval(values, 0.9)
        assert legacy == percentile_interval(values, confidence=0.9)

    def test_percentile_interval_rejects_extra_positionals(self):
        from repro.stats.sampling import percentile_interval

        with pytest.raises(TypeError):
            percentile_interval([1.0, 2.0], 0.9, 0.8)

    def test_stratify_by_metric_positional_n_strata_warns(self):
        from repro.baselines.stratified import stratify_by_metric

        values = np.linspace(0.0, 10.0, 60)
        with pytest.warns(DeprecationWarning, match="n_strata"):
            legacy = stratify_by_metric(values, 4)
        modern = stratify_by_metric(values, n_strata=4)
        np.testing.assert_array_equal(legacy, modern)
